"""Convenience drivers: run a function under sparse profiling, falling
back to full counting where placement refuses.

The contract every caller gets:

* the returned :class:`~repro.profiles.interp.RunResult` carries a
  ``node_freq`` bit-identical to what full counting would have produced
  (reconstruction is exact, and the fallback *is* full counting);
* ``placement`` in the result tells which mode actually ran — ``None``
  means the CFG was refused (multi-exit, no exit, oversized) and the
  run paid full instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function
from repro.profiles.compiled import compile_function
from repro.profiles.interp import RunResult, run_function
from repro.profiles.probes.placement import (
    PlacementError,
    ProbePlacement,
    place_probes,
)


@dataclass(frozen=True)
class ProbedRun:
    """One execution plus the profiling mode that produced it."""

    result: RunResult
    #: The placement used, or ``None`` when full counting ran.
    placement: ProbePlacement | None
    #: Machine-readable refusal reason when ``placement`` is ``None``.
    fallback_reason: str | None = None


def try_place_probes(
    func: Function,
    profile=None,
) -> tuple[ProbePlacement | None, str | None]:
    """(placement, None) when *func* is in the certified envelope, else
    (None, refusal reason)."""
    try:
        return place_probes(func, profile=profile), None
    except PlacementError as exc:
        return None, exc.reason


def run_probed(
    func: Function,
    args: list[int] | None = None,
    max_steps: int = 2_000_000,
    *,
    engine: str = "reference",
    profile=None,
) -> ProbedRun:
    """Execute *func* under minimum-coverage profiling (or fall back).

    *profile* weights probe placement (hot blocks are probed last);
    *engine* is ``"reference"`` or ``"compiled"``, matching the rest of
    the code base.
    """
    if engine not in ("reference", "compiled"):
        raise ValueError(f"unknown engine {engine!r}")
    placement, reason = try_place_probes(func, profile=profile)
    if engine == "compiled":
        program = compile_function(func, probes=placement)
        result = program.run(args, max_steps=max_steps)
    else:
        result = run_function(func, args, max_steps, probes=placement)
    return ProbedRun(result=result, placement=placement, fallback_reason=reason)
