"""Online re-optimisation for the serving layer (docs/SERVING.md).

The feedback loop the paper's premise implies: artifacts are only
optimal w.r.t. an execution profile, so the serving tier collects *live*
profiles from served runs (:mod:`~repro.serve.adapt.live`), scores them
against the profile each artifact was compiled under
(:mod:`~repro.serve.adapt.drift`), recompiles in the background and
hot-swaps bindings on drift (:mod:`~repro.serve.adapt.manager`), and
runs new keys through a cheap interpreter tier before paying for a
compile at all (:mod:`~repro.serve.adapt.tier`).
"""

from repro.serve.adapt.drift import DriftDetector, DriftVerdict
from repro.serve.adapt.live import LiveProfile
from repro.serve.adapt.manager import AdaptationManager, AdaptConfig, Binding
from repro.serve.adapt.tier import TierPolicy

__all__ = [
    "AdaptConfig",
    "AdaptationManager",
    "Binding",
    "DriftDetector",
    "DriftVerdict",
    "LiveProfile",
    "TierPolicy",
]
