"""Recursive-descent parser for the textual IR.

Grammar (keywords are reserved and cannot name variables)::

    program  := function+
    function := "func" NAME "(" [NAME ("," NAME)*] ")" [arrays] "{" block+ "}"
    arrays   := "arrays" "(" [NAME ":" INT ("," NAME ":" INT)*] ")"
    block    := NAME ":" instr*
    instr    := NAME "=" "phi" "(" [NAME ":" operand ("," ...)*] ")"
              | NAME "=" OP operand ["," operand]
              | NAME "=" "load" NAME "," operand
              | NAME "=" operand                       # copy
              | "store" NAME "," operand "," operand
              | "output" operand
              | "jump" NAME
              | "br" operand "," NAME "," NAME
              | "ret" [operand]
    operand  := INT | NAME            # NAME may carry an SSA ".N" suffix

The printer (:mod:`repro.ir.printer`) emits exactly this syntax, so the two
round-trip; tests assert ``parse(print(f)) == print(f)`` structurally.

Every :class:`ParseError` carries the source position (``line``/``column``
attributes, and a ``line:column:`` message prefix).  Duplicate block
labels and redefined SSA names are rejected here, at the point of
definition, rather than surfacing later as confusing verifier failures.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Output,
    Phi,
    Return,
    Store,
    UnaryOp,
)
from repro.ir.ops import BINARY_OPS, UNARY_OPS
from repro.ir.values import Const, Operand, Var
from repro.lang.lexer import Token, tokenize

_KEYWORDS = {"func", "phi", "output", "jump", "br", "ret", "load", "store", "arrays"}
_TERMINATOR_WORDS = {"jump", "br", "ret"}


class ParseError(Exception):
    """Raised on syntactically invalid input; knows where it happened."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        if line is not None:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = list(tokenize(source))
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self.peek()
        return ParseError(message, token.line, token.column)

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise self.error(f"expected {kind!r}, found {token}")
        return self.advance()

    def at_name(self, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == "NAME" and (text is None or token.text == text)

    # ------------------------------------------------------------------
    def parse_program(self) -> list[Function]:
        funcs = []
        while self.peek().kind != "EOF":
            funcs.append(self.parse_function())
        if not funcs:
            raise ParseError("empty program")
        return funcs

    def parse_function(self) -> Function:
        keyword = self.expect("NAME")
        if keyword.text != "func":
            raise self.error(f"expected 'func', found {keyword}", keyword)
        name = self.expect("NAME").text
        self.expect("(")
        params: list[Var] = []
        while not self.peek().kind == ")":
            # parse_var handles the SSA ".N" suffix, so the parameter list
            # of an SSA-form function (``func f(a.1)``) round-trips.
            params.append(self.parse_var())
            if self.peek().kind == ",":
                self.advance()
        self.expect(")")
        func = Function(name, params)
        #: versioned SSA names already defined (params count as defs)
        self._defined = {p for p in params if p.version is not None}
        if self.at_name("arrays"):
            self.advance()
            self.expect("(")
            while self.peek().kind != ")":
                arr_token = self.peek()
                arr = self.parse_array_name()
                self.expect(":")
                length_token = self.expect("INT")
                try:
                    func.declare_array(arr, int(length_token.text))
                except ValueError as exc:
                    raise self.error(str(exc), arr_token) from None
                if self.peek().kind == ",":
                    self.advance()
            self.expect(")")
        self.expect("{")
        while self.peek().kind != "}":
            self.parse_block(func)
        self.expect("}")
        return func

    def parse_block(self, func: Function) -> None:
        label_token = self.expect("NAME")
        label = label_token.text
        self.expect(":")
        if label in func.blocks:
            raise self.error(f"duplicate block label {label!r}", label_token)
        block = func.add_block(label)
        while True:
            token = self.peek()
            if token.kind != "NAME":
                raise self.error(
                    f"block {label!r} has no terminator before {token}", token
                )
            if token.text not in _TERMINATOR_WORDS and self._name_is_block_label():
                raise self.error(
                    f"block {label!r} has no terminator before label "
                    f"{token.text!r}",
                    token,
                )
            if token.text == "output":
                self.advance()
                block.body.append(Output(self.parse_operand()))
            elif token.text == "store":
                self.advance()
                array = self.parse_array_name()
                self.expect(",")
                index = self.parse_operand()
                self.expect(",")
                value = self.parse_operand()
                block.body.append(Store(array, index, value))
            elif token.text == "jump":
                self.advance()
                block.terminator = Jump(self.expect("NAME").text)
                return
            elif token.text == "br":
                self.advance()
                cond = self.parse_operand()
                self.expect(",")
                true_target = self.expect("NAME").text
                self.expect(",")
                false_target = self.expect("NAME").text
                block.terminator = CondJump(cond, true_target, false_target)
                return
            elif token.text == "ret":
                self.advance()
                value: Operand | None = None
                nxt = self.peek()
                if nxt.kind == "INT" or (
                    nxt.kind == "NAME"
                    and nxt.text not in _KEYWORDS
                    and not self._name_is_block_label()
                ):
                    value = self.parse_operand()
                block.terminator = Return(value)
                return
            else:
                self.parse_assignment(block)

    def _name_is_block_label(self) -> bool:
        """Lookahead: is the NAME at ``pos`` followed by a colon?"""
        return (
            self.peek().kind == "NAME"
            and self.tokens[self.pos + 1].kind == ":"
        )

    def _define(self, target: Var, token: Token) -> None:
        """Record an SSA definition, rejecting redefinitions early."""
        if target.version is None:
            return
        if target in self._defined:
            raise self.error(
                f"SSA name {target} defined more than once", token
            )
        self._defined.add(target)

    def parse_assignment(self, block) -> None:
        target_token = self.peek()
        target = self.parse_var()
        self._define(target, target_token)
        self.expect("=")
        token = self.peek()
        if token.kind == "NAME" and token.text == "phi":
            self.advance()
            self.expect("(")
            args: dict[str, Operand] = {}
            while self.peek().kind != ")":
                pred = self.expect("NAME").text
                self.expect(":")
                args[pred] = self.parse_operand()
                if self.peek().kind == ",":
                    self.advance()
            self.expect(")")
            block.phis.append(Phi(target, args))
            return
        if token.kind == "NAME" and token.text == "load":
            self.advance()
            array = self.parse_array_name()
            self.expect(",")
            index = self.parse_operand()
            block.body.append(Assign(target, Load(array, index)))
            return
        if token.kind == "NAME" and token.text in BINARY_OPS:
            op = self.advance().text
            left = self.parse_operand()
            self.expect(",")
            right = self.parse_operand()
            block.body.append(Assign(target, BinOp(op, left, right)))
            return
        if token.kind == "NAME" and token.text in UNARY_OPS:
            op = self.advance().text
            operand = self.parse_operand()
            block.body.append(Assign(target, UnaryOp(op, operand)))
            return
        block.body.append(Assign(target, self.parse_operand()))

    def parse_operand(self) -> Operand:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return Const(int(token.text))
        if token.kind == "NAME":
            return self.parse_var()
        raise self.error(f"expected operand, found {token}", token)

    def parse_var(self) -> Var:
        token = self.expect("NAME")
        if token.text in _KEYWORDS or token.text in BINARY_OPS or token.text in UNARY_OPS:
            raise self.error(f"reserved word used as variable: {token}", token)
        name = token.text
        if "." in name:
            base, _, version = name.rpartition(".")
            return Var(base, int(version))
        return Var(name)

    def parse_array_name(self) -> str:
        token = self.expect("NAME")
        if token.text in _KEYWORDS or token.text in BINARY_OPS or token.text in UNARY_OPS:
            raise self.error(
                f"reserved word used as array name: {token}", token
            )
        if "." in token.text:
            raise self.error(
                f"array names carry no SSA version: {token}", token
            )
        return token.text


def parse_function(source: str) -> Function:
    """Parse exactly one function from *source*."""
    funcs = _Parser(source).parse_program()
    if len(funcs) != 1:
        raise ParseError(f"expected exactly one function, found {len(funcs)}")
    return funcs[0]


def parse_program(source: str) -> list[Function]:
    """Parse one or more functions from *source*."""
    return _Parser(source).parse_program()
