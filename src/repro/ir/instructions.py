"""Instructions of the three-address IR.

A basic block holds three kinds of entity, in order:

* a (possibly empty) list of :class:`Phi` nodes,
* a list of body statements (:class:`Assign`, :class:`Output`,
  :class:`Store`),
* exactly one terminator (:class:`Jump`, :class:`CondJump`, :class:`Return`).

Right-hand sides of :class:`Assign` are either a bare operand (a copy) or a
first-order :class:`BinOp` / :class:`UnaryOp` / :class:`Load` whose
operands are variables or constants — nested expressions never occur,
which is what lets the PRE algorithms treat "lexically identified
expressions" exactly as the paper does.  Memory lives in named arrays (a
separate, non-SSA namespace declared on the function); :class:`Load` reads
and :class:`Store` writes one element.

Statements are ordinary mutable objects: their identity matters (the FRG
points back at concrete occurrences) and the PRE CodeMotion step rewrites
them in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.ir.ops import BINARY_OPS, UNARY_OPS
from repro.ir.values import Const, Operand, Var, operand_base_key


@dataclass(slots=True)
class BinOp:
    """Application of a binary operator to two operands."""

    op: str
    left: Operand
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator: {self.op!r}")

    @property
    def operands(self) -> tuple[Operand, Operand]:
        return (self.left, self.right)

    def class_key(self) -> tuple:
        """Lexical identity of this expression (op + operand base names)."""
        return (self.op, operand_base_key(self.left), operand_base_key(self.right))

    def __str__(self) -> str:
        return f"{self.op} {self.left}, {self.right}"


@dataclass(slots=True)
class UnaryOp:
    """Application of a unary operator to one operand."""

    op: str
    operand: Operand

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator: {self.op!r}")

    @property
    def operands(self) -> tuple[Operand]:
        return (self.operand,)

    def class_key(self) -> tuple:
        return (self.op, operand_base_key(self.operand))

    def __str__(self) -> str:
        return f"{self.op} {self.operand}"


@dataclass(slots=True)
class Load:
    """``load array, index`` — read one element of a named array.

    ``array`` is a function-level array symbol (see
    ``Function.arrays``), *not* an SSA value: arrays live in a separate
    non-SSA namespace and are mutated in place by :class:`Store`.  A load
    whose index is out of bounds raises ``InterpreterError`` at run time,
    which is why ``load`` is registered as a trapping operator — hoisting
    one speculatively can introduce a fault the original program never
    executed.
    """

    array: str
    index: Operand

    @property
    def op(self) -> str:
        return "load"

    @property
    def operands(self) -> tuple[Operand]:
        return (self.index,)

    def class_key(self) -> tuple:
        """Lexical identity: the array symbol plus the index base name."""
        return ("load", ("arr", self.array), operand_base_key(self.index))

    def __str__(self) -> str:
        return f"load {self.array}, {self.index}"


#: Anything that may appear on the right-hand side of an assignment.
Rhs = Union[BinOp, UnaryOp, Load, Operand]


def is_expr_rhs(rhs: Rhs) -> bool:
    """True for right-hand sides that form a lexical expression class.

    This is the single predicate every layer (occurrence index, FRG
    construction, bit-vector dataflow, the MC-PRE rewriter) uses to decide
    whether an assignment's rhs participates in redundancy elimination;
    copies (bare operands) do not.
    """
    return isinstance(rhs, (BinOp, UnaryOp, Load))


@dataclass(slots=True)
class Assign:
    """``target = rhs`` — a computation or a copy."""

    target: Var
    rhs: Rhs

    @property
    def is_copy(self) -> bool:
        return isinstance(self.rhs, (Var, Const))

    def used_operands(self) -> tuple[Operand, ...]:
        if isinstance(self.rhs, (BinOp, UnaryOp, Load)):
            return self.rhs.operands
        return (self.rhs,)

    def __str__(self) -> str:
        return f"{self.target} = {self.rhs}"


@dataclass(slots=True)
class Output:
    """Emit *value* to the observable output trace (like a ``print``).

    Gives programs externally visible behaviour beyond their return value,
    which the semantic-equivalence tests rely on.
    """

    value: Operand

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"output {self.value}"


@dataclass(slots=True)
class Store:
    """``store array, index, value`` — write one element of a named array.

    A side-effecting statement (it is not an :class:`Assign` and defines
    no SSA value).  Stores are memory-dependence barriers: a store to a
    location that may alias a load's location *kills* that load's
    redundancy class downstream, which is what keeps PRE of loads sound.
    An out-of-bounds index raises at run time, mirroring :class:`Load`.
    """

    array: str
    index: Operand
    value: Operand

    @property
    def op(self) -> str:
        return "store"

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.index, self.value)

    def __str__(self) -> str:
        return f"store {self.array}, {self.index}, {self.value}"


#: Body statements (everything between the phis and the terminator).
Statement = Union[Assign, Output, Store]


@dataclass(slots=True)
class Phi:
    """SSA phi: ``target = phi(pred_label: operand, ...)``.

    ``args`` maps each predecessor block label to the operand flowing in
    along that edge.  Keeping the map keyed by label (rather than positional)
    makes edge-splitting transforms and the interpreter simpler and safer.
    """

    target: Var
    args: dict[str, Operand] = field(default_factory=dict)

    def used_operands(self) -> tuple[Operand, ...]:
        return tuple(self.args.values())

    def __str__(self) -> str:
        joined = ", ".join(f"{label}: {arg}" for label, arg in sorted(self.args.items()))
        return f"{self.target} = phi({joined})"


@dataclass(slots=True)
class Jump:
    """Unconditional branch."""

    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def used_operands(self) -> tuple[Operand, ...]:
        return ()

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(slots=True)
class CondJump:
    """Two-way branch on a boolean (non-zero = taken) operand."""

    cond: Operand
    true_target: str
    false_target: str

    def successors(self) -> tuple[str, ...]:
        return (self.true_target, self.false_target)

    def used_operands(self) -> tuple[Operand, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        return f"br {self.cond}, {self.true_target}, {self.false_target}"


@dataclass(slots=True)
class Return:
    """Function return; ``value`` may be ``None`` for a void return."""

    value: Operand | None = None

    def successors(self) -> tuple[str, ...]:
        return ()

    def used_operands(self) -> tuple[Operand, ...]:
        return () if self.value is None else (self.value,)

    def __str__(self) -> str:
        return "ret" if self.value is None else f"ret {self.value}"


#: Block terminators.
Terminator = Union[Jump, CondJump, Return]


def retarget(terminator: Terminator, old: str, new: str) -> None:
    """Redirect every successor reference to *old* in *terminator* to *new*."""
    if isinstance(terminator, Jump):
        if terminator.target == old:
            terminator.target = new
    elif isinstance(terminator, CondJump):
        if terminator.true_target == old:
            terminator.true_target = new
        if terminator.false_target == old:
            terminator.false_target = new
