"""Process-parallel fuzzing: ``--jobs N`` must change nothing but time.

The contract: cases are deterministic in ``(seed, shape)``, shard
statistics merge commutatively, and the failing list is re-sorted into
sequential order — so a parallel run's summary is byte-identical to a
single-process run apart from ``wall_time_s`` (and the recorded ``jobs``
value itself).
"""

import json
import os

import pytest

from repro.check.cli import main
from repro.check.driver import DriverStats, run_driver
from repro.parallel import ParallelMapError, parallel_map

#: Summary fields legitimately different between job counts.
TIMING_KEYS = ("wall_time_s", "jobs")


def _mul2(x):
    return x * 2


def _interrupt_on_3(x):
    # A worker raising KeyboardInterrupt models Ctrl-C deterministically:
    # the pool forwards BaseExceptions from workers just like a signal in
    # the main thread would surface mid-wait.
    if x == 3:
        raise KeyboardInterrupt
    return x * 2


def _exit_on_2(x):
    if x == 2:
        os._exit(41)  # hard worker death: no exception, no cleanup
    return x * 2


def _value_error_on_1(x):
    if x == 1:
        raise ValueError("worker bug")
    return x * 2


class TestParallelMap:
    def test_preserves_order_sequential(self):
        assert parallel_map(_mul2, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_preserves_order_parallel(self):
        assert parallel_map(_mul2, list(range(7)), jobs=3) == [
            0, 2, 4, 6, 8, 10, 12,
        ]

    def test_empty(self):
        assert parallel_map(_mul2, [], jobs=4) == []


class TestInterruption:
    def test_keyboard_interrupt_surfaces_partial_results(self):
        with pytest.raises(ParallelMapError) as info:
            parallel_map(_interrupt_on_3, list(range(8)), jobs=4)
        error = info.value
        assert isinstance(error.cause, KeyboardInterrupt)
        assert error.total == 8
        # Whatever completed is correct and indexed by input position.
        assert error.partial
        assert 3 not in error.partial
        assert all(error.partial[i] == i * 2 for i in error.partial)

    def test_dead_worker_process_surfaces_partial_results(self):
        with pytest.raises(ParallelMapError) as info:
            parallel_map(_exit_on_2, list(range(6)), jobs=3)
        error = info.value
        assert type(error.cause).__name__ == "BrokenProcessPool"
        assert error.total == 6
        assert all(error.partial[i] == i * 2 for i in error.partial)

    def test_ordinary_worker_exception_propagates_unwrapped(self):
        # A bug in the worker function is the caller's exception, not an
        # infrastructure failure.
        with pytest.raises(ValueError, match="worker bug"):
            parallel_map(_value_error_on_1, list(range(5)), jobs=2)


def _shard_boom(seeds, **kwargs):
    raise KeyboardInterrupt


class TestInterruptedDriver:
    def test_merge_propagates_interrupted_flag(self):
        clean = DriverStats(cases=2)
        cut = DriverStats(cases=1, interrupted=True,
                          interrupt_reason="KeyboardInterrupt")
        merged = DriverStats().merge(clean).merge(cut)
        assert merged.interrupted is True
        assert merged.interrupt_reason == "KeyboardInterrupt"
        assert merged.to_dict()["interrupted"] is True

    def test_to_dict_reports_interrupted(self):
        assert DriverStats().to_dict()["interrupted"] is False

    def test_parallel_driver_returns_partial_stats_on_interrupt(
        self, monkeypatch
    ):
        # Make every shard worker die with Ctrl-C: the driver must come
        # back with interrupted stats instead of a traceback.
        import repro.check.driver as driver_module

        monkeypatch.setattr(driver_module, "_shard_worker", _shard_boom)
        stats, failing = run_driver(4, ("cint",), ("equiv",), jobs=2)
        assert stats.interrupted is True
        assert stats.interrupt_reason == "KeyboardInterrupt"
        assert failing == []
        assert stats.cases == 0  # no shard completed


class TestDriverStatsMerge:
    def test_addition_is_commutative(self):
        a = DriverStats(
            cases=3, skipped=1,
            per_oracle={"equiv": [6, 1]}, by_kind={"divergence": 1},
        )
        b = DriverStats(
            cases=2, skipped=0,
            per_oracle={"equiv": [4, 0], "safety": [2, 0]}, by_kind={},
        )
        left = DriverStats().merge(a).merge(b).to_dict()
        right = DriverStats().merge(b).merge(a).to_dict()
        assert left == right
        assert left["cases"] == 5
        assert left["per_oracle"]["equiv"] == {"checks": 10, "failures": 1}

    def test_wall_time_not_summed(self):
        a = DriverStats(wall_time_s=1.0)
        merged = DriverStats(wall_time_s=2.0).merge(a)
        assert merged.wall_time_s == 2.0


class TestParallelDriver:
    def test_jobs2_matches_sequential(self):
        seq_stats, seq_failing = run_driver(
            4, ("cint",), ("equiv",), jobs=1
        )
        par_stats, par_failing = run_driver(
            4, ("cint",), ("equiv",), jobs=2
        )
        seq = seq_stats.to_dict()
        par = par_stats.to_dict()
        seq.pop("wall_time_s")
        par.pop("wall_time_s")
        assert par == seq
        assert [(r.seed, r.shape) for r in par_failing] == [
            (r.seed, r.shape) for r in seq_failing
        ]

    def test_cli_summary_identical_modulo_timing(self, tmp_path):
        summaries = []
        for jobs in ("1", "2"):
            out = tmp_path / f"jobs{jobs}"
            rc = main([
                "--seeds", "3", "--shape", "cint", "--oracle", "equiv",
                "--jobs", jobs, "--json", "--out", str(out),
            ])
            assert rc == 0
            data = json.loads((out / "summary.json").read_text())
            for key in TIMING_KEYS:
                data.pop(key)
            summaries.append(data)
        assert summaries[0] == summaries[1]
