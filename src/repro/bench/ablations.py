"""Ablation experiments (A1 lifetime, A2 profiles) as library functions.

Used by both the pytest-benchmark harness (``benchmarks/``) and the
``python -m repro.bench`` CLI.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.analysis.liveness import compute_liveness
from repro.baselines.mcpre import run_mc_pre
from repro.bench.workloads import Workload
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.ir.function import Function
from repro.ir.printer import format_function
from repro.pipeline import prepare
from repro.profiles.counts import normalize_expr_counts
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa


def temp_live_range_size(func: Function) -> int:
    """Number of (block, temp-version) live-in pairs for PRE temps."""
    liveness = compute_liveness(func, by_version=True)
    return sum(
        1
        for label in func.blocks
        for name, _version in liveness.live_in.get(label, ())
        if name.startswith("%pre")
    )


def temp_weighted_pressure(func: Function, node_freq: dict[str, int]) -> int:
    """Profile-weighted count of live PRE temporaries per block."""
    liveness = compute_liveness(func, by_version=True)
    return sum(
        node_freq.get(label, 0)
        for label in func.blocks
        for name, _version in liveness.live_in.get(label, ())
        if name.startswith("%pre")
    )


@dataclass
class LifetimeSide:
    """One cut side's measurements on one workload."""

    live_range: int
    pressure: int
    cost: int


@dataclass
class LifetimeAblation:
    name: str
    late: LifetimeSide
    early: LifetimeSide


def lifetime_ablation(workload: Workload) -> LifetimeAblation:
    """Compile one workload with both cut sides and compare lifetimes."""

    def side(sink_closest: bool) -> LifetimeSide:
        prepared = prepare(workload.program.func)
        train = run_function(prepared, workload.train_args)
        ssa = copy.deepcopy(prepared)
        construct_ssa(ssa)
        run_mc_ssapre(
            ssa, train.profile.nodes_only(), sink_closest=sink_closest
        )
        ranges = temp_live_range_size(ssa)
        pressure = temp_weighted_pressure(ssa, train.profile.node_freq)
        destruct_ssa(ssa)
        cost = run_function(ssa, workload.train_args).dynamic_cost
        return LifetimeSide(live_range=ranges, pressure=pressure, cost=cost)

    return LifetimeAblation(
        name=workload.name, late=side(True), early=side(False)
    )


@dataclass
class ProfileAblation:
    name: str
    identical_output: bool
    counts_match_mcpre: bool


def profile_ablation(workload: Workload) -> ProfileAblation:
    """Check node-frequency sufficiency on one workload (paper contrib 3)."""
    prepared = prepare(workload.program.func)
    train = run_function(prepared, workload.train_args)

    def compile_with(profile):
        ssa = copy.deepcopy(prepared)
        construct_ssa(ssa)
        run_mc_ssapre(ssa, profile)
        return ssa

    nodes_only = compile_with(train.profile.nodes_only())
    full = compile_with(train.profile)
    identical = format_function(nodes_only) == format_function(full)

    destruct_ssa(nodes_only)
    mc_ssa = normalize_expr_counts(
        run_function(nodes_only, workload.train_args).expr_counts
    )
    cfg_version = copy.deepcopy(prepared)
    run_mc_pre(cfg_version, train.profile)
    mc_pre = normalize_expr_counts(
        run_function(cfg_version, workload.train_args).expr_counts
    )
    match = all(
        mc_ssa.get(key, 0) == mc_pre.get(key, 0)
        for key in set(mc_ssa) | set(mc_pre)
    )
    return ProfileAblation(
        name=workload.name, identical_output=identical, counts_match_mcpre=match
    )


def render_lifetime(results: list[LifetimeAblation]) -> str:
    header = (
        f"{'Benchmark':<12} {'range late':>10} {'range early':>12} "
        f"{'press late':>11} {'press early':>12} {'cost equal':>11}"
    )
    lines = [
        "Ablation A1: reverse-labeling (late) vs source-side (early) cut",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for r in results:
        lines.append(
            f"{r.name:<12} {r.late.live_range:>10} {r.early.live_range:>12} "
            f"{r.late.pressure:>11} {r.early.pressure:>12} "
            f"{str(r.late.cost == r.early.cost):>11}"
        )
    return "\n".join(lines)


def render_profiles(results: list[ProfileAblation]) -> str:
    lines = ["Ablation A2: node frequencies suffice for MC-SSAPRE", "=" * 52]
    for r in results:
        lines.append(
            f"  {r.name:<12} identical-output={str(r.identical_output):<5} "
            f"optimal-counts-match-mcpre={r.counts_match_mcpre}"
        )
    return "\n".join(lines)
