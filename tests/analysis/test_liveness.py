"""Tests for live-variable analysis."""

from repro.analysis.liveness import compute_liveness
from repro.ir.builder import FunctionBuilder
from repro.ssa.construct import construct_ssa


class TestBaseNameLiveness:
    def test_param_live_through_loop(self, while_loop):
        liveness = compute_liveness(while_loop)
        assert "n" in liveness.live_in["head"]
        assert "i" in liveness.live_in["head"]
        assert "acc" in liveness.live_in["head"]

    def test_dead_after_last_use(self, while_loop):
        liveness = compute_liveness(while_loop)
        # 'c' is consumed by head's branch; not live into body.
        assert "c" not in liveness.live_in["body"]

    def test_defined_before_use_not_live_in(self, straightline):
        liveness = compute_liveness(straightline)
        # x and y are defined in entry before their uses.
        assert "x" not in liveness.live_in["entry"]
        assert "a" in liveness.live_in["entry"]

    def test_branch_condition_is_a_use(self, diamond):
        liveness = compute_liveness(diamond)
        assert "c" in liveness.live_in["entry"]


class TestPhiSemantics:
    def test_phi_args_live_out_of_preds(self, while_loop):
        construct_ssa(while_loop)
        liveness = compute_liveness(while_loop, by_version=True)
        # The body's new versions flow into head's phis along the back
        # edge, so they are live out of body.
        body_out = liveness.live_out["body"]
        assert any(name == "i" for name, _ in body_out)
        assert any(name == "acc" for name, _ in body_out)

    def test_phi_target_not_live_into_own_block(self, while_loop):
        construct_ssa(while_loop)
        liveness = compute_liveness(while_loop, by_version=True)
        head = while_loop.blocks["head"]
        for phi in head.phis:
            key = (phi.target.name, phi.target.version)
            assert key not in liveness.live_in["head"]

    def test_by_version_distinguishes_versions(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.assign("x", "add", "a", 1)
        b.assign("x", "add", "x", 2)
        b.ret("x")
        func = b.build()
        construct_ssa(func)
        liveness = compute_liveness(func, by_version=True)
        # only version sets appear, never bare names
        for key in liveness.live_in["entry"]:
            assert isinstance(key, tuple)
