"""The shared rank-ordered worklist engine both PRE drivers run on.

One *round* processes a batch of expression classes (rank-ordered, see
:mod:`repro.core.occurrences`) through whichever per-class PRE algorithm
the driver supplies — safe SSAPRE steps or the min-cut formulation.  With
``rounds=1`` (the default everywhere) the engine reproduces the historic
one-shot drivers exactly: same class order on rank-0 programs, same
transformations, no operand rewriting.

With ``rounds > 1`` the engine becomes iterative: after each round it
absorbs the statement deltas CodeMotion reported into the occurrence
index, propagates the ``x = t.v`` copies into the operands of the
remaining indexed occurrences (one targeted step of SSA copy
propagation), and re-enqueues exactly the classes whose keys changed —
the newly-exposed higher-rank redundancy.  Iteration stops early when a
round leaves no dirty classes (*fixpoint*) and is always bounded by
``rounds``.

CFG-shape preservation
----------------------
Every PRE round inserts, deletes and rewrites straight-line statements
and phis but never adds or removes blocks or edges.  The drivers have
always relied on this implicitly (they build dominators and frontiers
once up front); the engine formalises it as a checked contract: after
every round it asserts ``func.cfg_generation`` is unchanged, which is
precisely the token the :class:`~repro.passes.cache.AnalysisCache` keys
CFG-derived analyses on.  Together with the pass-level ``preserves()``
declarations this guarantees dominators, dominance frontiers and loop
forests are computed at most once per function per compile, no matter
how many rounds run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.occurrences import OccurrenceIndex
from repro.core.ssapre.codemotion import CodeMotionReport
from repro.core.ssapre.frg import ExprClass
from repro.ir.function import Function
from repro.ir.values import Var
from repro.ssa.ssa_verifier import verify_ssa

#: Round budget used by the iterative pipeline stages (``ssapre-iter``,
#: ``mc-ssapre-iter``).  A chain of operand nesting depth *d* needs
#: ``d + 1`` rounds to collapse completely, so this covers every chain
#: the composite generator emits (depth knob ≤ 3) with one round spare;
#: deeper programs simply stop at the bound with ``fixpoint=False``.
DEFAULT_ITERATIVE_ROUNDS = 4


@dataclass
class RoundStats:
    """Per-round observability, surfaced through ``PassReport``."""

    number: int
    classes: int
    changed: int
    insertions: int
    reloads: int

    def to_dict(self) -> dict:
        return {
            "round": self.number,
            "classes": self.classes,
            "changed": self.changed,
            "insertions": self.insertions,
            "reloads": self.reloads,
        }


ProcessRound = Callable[[Function, list[ExprClass]], list[CodeMotionReport]]


def run_rounds(
    func: Function,
    result,
    process_round: ProcessRound,
    *,
    classes: list[ExprClass] | None = None,
    rounds: int = 1,
    validate: bool = False,
) -> None:
    """Drive *process_round* to fixpoint (or the ``rounds`` bound).

    *result* is the driver's ``PREResult``: the engine appends each
    round's :class:`RoundStats` to ``result.round_stats``, sets
    ``result.fixpoint``, and — the part callers observe through the
    analysis cache — calls ``func.mark_code_mutated()`` only when some
    round actually changed the program.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")

    index = OccurrenceIndex.build(func)
    if classes is None:
        work = index.classes_by_rank()
    else:
        work = index.sort_classes(list(classes))

    cfg_generation = func.cfg_generation
    mutated = False
    result.fixpoint = True
    for number in range(1, rounds + 1):
        if not work:
            break
        reports = process_round(func, work)
        if func.cfg_generation != cfg_generation:
            raise AssertionError(
                "PRE round mutated the CFG: code motion must only "
                "insert/delete straight-line statements "
                f"(cfg_generation {cfg_generation} -> {func.cfg_generation})"
            )
        result.reports.extend(reports)
        changed = [r for r in reports if r.changed]
        mutated = mutated or bool(changed)
        result.round_stats.append(RoundStats(
            number=number,
            classes=len(work),
            changed=len(changed),
            insertions=sum(r.insertions for r in changed),
            reloads=sum(r.reloads for r in changed),
        ))

        copies: dict[tuple[str, int | None], Var] = {}
        for report in reports:
            for stmt in report.removed:
                index.remove_statement(stmt)
            for label, stmt in report.inserted:
                index.add_statement(label, stmt)
            for target, source in report.copies:
                copies[(target.name, target.version)] = source

        if number == rounds:
            # Bound reached: report whether more work was exposed, but
            # leave the program untouched so a bounded run is a prefix
            # of a longer one.
            result.fixpoint = not index.has_pending_uses(copies)
            break
        dirty = index.rewrite_uses(copies)
        if dirty and validate:
            verify_ssa(func)
        work = [ExprClass(key) for key in sorted(
            dirty, key=lambda k: (index.rank(k), index.first_seen(k))
        )]

    if mutated:
        func.mark_code_mutated()
