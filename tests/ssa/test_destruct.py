"""Tests for out-of-SSA translation, including parallel-copy hazards."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.ir.verifier import verify_function
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa, sequentialize_parallel_copies
from repro.ir.values import Const, Var


class TestSequentialize:
    def fresh(self):
        counter = [0]

        def make():
            counter[0] += 1
            return Var(f"tmp{counter[0]}")

        return make

    def run_copies(self, pairs, env):
        ordered = sequentialize_parallel_copies(pairs, self.fresh())
        env = dict(env)
        for dst, src in ordered:
            env[dst] = env[src] if isinstance(src, Var) else src.value
        return env

    def test_independent_copies(self):
        env = self.run_copies(
            [(Var("a"), Var("x")), (Var("b"), Var("y"))], {Var("x"): 1, Var("y"): 2}
        )
        assert env[Var("a")] == 1 and env[Var("b")] == 2

    def test_swap(self):
        env = self.run_copies(
            [(Var("a"), Var("b")), (Var("b"), Var("a"))], {Var("a"): 1, Var("b"): 2}
        )
        assert env[Var("a")] == 2 and env[Var("b")] == 1

    def test_three_cycle(self):
        pairs = [(Var("a"), Var("b")), (Var("b"), Var("c")), (Var("c"), Var("a"))]
        env = self.run_copies(pairs, {Var("a"): 1, Var("b"): 2, Var("c"): 3})
        assert (env[Var("a")], env[Var("b")], env[Var("c")]) == (2, 3, 1)

    def test_chain_ordering(self):
        # a <- b, c <- a : c must read the OLD a.
        pairs = [(Var("a"), Var("b")), (Var("c"), Var("a"))]
        env = self.run_copies(pairs, {Var("a"): 10, Var("b"): 20})
        assert env[Var("c")] == 10 and env[Var("a")] == 20

    def test_shared_source_in_cycle(self):
        # a <- b, b <- a, c <- b: c needs old b even though b is recycled.
        pairs = [
            (Var("a"), Var("b")),
            (Var("b"), Var("a")),
            (Var("c"), Var("b")),
        ]
        env = self.run_copies(pairs, {Var("a"): 1, Var("b"): 2})
        assert env[Var("c")] == 2
        assert env[Var("a")] == 2 and env[Var("b")] == 1

    def test_self_copy_dropped(self):
        ordered = sequentialize_parallel_copies(
            [(Var("a"), Var("a"))], self.fresh()
        )
        assert ordered == []

    def test_constants_as_sources(self):
        env = self.run_copies([(Var("a"), Const(9))], {})
        assert env[Var("a")] == 9

    def test_duplicate_destination_rejected(self):
        with pytest.raises(ValueError):
            sequentialize_parallel_copies(
                [(Var("a"), Var("x")), (Var("a"), Var("y"))], self.fresh()
            )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_permutation_copies(self, seed):
        """Parallel semantics: dst_i gets OLD value of src_i, always."""
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 6)
        variables = [Var(f"v{i}") for i in range(n)]
        env = {v: i * 10 for i, v in enumerate(variables)}
        pairs = [(v, rng.choice(variables)) for v in variables]
        expected = {dst: env[src] for dst, src in pairs}
        result = self.run_copies(pairs, env)
        for dst, value in expected.items():
            assert result[dst] == value


class TestDestruct:
    def test_round_trip_semantics(self, while_loop):
        reference = run_function(copy.deepcopy(while_loop), [2, 3, 6])
        construct_ssa(while_loop)
        destruct_ssa(while_loop)
        verify_function(while_loop)
        result = run_function(while_loop, [2, 3, 6])
        assert result.observable() == reference.observable()

    def test_no_phis_remain(self, while_loop):
        construct_ssa(while_loop)
        destruct_ssa(while_loop)
        assert all(not block.phis for block in while_loop)

    def test_swap_problem_program(self):
        """Loop-carried swap: x, y = y, x each iteration."""
        b = FunctionBuilder("swap", params=["n"])
        b.block("entry")
        b.copy("x", 1)
        b.copy("y", 2)
        b.copy("i", 0)
        b.jump("head")
        b.block("head")
        b.assign("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.copy("t", "x")
        b.copy("x", "y")
        b.copy("y", "t")
        b.assign("i", "add", "i", 1)
        b.jump("head")
        b.block("done")
        b.assign("r", "mul", "x", 10)
        b.assign("r", "add", "r", "y")
        b.ret("r")
        func = b.build()
        expected = [run_function(copy.deepcopy(func), [k]).return_value for k in range(4)]
        construct_ssa(func)
        destruct_ssa(func)
        got = [run_function(copy.deepcopy(func), [k]).return_value for k in range(4)]
        assert got == expected

    def test_params_rebound(self, straightline):
        construct_ssa(straightline)
        destruct_ssa(straightline)
        assert all(p.version is None for p in straightline.params)
        run = run_function(straightline, [2, 3])
        assert run.return_value == 25

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_round_trip(self, seed):
        spec = ProgramSpec(name="d", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 5)
        reference = run_function(copy.deepcopy(prog.func), args)
        construct_ssa(prog.func)
        destruct_ssa(prog.func)
        verify_function(prog.func)
        result = run_function(prog.func, args)
        assert result.observable() == reference.observable()


def test_duplicate_pred_swap_phi():
    """A conditional branch with both arms on the phi block must emit the
    parallel copy once, not twice (twice would undo a swap)."""
    from repro.ir.builder import FunctionBuilder
    from repro.ir.values import Var

    b = FunctionBuilder("f", params=["c"])
    b.block("entry")
    b.copy(Var("x", 1), 1)
    b.copy(Var("y", 1), 2)
    b.branch(Var("c", 1), "join", "join")
    b.block("pre2")
    b.copy(Var("x", 2), 5)
    b.copy(Var("y", 2), 6)
    b.jump("join")
    b.block("join")
    b.phi(Var("x", 3), entry=Var("y", 1), pre2=Var("y", 2))
    b.phi(Var("y", 3), entry=Var("x", 1), pre2=Var("x", 2))
    b.assign(Var("r", 1), "mul", Var("x", 3), 10)
    b.assign(Var("r", 2), "add", Var("r", 1), Var("y", 3))
    b.ret(Var("r", 2))
    func = b.build()
    func.params = [Var("c", 1)]
    destruct_ssa(func)
    assert run_function(func, [0]).return_value == 21
