"""Tests for the profile container."""

from repro.profiles.profile import ExecutionProfile


def make_profile() -> ExecutionProfile:
    return ExecutionProfile(
        node_freq={"a": 10, "b": 6, "c": 4},
        edge_freq={("a", "b"): 6, ("a", "c"): 4},
    )


class TestAccessors:
    def test_node_and_edge_lookup(self):
        profile = make_profile()
        assert profile.node("a") == 10
        assert profile.edge("a", "b") == 6

    def test_missing_defaults_to_zero(self):
        profile = make_profile()
        assert profile.node("zzz") == 0
        assert profile.edge("b", "a") == 0


class TestNodesOnly:
    def test_drops_edges_keeps_nodes(self):
        restricted = make_profile().nodes_only()
        assert restricted.node_freq == {"a": 10, "b": 6, "c": 4}
        assert restricted.edge_freq == {}

    def test_is_a_copy(self):
        original = make_profile()
        restricted = original.nodes_only()
        restricted.node_freq["a"] = 999
        assert original.node("a") == 10


class TestScaled:
    def test_halving(self):
        scaled = make_profile().scaled(0.5)
        assert scaled.node("a") == 5
        assert scaled.edge("a", "b") == 3

    def test_never_negative(self):
        scaled = make_profile().scaled(-1)
        assert all(v == 0 for v in scaled.node_freq.values())


class TestFlowConservation:
    def test_consistent_profile_passes(self):
        profile = make_profile()
        assert profile.check_flow_conservation("a") == []

    def test_inconsistent_profile_flagged(self):
        profile = make_profile()
        profile.node_freq["b"] = 7  # in-edges sum to 6
        assert profile.check_flow_conservation("a") == ["b"]

    def test_entry_exempt(self):
        profile = make_profile()
        profile.node_freq["a"] = 123  # entry has no in-edges
        assert profile.check_flow_conservation("a") == []


class TestMerge:
    def test_counters_add(self):
        merged = make_profile().merge(
            ExecutionProfile(
                node_freq={"a": 1, "d": 2},
                edge_freq={("a", "b"): 3, ("c", "d"): 2},
            )
        )
        assert merged.node("a") == 11
        assert merged.node("d") == 2
        assert merged.edge("a", "b") == 9
        assert merged.edge("c", "d") == 2

    def test_merge_returns_self_and_mutates(self):
        profile = make_profile()
        assert profile.merge(make_profile()) is profile
        assert profile.node("a") == 20

    def test_merge_empty_is_identity(self):
        profile = make_profile()
        profile.merge(ExecutionProfile())
        assert profile.node_freq == make_profile().node_freq
        assert profile.edge_freq == make_profile().edge_freq
