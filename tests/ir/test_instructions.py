"""Tests for IR instructions."""

import pytest

from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Output,
    Phi,
    Return,
    UnaryOp,
    retarget,
)
from repro.ir.values import Const, Var


class TestBinOp:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("nope", Var("a"), Var("b"))

    def test_class_key_ignores_versions(self):
        e1 = BinOp("add", Var("a", 1), Var("b", 2))
        e2 = BinOp("add", Var("a", 9), Var("b", 4))
        assert e1.class_key() == e2.class_key()

    def test_class_key_distinguishes_operand_order(self):
        e1 = BinOp("sub", Var("a"), Var("b"))
        e2 = BinOp("sub", Var("b"), Var("a"))
        assert e1.class_key() != e2.class_key()

    def test_class_key_distinguishes_constants(self):
        assert (
            BinOp("add", Var("a"), Const(1)).class_key()
            != BinOp("add", Var("a"), Const(2)).class_key()
        )

    def test_operands(self):
        e = BinOp("add", Var("a"), Const(3))
        assert e.operands == (Var("a"), Const(3))


class TestUnaryOp:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            UnaryOp("nope", Var("a"))

    def test_class_key(self):
        assert UnaryOp("neg", Var("a", 1)).class_key() == ("neg", ("var", "a"))


class TestAssign:
    def test_is_copy(self):
        assert Assign(Var("x"), Var("y")).is_copy
        assert Assign(Var("x"), Const(3)).is_copy
        assert not Assign(Var("x"), BinOp("add", Var("a"), Var("b"))).is_copy

    def test_used_operands_of_computation(self):
        stmt = Assign(Var("x"), BinOp("add", Var("a"), Const(1)))
        assert stmt.used_operands() == (Var("a"), Const(1))

    def test_used_operands_of_copy(self):
        assert Assign(Var("x"), Var("y")).used_operands() == (Var("y"),)


class TestTerminators:
    def test_jump_successors(self):
        assert Jump("L").successors() == ("L",)

    def test_condjump_successors(self):
        t = CondJump(Var("c"), "T", "F")
        assert t.successors() == ("T", "F")
        assert t.used_operands() == (Var("c"),)

    def test_return_successors_empty(self):
        assert Return().successors() == ()
        assert Return(Var("x")).used_operands() == (Var("x"),)
        assert Return().used_operands() == ()

    def test_retarget_jump(self):
        t = Jump("old")
        retarget(t, "old", "new")
        assert t.target == "new"

    def test_retarget_condjump_both_arms(self):
        t = CondJump(Var("c"), "old", "old")
        retarget(t, "old", "new")
        assert t.true_target == "new"
        assert t.false_target == "new"

    def test_retarget_condjump_single_arm(self):
        t = CondJump(Var("c"), "old", "other")
        retarget(t, "old", "new")
        assert (t.true_target, t.false_target) == ("new", "other")


class TestPhi:
    def test_str_is_deterministic(self):
        phi = Phi(Var("x", 3), {"B2": Var("x", 1), "B1": Var("x", 2)})
        assert str(phi) == "x.3 = phi(B1: x.2, B2: x.1)"

    def test_used_operands(self):
        phi = Phi(Var("x", 3), {"B1": Var("x", 1), "B2": Const(0)})
        assert set(phi.used_operands()) == {Var("x", 1), Const(0)}


def test_output_used_operands():
    assert Output(Var("v")).used_operands() == (Var("v"),)
