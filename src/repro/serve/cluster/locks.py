"""Per-key cross-process build locks (``flock`` + stale breaking).

In-process single-flight (``CompileService._inflight``) coalesces
concurrent compiles of one key inside one service.  Across worker
processes that table does not exist, so two workers racing a cold key
would both compile it.  The cluster closes the gap with per-key file
locks in a shared directory:

* a builder takes ``<lock_dir>/<key[:2]>/<key>.lock`` before compiling;
* the race loser blocks on the same lock, and when it finally acquires
  it the artifact is already on the shared disk tier — it *rehydrates*
  instead of compiling (the re-check lives in
  ``CompileService._run_build``);
* ``flock`` locks die with their holder's fd, so a crashed worker frees
  its lock automatically; a *hung* worker does not, which is what the
  stale-breaking path is for: a waiter that finds the lock file's mtime
  older than ``stale_after`` unlinks it and retries.

The unlink/retry protocol is safe because every acquirer verifies,
*after* winning ``flock``, that the path still names the inode it
locked; a lock won on an unlinked or replaced inode is discarded and
the acquire loop restarts.  Breaking has one benign TOCTOU window (a
lock refreshed between the staleness ``stat`` and the ``unlink`` can be
broken while live): the consequence is a duplicate compile, never a
torn artifact — the disk tier's atomic rename already tolerates
concurrent writers of the same key.
"""

from __future__ import annotations

import fcntl
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional

#: How old (seconds since last mtime refresh) a lock file must be
#: before a waiter may break it.  Far above any real compile (~0.1 s)
#: so a live builder is never broken in practice.
DEFAULT_STALE_AFTER_S = 10.0

#: Polling interval while waiting on a held lock.
DEFAULT_POLL_S = 0.01

__all__ = [
    "DEFAULT_POLL_S",
    "DEFAULT_STALE_AFTER_S",
    "FileLock",
    "KeyLockManager",
    "LockTimeout",
]


class LockTimeout(TimeoutError):
    """Raised when :meth:`FileLock.acquire` exceeds its timeout."""


class FileLock:
    """One advisory ``flock`` lock, addressed by path.

    Not reentrant and not thread-safe: use one instance per
    acquire/release pair (``KeyLockManager.holding`` hands out fresh
    instances).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        stale_after: float = DEFAULT_STALE_AFTER_S,
        poll_s: float = DEFAULT_POLL_S,
        on_break: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.stale_after = stale_after
        self.poll_s = poll_s
        self.on_break = on_break
        self._fd: Optional[int] = None

    # ------------------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> None:
        """Block until the lock is held (or raise :class:`LockTimeout`)."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path!r} already held")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except BlockingIOError:
                os.close(fd)
                self._break_if_stale()
                if deadline is not None and time.monotonic() >= deadline:
                    raise LockTimeout(f"timed out waiting for {self.path!r}")
                time.sleep(self.poll_s)
                continue
            if not self._path_is(fd):
                # The file was unlinked (release or stale break) between
                # our open and flock: we locked a dead inode.  Retry.
                os.close(fd)
                continue
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()} {time.time():.6f}\n".encode())
            self._fd = fd
            return

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            # Unlink only if the path still names our inode; a stale
            # break may have replaced it with someone else's live lock.
            if self._path_is(fd):
                os.unlink(self.path)
        finally:
            os.close(fd)  # drops the flock

    def locked(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _path_is(self, fd: int) -> bool:
        """Does ``self.path`` still name the inode behind ``fd``?"""
        try:
            return os.stat(self.path).st_ino == os.fstat(fd).st_ino
        except FileNotFoundError:
            return False

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except FileNotFoundError:
            return
        if age <= self.stale_after:
            return
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            return  # another waiter broke it first
        if self.on_break is not None:
            self.on_break(self.path)


class KeyLockManager:
    """Per-key locks under one shared directory, sharded like the store.

    Lock files live at ``<root>/<key[:2]>/<key>.lock`` so a busy
    cluster's lock directory mirrors the disk tier's fan-out.  Safe to
    share one manager across threads: every :meth:`lock` call returns a
    fresh :class:`FileLock`.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        stale_after: float = DEFAULT_STALE_AFTER_S,
        poll_s: float = DEFAULT_POLL_S,
        on_break: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.stale_after = stale_after
        self.poll_s = poll_s
        self.on_break = on_break
        self.root.mkdir(parents=True, exist_ok=True)

    def lock(self, key: str) -> FileLock:
        shard = self.root / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        return FileLock(
            shard / f"{key}.lock",
            stale_after=self.stale_after,
            poll_s=self.poll_s,
            on_break=self.on_break,
        )

    @contextmanager
    def holding(self, key: str, timeout: Optional[float] = None) -> Iterator[None]:
        lock = self.lock(key)
        lock.acquire(timeout=timeout)
        try:
            yield
        finally:
            lock.release()
