"""Tests for expression-count normalisation."""

from repro.profiles.counts import normalize_expr_counts


def test_version_suffixes_stripped():
    counts = {
        ("add", ("var", "a_v1"), ("var", "b_v2")): 3,
        ("add", ("var", "a_v4"), ("var", "b_v2")): 2,
    }
    merged = normalize_expr_counts(counts)
    assert merged == {("add", ("var", "a"), ("var", "b")): 5}


def test_constants_untouched():
    counts = {("add", ("var", "x_v1"), ("const", 7)): 1}
    merged = normalize_expr_counts(counts)
    assert merged == {("add", ("var", "x"), ("const", 7)): 1}


def test_plain_names_pass_through():
    counts = {("mul", ("var", "a"), ("var", "b")): 4}
    assert normalize_expr_counts(counts) == counts


def test_unary_keys():
    counts = {("neg", ("var", "v_v3")): 2, ("neg", ("var", "v")): 1}
    assert normalize_expr_counts(counts) == {("neg", ("var", "v")): 3}


def test_underscore_v_in_name_is_boundary():
    """Names are split at the first '_v': a user variable literally named
    like a lowered version collapses with its base — an accepted, documented
    limitation of the measurement helper (generated programs never use
    such names)."""
    counts = {("neg", ("var", "x_value")): 1}
    assert normalize_expr_counts(counts) == {("neg", ("var", "x")): 1}
