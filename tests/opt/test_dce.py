"""Tests for dead code elimination."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.opt.dce import eliminate_dead_code
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.ssa_verifier import verify_ssa
from tests.conftest import as_ssa


def test_requires_ssa(straightline):
    with pytest.raises(ValueError):
        eliminate_dead_code(straightline)


def test_dead_assignment_removed():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.assign("dead", "mul", "a", "a")
    b.assign("live", "add", "a", 1)
    b.ret("live")
    func = b.build()
    construct_ssa(func)
    removed = eliminate_dead_code(func)
    assert removed == 1
    assert len(func.blocks["entry"].body) == 1


def test_transitively_dead_chain_removed():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.assign("d1", "add", "a", 1)
    b.assign("d2", "add", "d1", 1)
    b.assign("d3", "add", "d2", 1)
    b.ret("a")
    func = b.build()
    construct_ssa(func)
    assert eliminate_dead_code(func) == 3
    assert func.blocks["entry"].body == []


def test_output_keeps_value_alive():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.assign("x", "add", "a", 1)
    b.output("x")
    b.ret()
    func = b.build()
    construct_ssa(func)
    assert eliminate_dead_code(func) == 0


def test_branch_condition_kept(diamond):
    ssa = as_ssa(diamond)
    eliminate_dead_code(ssa)
    verify_ssa(ssa)
    entry = ssa.blocks["entry"]
    assert entry.terminator.cond is not None


def test_dead_phi_removed(while_loop):
    """A loop-carried value nobody reads disappears entirely."""
    b = FunctionBuilder("f", params=["n"])
    b.block("entry")
    b.copy("i", 0)
    b.copy("junk", 1)
    b.jump("head")
    b.block("head")
    b.assign("junk", "add", "junk", "junk")  # dead accumulator
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("i")
    func = b.build()
    construct_ssa(func)
    removed = eliminate_dead_code(func)
    assert removed >= 2  # the junk phi and its add
    verify_ssa(func)
    assert run_function(func, [4]).return_value == 4


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=30_000))
def test_semantics_preserved(seed):
    spec = ProgramSpec(name="dce", seed=seed, max_depth=2)
    prog = generate_program(spec)
    construct_ssa(prog.func)
    args = random_args(spec, 1)
    expected = run_function(copy.deepcopy(prog.func), args)
    eliminate_dead_code(prog.func)
    verify_ssa(prog.func)
    after = run_function(prog.func, args)
    assert after.observable() == expected.observable()
    assert after.dynamic_cost <= expected.dynamic_cost


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=30_000))
def test_idempotent(seed):
    spec = ProgramSpec(name="dcei", seed=seed, max_depth=2)
    prog = generate_program(spec)
    construct_ssa(prog.func)
    eliminate_dead_code(prog.func)
    assert eliminate_dead_code(prog.func) == 0
