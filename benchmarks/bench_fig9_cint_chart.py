"""E3 — paper Figure 9: CINT2006 performance normalised to safe SSAPRE."""

from conftest import emit

from repro.bench.figures import figure9


def test_figure9_series(cint_table, benchmark):
    chart = benchmark(lambda: figure9(cint_table))
    emit("Figure 9 (CINT2006, normalised to A = 1.0)", chart.render())

    for name, a, b, c in chart.series():
        assert a == 1.0
        # C's bar sits at or below A's for every benchmark (small FDO
        # slack, as in the tables).
        assert c <= 1.03, name
        assert b > 0 and c > 0
