"""Brute-force optimal speculative placement — ground-truth oracle.

For a (small!) non-SSA function and one expression, enumerate every subset
of candidate insertion edges, apply the insertions plus the standard
availability-driven rewrite, run the program, and count dynamic
evaluations of the expression.  The minimum over all subsets is the true
computational optimum for that execution, against which MC-SSAPRE's and
MC-PRE's outputs are checked in the optimality tests (Theorem 7).

Candidate edges are pre-filtered to the essential region (an insertion on
an edge where the value is already available, or never anticipated, cannot
be part of a strictly better placement), which keeps the enumeration
tractable without excluding any optimum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis import cfg_of
from repro.analysis.dataflow import ExprKey, solve_pre_dataflow
from repro.baselines.mcpre import apply_insertions_and_rewrite
from repro.ir.function import Function
from repro.profiles.interp import run_function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache


@dataclass
class BruteForceOutcome:
    best_count: int
    best_edges: tuple[tuple[str, str], ...]
    subsets_tried: int
    baseline_count: int  # evaluations with no insertions at all


def candidate_insertion_edges(
    func: Function,
    key: ExprKey,
    cache: "AnalysisCache | None" = None,
) -> list[tuple[str, str]]:
    """Edges on which inserting the expression could possibly pay off."""
    dataflow = solve_pre_dataflow(func, [key])
    cfg = cfg_of(func, cache)
    reachable = set(cfg.reverse_postorder())
    edges = []
    for u in reachable:
        for v in cfg.successors(u):
            if (
                v in reachable
                and key not in dataflow.avail_out[u]
                and key in dataflow.pant_postphi[v]
                and not cfg.is_critical_edge(u, v)
            ):
                edges.append((u, v))
    return edges


def brute_force_optimum(
    func: Function,
    key: ExprKey,
    args: list[int],
    max_edges: int = 14,
    max_steps: int = 500_000,
) -> BruteForceOutcome:
    """Exhaustively find the best insertion set for one expression.

    *func* must be non-SSA with critical edges already split.  Raises
    ``ValueError`` when the candidate-edge count exceeds ``max_edges``
    (the search is exponential by design).
    """
    candidates = candidate_insertion_edges(func, key)
    if len(candidates) > max_edges:
        raise ValueError(
            f"{len(candidates)} candidate edges exceed the brute-force "
            f"budget of {max_edges}"
        )

    class _Sink:
        insertions = 0
        reloads = 0

    baseline = None
    best_count = None
    best_edges: tuple[tuple[str, str], ...] = ()
    tried = 0
    for r in range(len(candidates) + 1):
        for subset in itertools.combinations(candidates, r):
            tried += 1
            trial = func.clone()
            apply_insertions_and_rewrite(trial, key, list(subset), _Sink())
            outcome = run_function(trial, args, max_steps=max_steps)
            count = outcome.expr_counts.get(key, 0)
            if r == 0:
                baseline = count
            if best_count is None or count < best_count:
                best_count = count
                best_edges = subset
    assert best_count is not None and baseline is not None
    return BruteForceOutcome(
        best_count=best_count,
        best_edges=best_edges,
        subsets_tried=tried,
        baseline_count=baseline,
    )
