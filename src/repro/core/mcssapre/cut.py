"""MC-SSAPRE step 7 — minimum cut on the EFG.

The minimum cut's edges are the optimal insertion set:

* a cut on a source edge or a type 1 edge means *insert the computation*
  at the exit of the predecessor block of that Φ operand — the operand's
  ``insert`` flag is set;
* a cut on a type 2 edge means *no* insertion: the real occurrence
  downstream simply computes in place (Lemma 4 — inserting on that edge
  could never be cheaper and would lengthen the temporary's live range);
* sink edges are infinite and can never be cut.

Ties between minimum cuts are broken toward the sink ("pick later cuts",
Figure 4) via the Ford–Fulkerson Reverse Labeling Procedure implemented in
:func:`repro.flownet.mincut.min_cut`, which yields the lifetime-optimal
placement (Theorem 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mcssapre.efg import EFG
from repro.core.ssapre.frg import PhiOperand, RealOcc
from repro.flownet.mincut import min_cut
from repro.flownet.network import CutResult


@dataclass
class CutDecision:
    """Interpreted min-cut result."""

    cut: CutResult
    insert_operands: list[PhiOperand] = field(default_factory=list)
    in_place_occs: list[RealOcc] = field(default_factory=list)

    @property
    def predicted_dynamic_count(self) -> int:
        """The cut value = dynamic evaluations of the expression that
        remain chargeable to insertions and in-place SPR computations."""
        return self.cut.value


def solve_min_cut(efg: EFG, sink_closest: bool = True) -> CutDecision:
    """Run the min cut and translate it into insert decisions."""
    cut = min_cut(efg.network, sink_closest=sink_closest)
    decision = CutDecision(cut=cut)
    for operand in _all_insertable_operands(efg):
        operand.insert = False
    for edge in cut.cut_edges:
        payload = edge.payload
        if isinstance(payload, PhiOperand):
            payload.insert = True
            decision.insert_operands.append(payload)
        elif isinstance(payload, RealOcc):
            decision.in_place_occs.append(payload)
        else:  # pragma: no cover - every EFG edge carries a payload
            raise AssertionError(f"cut edge without payload: {edge!r}")
    return decision


def _all_insertable_operands(efg: EFG):
    reduced = efg.reduced
    yield from reduced.bottom_operands
    for edge in reduced.type1_edges:
        yield edge.operand
