"""Supporting scalar optimisations around PRE.

The paper's host compiler runs PRE inside a conventional SSA pipeline;
these passes reproduce the neighbours PRE interacts with most:

* :mod:`repro.opt.copyprop` — SSA copy propagation.  PRE's saves and
  reloads materialise as copies (``t = a+b; x = t`` / ``x = t``); copy
  propagation forwards them so the temporary is read directly, which is
  what lets a real backend coalesce the moves away (our cost model's
  "copies are free" assumption, made literal).
* :mod:`repro.opt.dce` — dead code elimination on SSA, removing
  computations whose values are never observed (e.g. originals made dead
  by copy propagation).
* :mod:`repro.opt.sccp` — sparse conditional constant propagation
  (Wegman–Zadeck), the classic companion SSA optimisation; folding
  constants before PRE shrinks expression classes.
"""

from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.sccp import sparse_conditional_constant_propagation

__all__ = [
    "eliminate_dead_code",
    "propagate_copies",
    "sparse_conditional_constant_propagation",
]
