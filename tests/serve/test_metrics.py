"""Serving metrics: pinned schema, histogram maths, hit rate."""

import json

import pytest

from repro.serve.metrics import (
    COUNTERS,
    LATENCY_BUCKETS,
    METRICS_SCHEMA,
    Histogram,
    ServeMetrics,
    merge_histogram_dicts,
    merge_metrics_dicts,
    percentile_from_histogram_dict,
    sample_percentile,
)

#: The documented metrics export schema (docs/SERVING.md).  Additions
#: require a METRICS_SCHEMA bump.
EXPORT_KEYS = {"schema", "counters", "hit_rate", "histograms"}
HISTOGRAM_KEYS = {
    "count", "sum_s", "min_s", "max_s", "mean_s", "percentiles", "buckets",
}
PERCENTILE_KEYS = {"p50", "p95", "p99"}
COUNTER_NAMES = {
    "requests", "hits_memory", "hits_disk", "misses", "coalesced",
    "compiles", "compile_failures", "degraded", "timeouts", "errors",
    "evictions", "disk_corrupt",
    # Adaptation-tier counters (schema 2; docs/SERVING.md "Adaptation").
    "live_samples", "tier_interp", "drift_events", "recompiles",
    "hot_swaps", "tier_promotions", "tier_demotions", "rollbacks",
    # Cluster-tier counters (schema 3; docs/SERVING.md "Cluster").
    "plan_hits", "lock_rehydrates", "lock_breaks",
    # Minimum-coverage profiling counters (schema 4; docs/PROFILING.md).
    "live_probe_samples", "profile_reconstructions",
}


class TestSchema:
    def test_pinned_counter_set(self):
        assert set(COUNTERS) == COUNTER_NAMES

    def test_export_shape_is_json_safe(self):
        metrics = ServeMetrics()
        metrics.inc("requests")
        metrics.observe("request_s", 0.003)
        data = json.loads(json.dumps(metrics.to_dict()))
        assert set(data) == EXPORT_KEYS
        assert data["schema"] == METRICS_SCHEMA
        assert set(data["counters"]) == COUNTER_NAMES
        assert set(data["histograms"]) == {
            "compile_s", "execute_s", "request_s",
        }
        for hist in data["histograms"].values():
            assert set(hist) == HISTOGRAM_KEYS
            assert set(hist["percentiles"]) == PERCENTILE_KEYS

    def test_unknown_counter_and_histogram_are_rejected(self):
        metrics = ServeMetrics()
        with pytest.raises(KeyError):
            metrics.inc("typo")
        with pytest.raises(KeyError):
            metrics.observe("typo", 1.0)


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        hist = Histogram()
        hist.observe(0.00005)   # below the first bound
        hist.observe(0.3)       # in (0.25, 0.5]
        hist.observe(100.0)     # above every bound -> +inf
        data = hist.to_dict()
        assert data["count"] == 3
        assert data["buckets"]["le_0.0001"] == 1
        assert data["buckets"]["le_0.5"] == 1
        assert data["buckets"]["le_inf"] == 1
        assert sum(data["buckets"].values()) == 3
        assert data["min_s"] == 0.00005
        assert data["max_s"] == 100.0

    def test_empty_histogram_exports_zeros(self):
        data = Histogram().to_dict()
        assert data["count"] == 0
        assert data["mean_s"] == 0.0
        assert data["min_s"] == 0.0

    def test_bounds_are_strictly_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))


class TestHitRate:
    def test_memory_disk_and_coalesced_all_count(self):
        metrics = ServeMetrics()
        for counter, amount in (
            ("requests", 10), ("hits_memory", 4), ("hits_disk", 1),
            ("coalesced", 2), ("misses", 3),
        ):
            metrics.inc(counter, amount)
        assert metrics.hit_rate() == pytest.approx(0.7)
        assert metrics.to_dict()["hit_rate"] == pytest.approx(0.7)

    def test_zero_requests_is_zero_not_nan(self):
        assert ServeMetrics().hit_rate() == 0.0


class TestPercentiles:
    """The pinned interpolation rule, on known distributions."""

    def test_single_bucket_interpolates_linearly(self):
        hist = Histogram()
        for _ in range(100):
            hist.observe(0.0007)  # all in (0.0005, 0.001]
        assert hist.percentile(0.5) == pytest.approx(0.00075)
        assert hist.percentile(0.99) == pytest.approx(0.000995)

    def test_multi_bucket_distribution(self):
        hist = Histogram()
        for _ in range(10):
            hist.observe(0.00005)  # le_0.0001
        for _ in range(80):
            hist.observe(0.0002)   # (0.0001, 0.00025]
        for _ in range(10):
            hist.observe(0.04)     # (0.025, 0.05]
        # p50: rank 50 of 100; 10 below, 40/80 into the second bucket.
        assert hist.percentile(0.5) == pytest.approx(0.000175)
        # p95: rank 95; 90 below, 5/10 into the (0.025, 0.05] bucket.
        assert hist.percentile(0.95) == pytest.approx(0.0375)
        assert hist.percentile(0.99) == pytest.approx(0.0475)

    def test_inf_bucket_resolves_to_observed_max(self):
        hist = Histogram()
        for _ in range(10):
            hist.observe(123.0)
        assert hist.percentile(0.99) == 123.0
        assert hist.to_dict()["percentiles"]["p99"] == 123.0

    def test_empty_histogram_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_dict_form_matches_live_object(self):
        hist = Histogram()
        for value in (0.0002, 0.003, 0.003, 0.08, 0.7, 9.0):
            hist.observe(value)
        exported = hist.to_dict()
        for q in (0.5, 0.95, 0.99):
            assert percentile_from_histogram_dict(exported, q) == pytest.approx(
                hist.percentile(q)
            )

    def test_sample_percentile_linear_rule(self):
        assert sample_percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        values = [float(i) for i in range(100)]
        assert sample_percentile(values, 0.99) == pytest.approx(98.01)
        assert sample_percentile([7.0], 0.95) == 7.0
        assert sample_percentile([], 0.5) == 0.0


class TestMerge:
    """Cluster aggregation over exported per-worker snapshots."""

    def test_merged_histogram_equals_union_of_observations(self):
        combined = Histogram()
        parts = [Histogram(), Histogram()]
        for i, value in enumerate((0.0002, 0.003, 0.003, 0.08, 0.7, 9.0)):
            combined.observe(value)
            parts[i % 2].observe(value)
        merged = merge_histogram_dicts([p.to_dict() for p in parts])
        want = combined.to_dict()
        assert merged["count"] == want["count"]
        assert merged["buckets"] == want["buckets"]
        assert merged["min_s"] == want["min_s"]
        assert merged["max_s"] == want["max_s"]
        assert merged["percentiles"] == want["percentiles"]
        assert set(merged) == HISTOGRAM_KEYS

    def test_merge_ignores_empty_worker_min(self):
        busy, idle = Histogram(), Histogram()
        busy.observe(0.5)
        merged = merge_histogram_dicts([busy.to_dict(), idle.to_dict()])
        assert merged["min_s"] == 0.5
        assert merged["count"] == 1

    def test_merge_metrics_sums_counters_and_recomputes_hit_rate(self):
        a, b = ServeMetrics(), ServeMetrics()
        a.inc("requests", 6)
        a.inc("hits_memory", 3)
        a.inc("compiles", 2)
        b.inc("requests", 4)
        b.inc("hits_disk", 2)
        b.inc("plan_hits", 4)
        merged = merge_metrics_dicts([a.to_dict(), b.to_dict()])
        assert merged["schema"] == METRICS_SCHEMA
        assert merged["counters"]["requests"] == 10
        assert merged["counters"]["compiles"] == 2
        assert merged["counters"]["plan_hits"] == 4
        assert merged["hit_rate"] == pytest.approx(0.5)
        assert merged["workers"] == 2
        # Merged snapshots add only provenance on top of the export.
        assert set(merged) == EXPORT_KEYS | {"workers"}

    def test_merge_rejects_schema_mismatch(self):
        snapshot = ServeMetrics().to_dict()
        old = dict(snapshot, schema=METRICS_SCHEMA - 1)
        with pytest.raises(ValueError):
            merge_metrics_dicts([snapshot, old])

    def test_merge_of_nothing_is_an_empty_snapshot(self):
        merged = merge_metrics_dicts([])
        assert merged["counters"]["requests"] == 0
        assert merged["hit_rate"] == 0.0
