"""Tests for Function and BasicBlock."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Assign, Return
from repro.ir.values import Var


class TestBlockManagement:
    def test_first_block_becomes_entry(self):
        f = Function("f")
        f.add_block("start")
        assert f.entry == "start"
        assert f.entry_block.label == "start"

    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(ValueError):
            f.add_block("a")

    def test_cannot_remove_entry(self):
        f = Function("f")
        f.add_block("a")
        f.add_block("b")
        with pytest.raises(ValueError):
            f.remove_block("a")
        f.remove_block("b")
        assert "b" not in f.blocks

    def test_entry_block_raises_when_empty(self):
        with pytest.raises(ValueError):
            Function("f").entry_block


class TestFreshNames:
    def test_fresh_label_avoids_collisions(self):
        f = Function("f")
        f.add_block("B1")
        label = f.fresh_label("B")
        assert label not in ("B1",)
        f.add_block(label)
        assert f.fresh_label("B") != label

    def test_fresh_temp_avoids_existing_names(self):
        f = Function("f", [Var("a")])
        block = f.add_block("entry")
        block.body.append(Assign(Var("%t1"), Var("a")))
        temp = f.fresh_temp()
        assert temp.name != "%t1"
        assert temp.name != "a"


class TestIteration:
    def test_len_and_iter(self, diamond):
        labels = [b.label for b in diamond]
        assert len(diamond) == len(labels) == 4

    def test_statement_count(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.copy("x", 1)
        b.copy("y", 2)
        b.ret("x")
        func = b.build()
        # 2 body statements + 1 terminator
        assert func.statement_count() == 3

    def test_defined_vars_includes_phis_and_assigns(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        join = diamond.blocks["join"]
        defined = list(join.defined_vars())
        assert any(v.name == "z" for v in defined)

    def test_str_contains_all_blocks(self, diamond):
        text = str(diamond)
        for label in diamond.blocks:
            assert f"{label}:" in text


def test_default_terminator_is_return():
    f = Function("f")
    block = f.add_block("entry")
    assert isinstance(block.terminator, Return)
