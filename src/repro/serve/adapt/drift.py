"""Profile-drift detection: live traffic vs the compile-time profile.

An artifact is optimal only *with respect to the profile it was compiled
under* (the paper's whole premise), so the serving tier must notice when
real traffic stops looking like that profile.  :class:`DriftDetector`
scores the live node-frequency distribution against the baseline one
with a bounded divergence — normalized L1 (total variation) or
Jensen–Shannon — and fires once the score crosses ``threshold`` *and*
enough runs have been folded to make the estimate trustworthy
(``min_samples``; a two-run profile diverging from the baseline is
noise, not drift).

Both metrics live in ``[0, 1]``, compare *shapes* rather than masses
(each side is normalized first, so a uniformly-hotter workload with the
same distribution scores 0.0 — identical placement decisions, nothing to
recompile), and treat a missing side as score 0.0: no evidence is never
evidence of drift.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.serve.adapt.live import normalized

#: Recognised divergence metrics.
DRIFT_METRICS = ("l1", "js")

#: Default score threshold: a quarter of the probability mass has moved
#: (L1) before a recompile is worth its cost.
DEFAULT_THRESHOLD = 0.25

#: Default minimum live samples before the detector may fire.
DEFAULT_MIN_SAMPLES = 16

__all__ = [
    "DRIFT_METRICS",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SAMPLES",
    "DriftVerdict",
    "DriftDetector",
    "l1_distance",
    "js_divergence",
]


def l1_distance(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Total-variation distance between two distributions, in [0, 1].

    Half the L1 norm of the difference over the union of labels — the
    fraction of probability mass that moved.
    """
    labels = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in labels)


def js_divergence(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Jensen–Shannon divergence (base 2) between two distributions.

    Symmetric, finite even on disjoint supports, and bounded in [0, 1];
    the 0-contribution convention ``0·log(0) = 0`` applies.
    """
    labels = set(p) | set(q)
    div = 0.0
    for k in labels:
        pk = p.get(k, 0.0)
        qk = q.get(k, 0.0)
        mk = 0.5 * (pk + qk)
        if pk:
            div += 0.5 * pk * math.log2(pk / mk)
        if qk:
            div += 0.5 * qk * math.log2(qk / mk)
    # Clamp fp noise: disjoint supports compute to 1.0 + epsilon.
    return min(1.0, max(0.0, div))


_METRIC_FUNCS = {"l1": l1_distance, "js": js_divergence}


@dataclass(frozen=True)
class DriftVerdict:
    """One detector decision: the score and whether it fired."""

    drifted: bool
    score: float
    samples: int
    #: Why the verdict is what it is ("drift", "below-threshold",
    #: "insufficient-samples", "no-baseline", "no-live-profile").
    reason: str


class DriftDetector:
    """Scores live node frequencies against a compile-time baseline."""

    def __init__(
        self,
        metric: str = "l1",
        threshold: float = DEFAULT_THRESHOLD,
        min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        if metric not in _METRIC_FUNCS:
            raise ValueError(
                f"unknown drift metric {metric!r}; expected one of {DRIFT_METRICS}"
            )
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.metric = metric
        self.threshold = threshold
        self.min_samples = min_samples
        self._score = _METRIC_FUNCS[metric]

    def score(
        self, baseline: Mapping[str, float], live: Mapping[str, float]
    ) -> float:
        """The divergence between the two frequency maps, in [0, 1].

        Raw counts are accepted on either side; both are normalized
        before comparison.  Either side empty scores 0.0.
        """
        p = normalized(baseline)
        q = normalized(live)
        if not p or not q:
            return 0.0
        return self._score(p, q)

    def check(
        self,
        baseline: Mapping[str, float],
        live: Mapping[str, float],
        samples: int,
    ) -> DriftVerdict:
        """Full gated decision for one structural key."""
        if not any(baseline.values()):
            return DriftVerdict(False, 0.0, samples, "no-baseline")
        if not any(live.values()):
            return DriftVerdict(False, 0.0, samples, "no-live-profile")
        score = self.score(baseline, live)
        if samples < self.min_samples:
            return DriftVerdict(False, score, samples, "insufficient-samples")
        if score < self.threshold:
            return DriftVerdict(False, score, samples, "below-threshold")
        return DriftVerdict(True, score, samples, "drift")
