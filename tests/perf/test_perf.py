"""``python -m repro.perf``: BENCH.json schema, equivalence gate, CLI."""

import json

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    bench_maxflow,
    runresult_mismatches,
    scaling_network,
)
from repro.perf.cli import main
from repro.profiles.compiled import run_compiled
from repro.profiles.interp import run_function

import pytest

#: The documented BENCH.json schema (docs/PERF.md).  v2 added the
#: "iterative" section; v3 added "serving".
BENCH_KEYS = {
    "schema", "quick", "repeat", "python", "platform",
    "execution", "compile", "iterative", "serving", "maxflow", "ok",
    "wall_time_s",
}
SERVING_KEYS = {
    "requests", "unique", "cold_s", "warm_s", "speedup", "min_speedup",
    "equivalent", "hit_rate", "expected_hit_rate", "mismatches",
    "load_rps", "coalescing", "ok",
}
WORKLOAD_KEYS = {
    "name", "family", "steps", "dynamic_cost", "reference_s",
    "compiled_s", "lowering_s", "speedup", "mismatches",
}
ITERATIVE_ROW_KEYS = {
    "name", "family", "oneshot_compile_s", "iterative_compile_s",
    "compile_overhead", "rounds_run", "fixpoint",
    "oneshot_dynamic_cost", "iterative_dynamic_cost", "cost_delta",
    "observables_match",
}


class TestCli:
    @pytest.fixture(scope="class")
    def bench(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("perf") / "BENCH.json"
        rc = main(["--quick", "--out", str(out)])
        return rc, json.loads(out.read_text())

    def test_exit_clean_and_schema(self, bench):
        rc, data = bench
        assert rc == 0
        assert set(data) == BENCH_KEYS
        assert data["schema"] == BENCH_SCHEMA_VERSION
        assert data["quick"] is True
        assert data["ok"] is True

    def test_execution_section(self, bench):
        _, data = bench
        execution = data["execution"]
        assert execution["equivalent"] is True
        assert len(execution["workloads"]) == 2
        for row in execution["workloads"]:
            assert set(row) == WORKLOAD_KEYS
            assert row["mismatches"] == []
            assert row["steps"] > 0
        assert {r["family"] for r in execution["workloads"]} == {
            "CINT", "CFP",
        }

    def test_compile_section_names_pipeline_stages(self, bench):
        _, data = bench
        stages = data["compile"]["per_stage"]
        assert "mc-ssapre" in stages
        for stage in stages.values():
            assert stage["calls"] == data["compile"]["functions"]

    def test_iterative_section(self, bench):
        _, data = bench
        iterative = data["iterative"]
        assert iterative["ok"] is True
        assert iterative["never_higher"] is True
        assert iterative["strict_win"] is True
        assert iterative["equivalent"] is True
        families = set()
        for row in iterative["workloads"]:
            assert set(row) == ITERATIVE_ROW_KEYS
            assert row["observables_match"] is True
            assert row["cost_delta"] >= 0
            assert 1 <= row["rounds_run"] <= iterative["rounds"]
            families.add(row["family"])
        # The strict win must come from the composite-chain suite.
        assert "COMPOSITE" in families
        assert any(
            row["cost_delta"] > 0
            for row in iterative["workloads"]
            if row["family"] == "COMPOSITE"
        )

    def test_serving_section(self, bench):
        _, data = bench
        serving = data["serving"]
        assert set(serving) == SERVING_KEYS
        assert serving["ok"] is True
        assert serving["equivalent"] is True
        assert serving["mismatches"] == 0
        assert serving["speedup"] >= serving["min_speedup"]
        assert serving["hit_rate"] >= serving["expected_hit_rate"]
        coalescing = serving["coalescing"]
        assert coalescing["ok"] is True
        assert coalescing["compiles"] == 1
        assert coalescing["clients"] > 1

    def test_maxflow_section(self, bench):
        _, data = bench
        assert data["maxflow"]["agreed"] is True
        for row in data["maxflow"]["networks"]:
            assert row["flows_agree"] is True
            assert row["max_flow"] > 0

    def test_json_flag_prints_payload(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        rc = main(["--quick", "--repeat", "1", "--json", "--out", str(out)])
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(out.read_text())


class TestHelpers:
    def test_runresult_mismatches_detects_each_field(self, straightline):
        ref = run_function(straightline, [2, 3])
        same = run_compiled(straightline, [2, 3])
        assert runresult_mismatches(ref, same) == []
        other = run_compiled(straightline, [5, 9])
        diff = runresult_mismatches(ref, other)
        assert "return_value" in diff

    def test_scaling_network_is_deterministic(self):
        a = scaling_network(4, 3)
        b = scaling_network(4, 3)
        assert [e.capacity for e in a.edges] == [
            e.capacity for e in b.edges
        ]
        assert a.node_count() == 4 * 3 + 2

    def test_solvers_agree_on_scaling_networks(self):
        report = bench_maxflow(((3, 3), (5, 4)), repeat=1)
        assert report["agreed"] is True
