"""Deliberately broken compile variants for exercising the harness.

Each is a :data:`repro.check.oracles.VariantFn` — ``(prepared_clone,
profile) -> Function`` — injected into the driver via ``extra_variants``.
They model real optimiser bug classes:

* :func:`premature_insertion` — a *misplaced PRE insertion*: the
  computation is hoisted to the entry block and the temp reused at the
  original site, ignoring that an operand may be redefined in between
  (stale value → semantic divergence);
* :func:`speculate_trapping` — hoists a conditionally executed
  ``div``/``mod`` into the entry block, exactly the speculation the
  safety guarantee forbids;
* :func:`identity_mc_ssapre` — registered *as* ``mc-ssapre``, performs no
  optimisation at all, so the optimality oracle must notice the counts
  no longer match MC-PRE;
* :func:`crashing_variant` / :func:`dangling_jump_variant` — compile-time
  crash and verifier-reject classification fodder.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Jump
from repro.ir.ops import is_trapping
from repro.ir.values import Var


def _entry_defined(func: Function) -> set[str]:
    names = {p.name for p in func.params}
    names.update(v.name for v in func.entry_block.defined_vars())
    return names


def premature_insertion(func: Function, profile) -> Function:
    """Hoist the *last* entry-computable expression to the entry block.

    Every operand of the chosen site is defined in the entry block, so
    the program stays well-formed; but any redefinition between the entry
    and the original site makes the reused temp stale — a classic
    misplaced-insertion bug that only semantic differencing catches.
    """
    entry_defs = _entry_defined(func)
    site = None
    for label, block in func.blocks.items():
        if label == func.entry:
            continue
        for i, stmt in enumerate(block.body):
            if (
                isinstance(stmt, Assign)
                and isinstance(stmt.rhs, BinOp)
                and all(
                    not isinstance(op, Var) or op.name in entry_defs
                    for op in stmt.rhs.operands
                )
                and not stmt.target.name.startswith(("li", "lb", "lc", "c"))
            ):
                site = (label, i)  # keep scanning: the last site wins
    if site is None:
        return func
    label, i = site
    stmt = func.blocks[label].body[i]
    temp = func.fresh_temp("%pre")
    func.entry_block.body.append(
        Assign(temp, BinOp(stmt.rhs.op, stmt.rhs.left, stmt.rhs.right))
    )
    func.blocks[label].body[i] = Assign(stmt.target, temp)
    func.mark_code_mutated()
    return func


def speculate_trapping(func: Function, profile) -> Function:
    """Evaluate the first conditional trapping op unconditionally at entry.

    The temp is never used, and div/mod are total in this IR, so the
    program's observable behaviour is unchanged — only the safety oracle
    can object.
    """
    entry_defs = _entry_defined(func)
    for label, block in func.blocks.items():
        if label == func.entry:
            continue
        for stmt in block.body:
            if (
                isinstance(stmt, Assign)
                and isinstance(stmt.rhs, BinOp)
                and is_trapping(stmt.rhs.op)
                and all(
                    not isinstance(op, Var) or op.name in entry_defs
                    for op in stmt.rhs.operands
                )
            ):
                temp = func.fresh_temp("%spec")
                func.entry_block.body.append(
                    Assign(
                        temp,
                        BinOp(stmt.rhs.op, stmt.rhs.left, stmt.rhs.right),
                    )
                )
                func.mark_code_mutated()
                return func
    return func


def identity_mc_ssapre(func: Function, profile) -> Function:
    """No-op impostor: inject under the name ``mc-ssapre`` so the
    optimality oracle compares an unoptimised program against MC-PRE."""
    return func


def crashing_variant(func: Function, profile) -> Function:
    raise RuntimeError("deliberate compile-time crash")


def dangling_jump_variant(func: Function, profile) -> Function:
    func.entry_block.terminator = Jump("no-such-block")
    func.mark_cfg_mutated()
    return func
