"""Out-of-SSA translation.

Phis are lowered to parallel copies at the ends of predecessor blocks, each
SSA variable ``name.version`` becomes the distinct non-SSA variable
``name_vversion``, and parameters are re-bound with entry copies.  Parallel
copies are sequentialised with the classic cycle-breaking temporary, so the
swap and lost-copy problems are handled without interference analysis.

Requires that no phi block is entered through a critical edge (the PRE
pipeline splits critical edges long before this point); this is asserted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis import cfg_of
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Load, Store, UnaryOp
from repro.ir.values import Operand, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache


def sequentialize_parallel_copies(
    pairs: list[tuple[Var, Operand]], fresh_temp
) -> list[tuple[Var, Operand]]:
    """Order a parallel copy ``{dst_i <- src_i}`` into sequential copies.

    All destinations must be distinct.  ``fresh_temp()`` must return an
    unused :class:`Var` when a cycle needs breaking.  Self-copies are
    dropped.
    """
    destinations = [dst for dst, _ in pairs]
    if len(destinations) != len(set(destinations)):
        raise ValueError("parallel copy has duplicate destinations")
    pending = [(dst, src) for dst, src in pairs if dst != src]
    ordered: list[tuple[Var, Operand]] = []
    while pending:
        live_sources = {src for _, src in pending if isinstance(src, Var)}
        for index, (dst, src) in enumerate(pending):
            if dst not in live_sources:
                ordered.append((dst, src))
                pending.pop(index)
                break
        else:
            # Every destination is still needed as a source: a cycle.
            # Stash one source in a temp and redirect its readers.
            _, victim = pending[0]
            temp = fresh_temp()
            ordered.append((temp, victim))
            pending = [
                (dst, temp if src == victim else src) for dst, src in pending
            ]
    return ordered


def _lowered_name(var: Var) -> Var:
    if var.version is None:
        return var
    return Var(f"{var.name}_v{var.version}")


def _lower_operand(operand: Operand) -> Operand:
    if isinstance(operand, Var):
        return _lowered_name(operand)
    return operand


def destruct_ssa(func: Function, cache: "AnalysisCache | None" = None) -> None:
    """Rewrite *func* out of SSA form, in place."""
    cfg = cfg_of(func, cache)

    # 1. Lower phis into copies at predecessor ends.
    temp_counter = [0]

    def fresh_temp() -> Var:
        temp_counter[0] += 1
        return Var(f"%swap{temp_counter[0]}")

    for label, block in list(func.blocks.items()):
        if not block.phis:
            continue
        # Dedupe: a conditional branch with both arms on this block yields
        # the same predecessor twice; emitting the parallel copy twice
        # would mis-execute swaps.
        preds = list(dict.fromkeys(cfg.predecessors(label)))
        if len(preds) > 1:
            for pred in preds:
                if len(set(cfg.successors(pred))) > 1:
                    raise ValueError(
                        f"critical edge {pred!r}->{label!r} must be split "
                        "before SSA destruction"
                    )
        for pred in preds:
            pairs = [
                (phi.target, phi.args[pred])
                for phi in block.phis
                if pred in phi.args
            ]
            copies = sequentialize_parallel_copies(pairs, fresh_temp)
            pred_block = func.blocks[pred]
            for dst, src in copies:
                pred_block.body.append(Assign(dst, src))
        block.phis.clear()

    # 2. Flatten version suffixes into plain names.
    for block in func:
        for stmt in block.body:
            if isinstance(stmt, Assign):
                stmt.target = _lowered_name(stmt.target)
                if isinstance(stmt.rhs, BinOp):
                    stmt.rhs.left = _lower_operand(stmt.rhs.left)
                    stmt.rhs.right = _lower_operand(stmt.rhs.right)
                elif isinstance(stmt.rhs, UnaryOp):
                    stmt.rhs.operand = _lower_operand(stmt.rhs.operand)
                elif isinstance(stmt.rhs, Load):
                    stmt.rhs.index = _lower_operand(stmt.rhs.index)
                else:
                    stmt.rhs = _lower_operand(stmt.rhs)
            elif isinstance(stmt, Store):
                stmt.index = _lower_operand(stmt.index)
                stmt.value = _lower_operand(stmt.value)
            else:  # Output
                stmt.value = _lower_operand(stmt.value)
        term = block.terminator
        from repro.ir.instructions import CondJump, Return

        if isinstance(term, CondJump):
            term.cond = _lower_operand(term.cond)
        elif isinstance(term, Return) and term.value is not None:
            term.value = _lower_operand(term.value)

    # 3. Re-bind parameters: the SSA form gave each parameter version 1.
    entry = func.entry_block
    rebinds = []
    for param in func.params:
        if param.version is not None:
            rebinds.append(Assign(_lowered_name(param), Var(param.name)))
    entry.body[:0] = rebinds
    func.params = [p.base for p in func.params]
    # Phis were lowered to copies and every name rewritten — instruction
    # mutation only, the CFG shape is untouched.
    func.mark_code_mutated()
