"""Tests for the brute-force placement oracle itself."""

import pytest

from repro.baselines.bruteforce import (
    brute_force_optimum,
    candidate_insertion_edges,
)
from repro.ir.builder import FunctionBuilder
from repro.pipeline import prepare

AB = ("add", ("var", "a"), ("var", "b"))


def loop_func():
    b = FunctionBuilder("f", params=["a", "b", "n"])
    b.block("entry")
    b.copy("i", 0)
    b.copy("acc", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.assign("v", "add", "a", "b")
    b.assign("acc", "add", "acc", "v")
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("acc")
    return prepare(b.build(), restructure=False)


class TestCandidates:
    def test_candidates_are_useful_edges(self):
        func = loop_func()
        candidates = candidate_insertion_edges(func, AB)
        assert ("entry", "head") in candidates
        # Edges after full availability are useless.
        assert ("head", "done") not in candidates

    def test_budget_enforced(self):
        func = loop_func()
        with pytest.raises(ValueError):
            brute_force_optimum(func, AB, [1, 2, 3], max_edges=0)


class TestOptimum:
    def test_loop_optimum_is_one(self):
        func = loop_func()
        outcome = brute_force_optimum(func, AB, [2, 3, 25])
        assert outcome.baseline_count == 25
        assert outcome.best_count == 1
        assert outcome.best_edges == (("entry", "head"),)

    def test_zero_trip_optimum_is_zero(self):
        func = loop_func()
        outcome = brute_force_optimum(func, AB, [2, 3, 0])
        # Not executing the body at all: optimum leaves it alone (0) —
        # any insertion before the loop would cost 1.
        assert outcome.best_count == 0
        assert outcome.best_edges == ()

    def test_no_redundancy_keeps_baseline(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.ret("x")
        func = prepare(b.build(), restructure=False)
        outcome = brute_force_optimum(func, AB, [1, 2])
        assert outcome.best_count == outcome.baseline_count == 1
