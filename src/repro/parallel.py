"""Deterministic process-parallel map shared by the drivers.

``repro.check``, ``repro.bench`` and ``repro.perf`` all parallelise the
same way: a picklable worker over an explicit work list, fanned out with
``--jobs N``.  :func:`parallel_map` is the one primitive they share — an
order-preserving ``map`` that degrades to a plain loop for ``jobs <= 1``
(keeping single-process runs free of pool overhead and trivially
debuggable) and uses :class:`~concurrent.futures.ProcessPoolExecutor`
otherwise.

Order preservation is what makes the merge deterministic: results come
back in work-list order regardless of which process finished first, so
callers can fold them left-to-right and produce byte-identical summaries
at any job count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int = 1
) -> list[R]:
    """``[fn(x) for x in items]``, fanned out over ``jobs`` processes.

    Results are returned in input order.  With ``jobs <= 1`` (or fewer
    than two items) the map runs in-process.  ``fn`` and every item must
    be picklable in parallel mode — module-level functions and
    :func:`functools.partial` over them qualify.
    """
    work: Sequence[T] = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))
