"""Differential testing, optimality oracles and test-case reduction.

The correctness backstop of the repository (see ``docs/CHECKING.md``):

* :mod:`repro.check.oracles` — executable predicates for the paper's
  claims (semantic equivalence, computational optimality, lifetime
  optimality, speculation safety);
* :mod:`repro.check.driver` — the seeded fuzz loop that builds cases
  from :mod:`repro.bench.generator` and runs the oracles over every
  compile variant;
* :mod:`repro.check.reducer` — delta-debugging shrinker that turns a
  failing case into a minimal ``.ir`` reproducer;
* :mod:`repro.check.corpus` — replayable failure artifacts under
  ``results/check/``;
* :mod:`repro.check.cli` — the ``python -m repro.check`` entry point.
"""

from repro.check.driver import (
    SHAPES,
    CaseResult,
    DriverStats,
    build_case,
    check_case,
    failure_predicate,
    run_case,
    run_driver,
    spec_for_shape,
)
from repro.check.oracles import (
    ORACLE_NAMES,
    ORACLES,
    CheckCase,
    OracleFailure,
    OracleReport,
)
from repro.check.reducer import ReductionResult, reduce_function

__all__ = [
    "SHAPES",
    "ORACLE_NAMES",
    "ORACLES",
    "CaseResult",
    "CheckCase",
    "DriverStats",
    "OracleFailure",
    "OracleReport",
    "ReductionResult",
    "build_case",
    "check_case",
    "failure_predicate",
    "reduce_function",
    "run_case",
    "run_driver",
    "spec_for_shape",
]
