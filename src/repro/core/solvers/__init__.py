"""Pluggable speculation solvers for MC-SSAPRE's placement decision."""

from repro.core.solvers.base import (
    DEFAULT_SOLVER,
    SOLVER_NAMES,
    SolverDecision,
    SpeculationSolver,
    resolve_solver,
)
from repro.core.solvers.lospre import DEFAULT_MAX_WIDTH, LospreSolver
from repro.core.solvers.mincut import MinCutSolver
from repro.core.solvers.shape import (
    DEFAULT_CFG_WIDTH_BOUND,
    ShapeReport,
    classify_cfg,
    select_solver,
)

__all__ = [
    "DEFAULT_CFG_WIDTH_BOUND",
    "DEFAULT_MAX_WIDTH",
    "DEFAULT_SOLVER",
    "SOLVER_NAMES",
    "LospreSolver",
    "MinCutSolver",
    "ShapeReport",
    "SolverDecision",
    "SpeculationSolver",
    "classify_cfg",
    "resolve_solver",
    "select_solver",
]
