"""Tests for dominance frontiers and iterated dominance frontiers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.domfrontier import (
    dominance_frontiers,
    iterated_dominance_frontier,
)
from repro.analysis.dominators import DominatorTree
from repro.ir.cfg import CFG
from tests.analysis.test_dominators import random_cfg


def frontier_by_definition(cfg: CFG, tree: DominatorTree, x: str) -> set[str]:
    """DF(x) = { y : x dominates a pred of y but not strictly y }.

    Restricted to join nodes, matching the implementation (see the
    docstring of :func:`dominance_frontiers`).
    """
    result = set()
    for y in cfg.reachable():
        preds = [p for p in cfg.predecessors(y) if p in cfg.reachable()]
        if len(preds) < 2:
            continue
        if any(tree.dominates(x, p) for p in preds) and not tree.strictly_dominates(x, y):
            result.add(y)
    return result


class TestDominanceFrontiers:
    def test_diamond(self, diamond):
        cfg = CFG(diamond)
        tree = DominatorTree(cfg)
        df = dominance_frontiers(cfg, tree)
        assert df["left"] == {"join"}
        assert df["right"] == {"join"}
        assert df["entry"] == set()
        assert df["join"] == set()

    def test_loop_header_in_own_frontier(self, while_loop):
        cfg = CFG(while_loop)
        tree = DominatorTree(cfg)
        df = dominance_frontiers(cfg, tree)
        assert "head" in df["body"]
        assert "head" in df["head"]  # header dominates the latch

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=12),
    )
    def test_matches_definition_on_random_cfgs(self, seed, n):
        func = random_cfg(seed, n)
        cfg = CFG(func)
        tree = DominatorTree(cfg)
        df = dominance_frontiers(cfg, tree)
        for x in cfg.reachable():
            assert df[x] == frontier_by_definition(cfg, tree, x), x


class TestIteratedDF:
    def test_simple_closure(self, while_loop):
        cfg = CFG(while_loop)
        tree = DominatorTree(cfg)
        df = dominance_frontiers(cfg, tree)
        idf = iterated_dominance_frontier(df, {"body"})
        assert "head" in idf

    def test_idf_is_a_fixpoint(self, diamond):
        cfg = CFG(diamond)
        tree = DominatorTree(cfg)
        df = dominance_frontiers(cfg, tree)
        idf = iterated_dominance_frontier(df, {"left"})
        again = iterated_dominance_frontier(df, {"left"} | idf)
        assert idf == again

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_idf_superset_of_df(self, seed):
        func = random_cfg(seed, 10)
        cfg = CFG(func)
        tree = DominatorTree(cfg)
        df = dominance_frontiers(cfg, tree)
        for x in cfg.reachable():
            idf = iterated_dominance_frontier(df, {x})
            assert df[x] <= idf
