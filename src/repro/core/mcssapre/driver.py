"""The MC-SSAPRE driver — the ten steps of paper Figure 4.

    1.  Φ-Insertion          (shared with SSAPRE)
    2.  Rename               (shared, plus rg_excluded marking)
    3.  Data flow            sparse full availability / partial anticipability
    4.  Graph reduction      reduced SSA graph
    5-7. Speculation solver  placement decision → insert flags
    8.  WillBeAvail          forward propagation from the insert flags
    9.  Finalize             (shared with SSAPRE)
    10. CodeMotion           (shared with SSAPRE)

Steps 5–7 — build the essential flow graph and cut it — are one
*placement decision* behind the :class:`~repro.core.solvers.base.SpeculationSolver`
interface: the paper's flow-network reduction
(:class:`~repro.core.solvers.mincut.MinCutSolver`) and the linear-time
tree-decomposition DP (:class:`~repro.core.solvers.lospre.LospreSolver`)
are interchangeable back ends that must produce the identical,
lifetime-optimal cut.  ``solver="auto"`` classifies the CFG shape once
per function and routes tractable graphs to lospre.

Speculation requires an execution profile with **node frequencies only**;
the driver deliberately accepts a profile whose edge map is empty.
Trapping expressions (div/mod/…) are never speculated: for those classes
the driver runs the safe SSAPRE steps 3–4 instead, mirroring how the
paper's compiler excludes exception-throwing computations (Section 2).

Even when an expression has no strictly-partially-redundant occurrence
(empty reduced graph), steps 8–10 still run so fully redundant
occurrences are deleted — MC-SSAPRE handles local and global redundancy
uniformly (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.mcssapre.willbeavail import compute_will_be_avail_from_cut
from repro.core.solvers.base import SolverDecision, SpeculationSolver
from repro.core.solvers.mincut import MinCutSolver
from repro.core.solvers.shape import select_solver
from repro.core.ssapre.codemotion import CodeMotionReport, apply_code_motion
from repro.core.ssapre.driver import PREResult, run_safe_steps
from repro.core.ssapre.finalize import finalize
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.core.worklist import run_rounds
from repro.ir.function import Function
from repro.ir.memory import key_may_trap
from repro.ir.verifier import has_critical_edges
from repro.profiles.profile import ExecutionProfile
from repro.ssa.ssa_verifier import verify_ssa


@dataclass
class EFGStats:
    """Per-class placement statistics (feeds Figure 11 / Section 4)."""

    expr: str
    nodes: int
    edges: int
    cut_value: int
    insertions: int
    #: Which solver produced this class's placement.
    solver: str = "mincut"
    #: Elimination width achieved (lospre placements only).
    width: int | None = None


@dataclass
class MCPREResult(PREResult):
    """PRE result extended with MC-specific statistics."""

    efg_stats: list[EFGStats] = field(default_factory=list)
    trapping_fallbacks: int = 0
    #: The solver knob as requested ("mincut"/"lospre"/"auto") and the
    #: lane it resolved to for this function ("mincut"/"lospre").
    solver_requested: str = "mincut"
    solver_used: str = "mincut"
    #: CFG elimination width from the shape classifier (None when the
    #: classifier never ran, i.e. a forced min cut).
    shape_width: int | None = None
    #: Classes where the lospre DP refused (width overflow) and the
    #: placement fell back to the min cut.
    lospre_refusals: int = 0

    def efg_sizes(self) -> list[int]:
        return [s.nodes for s in self.efg_stats]


def run_mc_ssapre(
    func: Function,
    profile: ExecutionProfile,
    validate: bool = False,
    classes: list[ExprClass] | None = None,
    sink_closest: bool = True,
    cache: "AnalysisCache | None" = None,
    rounds: int = 1,
    solver: "str | SpeculationSolver" = "mincut",
) -> MCPREResult:
    """Run MC-SSAPRE over every candidate class of *func*, in place.

    ``solver`` picks the speculation back end: ``"mincut"`` (the paper's
    flow network), ``"lospre"`` (the linear-time DP, with per-class
    fallback to the min cut on width overflow), ``"auto"`` (classify the
    CFG, then lospre where tractable), or a ready
    :class:`~repro.core.solvers.base.SpeculationSolver` instance.

    ``sink_closest=False`` selects the source-side min cut instead of the
    reverse-labeling cut; it exists only for the lifetime ablation
    benchmark and forfeits lifetime optimality (never computational
    optimality) — the lospre DP computes the sink-closest cut by
    construction, so the ablation is min-cut-only.  ``rounds`` bounds the
    iterative worklist exactly as in
    :func:`repro.core.ssapre.driver.run_ssapre`: 1 is the classic
    one-shot driver, more rounds chase second-order redundancy through
    the occurrence index.
    """
    if has_critical_edges(func):
        raise ValueError(
            "MC-SSAPRE requires critical edges to be split first "
            "(use repro.ir.transforms.split_critical_edges)"
        )
    if not sink_closest and solver != "mincut":
        raise ValueError(
            "sink_closest=False (the lifetime ablation) requires "
            "solver='mincut'; lospre computes the sink-closest cut "
            "by construction"
        )
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    result = MCPREResult(algorithm="MC-SSAPRE")

    fallback = MinCutSolver(sink_closest=sink_closest)
    if isinstance(solver, SpeculationSolver):
        active: SpeculationSolver = solver
        result.solver_requested = solver.name
        result.solver_used = solver.name
    else:
        result.solver_requested = solver
        resolved, shape = select_solver(func, solver)
        result.shape_width = shape.width if shape is not None else None
        result.solver_used = resolved
        if resolved == "mincut":
            active = fallback
        else:
            from repro.core.solvers.lospre import LospreSolver

            active = LospreSolver()

    def process_round(
        fn: Function, work: list[ExprClass]
    ) -> list[CodeMotionReport]:
        # Steps 1 and 2 for every class of the round in one shared
        # rename walk, and one shared bit-vector solve for the
        # trapping-class safe fallback (see the comment in run_ssapre
        # for why later CodeMotion cannot invalidate these).
        frgs = build_frgs(fn, work, cache=cache)
        dataflow = None

        reports = []
        for expr in work:
            frg = frgs[expr.key]
            if not frg.real_occs:
                continue
            if key_may_trap(expr.key, fn.arrays):
                # Unspeculatable: fall back to the safe placement for
                # this class (SSAPRE steps 3-4, via the shared step
                # runner), still deleting full redundancies.  Loads with
                # a provably in-bounds constant index cannot fault, so
                # they skip this branch and are speculated like any
                # non-trapping expression.
                if dataflow is None:
                    from repro.analysis.dataflow import solve_pre_dataflow

                    dataflow = solve_pre_dataflow(
                        fn, [e.key for e in work]
                    )
                run_safe_steps(frg, dataflow=dataflow)
                result.trapping_fallbacks += 1
            else:
                solve_step3(frg)  # step 3
                reduced = build_reduced_graph(frg)  # step 4
                decision: SolverDecision | None = None
                if not reduced.is_empty():
                    decision = active.solve(reduced, profile)  # steps 5-7
                    if decision is None:
                        # Width overflow: this class goes to the cut.
                        result.lospre_refusals += 1
                        decision = fallback.solve(reduced, profile)
                if decision is not None:
                    result.efg_stats.append(
                        EFGStats(
                            expr=str(expr),
                            nodes=decision.nodes,
                            edges=decision.edges,
                            cut_value=decision.cut_value,
                            insertions=len(decision.insert_operands),
                            solver=decision.solver,
                            width=decision.width,
                        )
                    )
                compute_will_be_avail_from_cut(frg)  # step 8
            plan = finalize(frg)  # step 9
            report = apply_code_motion(fn, plan)  # step 10
            reports.append(report)
            if validate and report.changed:
                verify_ssa(fn)
        return reports

    run_rounds(
        func, result, process_round,
        classes=classes, rounds=rounds, validate=validate,
    )
    return result
