"""Serving metrics: pinned schema, histogram maths, hit rate."""

import json

import pytest

from repro.serve.metrics import (
    COUNTERS,
    LATENCY_BUCKETS,
    METRICS_SCHEMA,
    Histogram,
    ServeMetrics,
)

#: The documented metrics export schema (docs/SERVING.md).  Additions
#: require a METRICS_SCHEMA bump.
EXPORT_KEYS = {"schema", "counters", "hit_rate", "histograms"}
HISTOGRAM_KEYS = {"count", "sum_s", "min_s", "max_s", "mean_s", "buckets"}
COUNTER_NAMES = {
    "requests", "hits_memory", "hits_disk", "misses", "coalesced",
    "compiles", "compile_failures", "degraded", "timeouts", "errors",
    "evictions", "disk_corrupt",
    # Adaptation-tier counters (schema 2; docs/SERVING.md "Adaptation").
    "live_samples", "tier_interp", "drift_events", "recompiles",
    "hot_swaps", "tier_promotions", "tier_demotions", "rollbacks",
}


class TestSchema:
    def test_pinned_counter_set(self):
        assert set(COUNTERS) == COUNTER_NAMES

    def test_export_shape_is_json_safe(self):
        metrics = ServeMetrics()
        metrics.inc("requests")
        metrics.observe("request_s", 0.003)
        data = json.loads(json.dumps(metrics.to_dict()))
        assert set(data) == EXPORT_KEYS
        assert data["schema"] == METRICS_SCHEMA
        assert set(data["counters"]) == COUNTER_NAMES
        assert set(data["histograms"]) == {
            "compile_s", "execute_s", "request_s",
        }
        for hist in data["histograms"].values():
            assert set(hist) == HISTOGRAM_KEYS

    def test_unknown_counter_and_histogram_are_rejected(self):
        metrics = ServeMetrics()
        with pytest.raises(KeyError):
            metrics.inc("typo")
        with pytest.raises(KeyError):
            metrics.observe("typo", 1.0)


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        hist = Histogram()
        hist.observe(0.00005)   # below the first bound
        hist.observe(0.3)       # in (0.25, 0.5]
        hist.observe(100.0)     # above every bound -> +inf
        data = hist.to_dict()
        assert data["count"] == 3
        assert data["buckets"]["le_0.0001"] == 1
        assert data["buckets"]["le_0.5"] == 1
        assert data["buckets"]["le_inf"] == 1
        assert sum(data["buckets"].values()) == 3
        assert data["min_s"] == 0.00005
        assert data["max_s"] == 100.0

    def test_empty_histogram_exports_zeros(self):
        data = Histogram().to_dict()
        assert data["count"] == 0
        assert data["mean_s"] == 0.0
        assert data["min_s"] == 0.0

    def test_bounds_are_strictly_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))


class TestHitRate:
    def test_memory_disk_and_coalesced_all_count(self):
        metrics = ServeMetrics()
        for counter, amount in (
            ("requests", 10), ("hits_memory", 4), ("hits_disk", 1),
            ("coalesced", 2), ("misses", 3),
        ):
            metrics.inc(counter, amount)
        assert metrics.hit_rate() == pytest.approx(0.7)
        assert metrics.to_dict()["hit_rate"] == pytest.approx(0.7)

    def test_zero_requests_is_zero_not_nan(self):
        assert ServeMetrics().hit_rate() == 0.0
