"""Pinned performance benchmark suite: ``python -m repro.perf``.

Measures the three things this repository's speed rests on and writes
them to a machine-readable ``BENCH.json`` (schema documented in
``docs/PERF.md``):

* **execution** — reference tree-walking interpreter vs the compiled
  register-machine back end (:mod:`repro.profiles.compiled`) on the
  standard cint/cfp benchmark shapes, with a bit-identical
  :class:`~repro.profiles.interp.RunResult` equivalence check on every
  workload;
* **compile**  — per-stage pipeline wall time from the
  :class:`~repro.passes.manager.PassReport` of the MC-SSAPRE compile;
* **maxflow**  — Dinic vs Edmonds–Karp on deterministic scaling
  networks (Dinic is the in-tree default; this keeps the evidence
  fresh).

Exit status is 1 when any equivalence check fails — the perf suite
doubles as a differential smoke test, so CI can gate on it.
"""

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    run_perf,
)

__all__ = ["BENCH_SCHEMA_VERSION", "run_perf"]
