"""Regeneration of the paper's Tables 1 and 2.

For each benchmark the harness runs the paper's three compiles —
A: SSAPRE (safe, no profile), B: SSAPREsp (loop speculation, no profile),
C: MC-SSAPRE (optimal speculation, train profile) — measures the ref-input
dynamic cost, and prints the same row format as the paper:

    Benchmark | A | B | C | (A-C)/A | (B-C)/B

The absolute unit is weighted dynamic operations, not seconds (see
DESIGN.md §6); the *shape* — C fastest nearly everywhere, positive average
speedups, CFP's B closer to C than CINT's — is what reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.bench.workloads import (
    CFP2006,
    CINT2006,
    Workload,
    load_workload,
)
from repro.core.mcssapre.driver import MCPREResult as MCSSAPREResult
from repro.parallel import parallel_map
from repro.pipeline import run_experiment


@dataclass
class TableRow:
    benchmark: str
    a_cost: int
    b_cost: int
    c_cost: int
    efg_sizes: list[int] = field(default_factory=list)

    @property
    def speedup_a(self) -> float:
        """(A - C) / A, as a fraction."""
        return (self.a_cost - self.c_cost) / self.a_cost if self.a_cost else 0.0

    @property
    def speedup_b(self) -> float:
        return (self.b_cost - self.c_cost) / self.b_cost if self.b_cost else 0.0


@dataclass
class Table:
    title: str
    rows: list[TableRow] = field(default_factory=list)

    @property
    def average_speedup_a(self) -> float:
        return sum(r.speedup_a for r in self.rows) / len(self.rows)

    @property
    def average_speedup_b(self) -> float:
        return sum(r.speedup_b for r in self.rows) / len(self.rows)

    def render(self) -> str:
        header = (
            f"{'Benchmark':<12} {'A. SSAPRE':>10} {'B. SSAPREsp':>12} "
            f"{'C. MC-SSAPRE':>13} {'(A-C)/A':>9} {'(B-C)/B':>9}"
        )
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.benchmark:<12} {row.a_cost:>10} {row.b_cost:>12} "
                f"{row.c_cost:>13} {row.speedup_a:>8.2%} {row.speedup_b:>8.2%}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<12} {'':>10} {'':>12} {'':>13} "
            f"{self.average_speedup_a:>8.2%} {self.average_speedup_b:>8.2%}"
        )
        return "\n".join(lines)


def measure_workload(workload: Workload, validate: bool = False) -> TableRow:
    """Run the A/B/C protocol on one benchmark."""
    experiment = run_experiment(
        workload.program.func,
        workload.train_args,
        workload.ref_args,
        variants=("ssapre", "ssapre-sp", "mc-ssapre"),
        validate=validate,
    )
    mc = experiment.measurements["mc-ssapre"].compiled.pre_result
    sizes = mc.efg_sizes() if isinstance(mc, MCSSAPREResult) else []
    return TableRow(
        benchmark=workload.name,
        a_cost=experiment.cost("ssapre"),
        b_cost=experiment.cost("ssapre-sp"),
        c_cost=experiment.cost("mc-ssapre"),
        efg_sizes=sizes,
    )


def measure_named(
    name: str, *, seed_offset: int = 0, validate: bool = False
) -> TableRow:
    """Load one named benchmark and measure it (picklable worker)."""
    return measure_workload(
        load_workload(name, seed_offset), validate=validate
    )


def build_table(
    names: tuple[str, ...],
    title: str,
    validate: bool = False,
    seed_offset: int = 0,
    jobs: int = 1,
) -> Table:
    """Measure ``names`` (``jobs > 1`` fans benchmarks over processes).

    Each worker rebuilds its workload from the name — generation is
    deterministic, so the rows are identical to a sequential run and
    arrive in suite order regardless of which process finishes first.
    """
    worker = partial(
        measure_named, seed_offset=seed_offset, validate=validate
    )
    return Table(title=title, rows=parallel_map(worker, names, jobs=jobs))


def table1(validate: bool = False, seed_offset: int = 0) -> Table:
    """Paper Table 1: CINT2006 costs and speedup ratios."""
    return build_table(
        CINT2006,
        "Table 1: CINT2006 dynamic costs and speedup ratios of MC-SSAPRE",
        validate=validate,
        seed_offset=seed_offset,
    )


def table2(validate: bool = False, seed_offset: int = 0) -> Table:
    """Paper Table 2: CFP2006 costs and speedup ratios."""
    return build_table(
        CFP2006,
        "Table 2: CFP2006 dynamic costs and speedup ratios of MC-SSAPRE",
        validate=validate,
        seed_offset=seed_offset,
    )
