"""Micro-benchmarks of the min-cut kernel on EFG-shaped networks.

Grounds the Section 3.3 complexity discussion: even at the extreme tail of
the paper's Figure 11 distribution (an 805-node EFG), one min cut is far
below a millisecond-scale compile budget.
"""

import random

from repro.flownet.mincut import min_cut
from repro.flownet.network import INFINITE, FlowNetwork


def efg_shaped_network(n_phis: int, seed: int = 0) -> FlowNetwork:
    """A random network with the EFG's layered structure: source ->
    phis (DAG among themselves) -> occurrences -> sink."""
    rng = random.Random(seed)
    net = FlowNetwork("s", "t")
    phis = [f"phi{i}" for i in range(n_phis)]
    occs = [f"occ{i}" for i in range(max(1, n_phis // 2))]
    for i, phi in enumerate(phis):
        if i == 0 or rng.random() < 0.4:
            net.add_edge("s", phi, rng.randint(1, 500))
        for _ in range(rng.randint(0, 2)):
            if i + 1 < n_phis:
                target = phis[rng.randint(i + 1, n_phis - 1)]
                net.add_edge(phi, target, rng.randint(1, 500))
    for occ in occs:
        src = rng.choice(phis)
        net.add_edge(src, occ, rng.randint(1, 500))
        net.add_edge(occ, "t", INFINITE)
    return net


def run_cut(n_phis: int) -> int:
    net = efg_shaped_network(n_phis)
    return min_cut(net, sink_closest=True).value


def test_median_efg_cut(benchmark):
    """The paper's median case: a 4-node EFG."""
    value = benchmark(run_cut, 2)
    assert value >= 0


def test_large_efg_cut(benchmark):
    """The paper's tail case: hundreds of nodes (largest observed: 805)."""
    value = benchmark(run_cut, 805)
    assert value >= 0
