"""Computational-optimality tests (paper Theorem 7).

Three independent angles:

1. On tiny programs, MC-SSAPRE's dynamic evaluation counts equal the true
   optimum found by exhaustive enumeration of insertion sets.
2. MC-SSAPRE and MC-PRE — two different optimal algorithms — must agree
   on every expression's dynamic count under the same (matching) profile.
3. MC-SSAPRE never does worse than safe SSAPRE or SSAPREsp when the
   profile matches the measured run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_optimum
from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.ops import is_trapping
from repro.pipeline import prepare, run_experiment


from repro.profiles.counts import normalize_expr_counts as normalize_counts


class TestAgainstBruteForce:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=3_000))
    def test_counts_match_exhaustive_optimum(self, seed):
        spec = ProgramSpec(
            name="bf",
            seed=seed,
            max_depth=2,
            region_length=3,
            locals_count=4,
            hot_exprs=2,
            loop_mask_bits=2,
            output_prob=0.0,
        )
        prog = generate_program(spec)
        args = random_args(spec, 1)
        prepared = prepare(prog.func, restructure=False)

        experiment = run_experiment(
            prog.func,
            args,
            args,  # profile matches the measured run
            variants=("mc-ssapre",),
            restructure=False,
        )
        mc_counts = normalize_counts(
            experiment.measurements["mc-ssapre"].expr_counts
        )

        from repro.analysis.dataflow import expression_keys

        for key in expression_keys(prepared):
            if is_trapping(key[0]):
                continue
            try:
                outcome = brute_force_optimum(prepared, key, args, max_edges=11)
            except ValueError:
                continue  # too many candidate edges for enumeration
            got = mc_counts.get(key, 0)
            assert got == outcome.best_count, (
                f"{key}: MC-SSAPRE={got}, optimum={outcome.best_count} "
                f"(no-insertion baseline {outcome.baseline_count})"
            )


class TestAgainstMCPRE:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_counts_agree_with_mcpre(self, seed):
        spec = ProgramSpec(name="x", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        experiment = run_experiment(
            prog.func,
            args,
            args,
            variants=("mc-ssapre", "mc-pre"),
        )
        mc_ssa = normalize_counts(
            experiment.measurements["mc-ssapre"].expr_counts
        )
        mc_pre = normalize_counts(
            experiment.measurements["mc-pre"].expr_counts
        )
        for key in set(mc_ssa) | set(mc_pre):
            assert mc_ssa.get(key, 0) == mc_pre.get(key, 0), key


class TestAgainstSafeVariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=8_000))
    def test_never_worse_than_safe_pre_on_matching_profile(self, seed):
        spec = ProgramSpec(
            name="s", seed=seed, max_depth=2, fp_flavor=seed % 2 == 0
        )
        prog = generate_program(spec)
        args = random_args(spec, 1)
        experiment = run_experiment(
            prog.func,
            args,
            args,
            variants=("ssapre", "ssapre-sp", "mc-ssapre"),
        )
        c = experiment.cost("mc-ssapre")
        assert c <= experiment.cost("ssapre")
        assert c <= experiment.cost("ssapre-sp")
        assert c <= experiment.cost("none")

    def test_loop_example_exact_counts(self, while_loop):
        """MC-SSAPRE reduces the invariant to exactly one evaluation."""
        experiment = run_experiment(
            while_loop,
            [2, 3, 50],
            [2, 3, 50],
            variants=("ssapre", "mc-ssapre"),
            restructure=False,
        )
        ab = ("add", ("var", "a"), ("var", "b"))
        safe = normalize_counts(experiment.measurements["ssapre"].expr_counts)
        mc = normalize_counts(experiment.measurements["mc-ssapre"].expr_counts)
        assert safe[ab] == 50  # safe PRE cannot hoist out of a while loop
        assert mc[ab] == 1     # speculation hoists to the preheader
