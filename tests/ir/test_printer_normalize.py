"""Printer normalization: the determinism guarantee behind cache keys.

Two structurally identical functions that differ only in SSA value
numbering must print to identical bytes under ``normalize=True``, and
``parse(print(f, normalize=True))`` must re-print to the same bytes —
the soundness precondition of :mod:`repro.serve.keys`.
"""

from repro.bench.generator import generate_program
from repro.check.driver import spec_for_shape
from repro.ir.printer import format_function, normalize_versions, version_renumbering
from repro.ir.structural import structurally_equal
from repro.ir.values import Var
from repro.lang.parser import parse_function
from repro.pipeline import prepare
from repro.ssa.construct import construct_ssa

import pytest


def _ssa_corpus():
    """A handful of generated programs, prepared and in SSA form."""
    out = []
    for shape in ("cint", "cfp", "composite"):
        for seed in (0, 1, 2):
            func = prepare(generate_program(spec_for_shape(shape, seed)).func)
            construct_ssa(func)
            out.append(func)
    return out


CORPUS = _ssa_corpus()


def _shuffle_versions(func, stride: int = 7, offset: int = 100):
    """An injective re-versioning: structurally identical, new value ids."""
    shuffled = func.clone()
    mapping = {}

    def subst(operand):
        if not isinstance(operand, Var) or operand.version is None:
            return operand
        if operand not in mapping:
            mapping[operand] = Var(operand.name, operand.version * stride + offset)
        return mapping[operand]

    shuffled.params = [subst(p) for p in shuffled.params]
    for block in shuffled.blocks.values():
        for phi in block.phis:
            phi.target = subst(phi.target)
            phi.args = {label: subst(arg) for label, arg in phi.args.items()}
        for stmt in block.body:
            from repro.ir.instructions import Assign, BinOp, UnaryOp

            if isinstance(stmt, Assign):
                stmt.target = subst(stmt.target)
                if isinstance(stmt.rhs, BinOp):
                    stmt.rhs.left = subst(stmt.rhs.left)
                    stmt.rhs.right = subst(stmt.rhs.right)
                elif isinstance(stmt.rhs, UnaryOp):
                    stmt.rhs.operand = subst(stmt.rhs.operand)
                else:
                    stmt.rhs = subst(stmt.rhs)
            else:
                stmt.value = subst(stmt.value)
        term = block.terminator
        for attr in ("cond", "value"):
            if hasattr(term, attr) and getattr(term, attr) is not None:
                setattr(term, attr, subst(getattr(term, attr)))
    return shuffled


class TestNormalizedPrinting:
    @pytest.mark.parametrize("func", CORPUS, ids=lambda f: f.name)
    def test_stable_across_version_renumbering(self, func):
        shuffled = _shuffle_versions(func)
        assert format_function(func) != format_function(shuffled)  # sanity
        assert format_function(func, normalize=True) == format_function(
            shuffled, normalize=True
        )

    @pytest.mark.parametrize("func", CORPUS, ids=lambda f: f.name)
    def test_parse_reprint_round_trips_to_same_bytes(self, func):
        text = format_function(func, normalize=True)
        reparsed = parse_function(text)
        assert format_function(reparsed, normalize=True) == text
        # The normalized text is itself already in normal form.
        assert format_function(reparsed) == text

    @pytest.mark.parametrize("func", CORPUS, ids=lambda f: f.name)
    def test_normalization_preserves_structure_modulo_versions(self, func):
        normalized = normalize_versions(func)
        # Renormalizing a normalized function is the identity.
        assert structurally_equal(normalize_versions(normalized), normalized)
        # And the normalized clone still parses + prints consistently.
        assert format_function(normalized) == format_function(
            func, normalize=True
        )

    def test_renumbering_is_injective_per_name(self):
        for func in CORPUS:
            mapping = version_renumbering(func)
            seen = set()
            for old, new in mapping.items():
                assert old.name == new.name
                assert new.version is not None
                assert new not in seen
                seen.add(new)

    def test_non_ssa_function_unchanged(self):
        func = prepare(
            generate_program(spec_for_shape("cint", 3)).func
        )
        assert version_renumbering(func) == {}
        assert format_function(func, normalize=True) == format_function(func)
