"""Minimum-cut extraction with a choice of tie-breaking side.

Max-flow/min-cut duality gives *many* minimum cuts in general; MC-SSAPRE
step 7 must "pick later cuts in case of ties" (paper, Figure 4), i.e. the
unique minimum cut **closest to the sink**, because later insertions
shorten the live range of the PRE temporary (Theorem 9).  That cut is
obtained with the Reverse Labeling Procedure of Ford and Fulkerson: after
max-flow, label backwards from the sink through residual arcs; the cut
edges are the saturated edges entering the labelled set.  The symmetric
source-side cut is provided for the lifetime ablation benchmark.
"""

from __future__ import annotations

from repro.flownet.maxflow import Residual, dinic_max_flow
from repro.flownet.network import CutResult, FlowNetwork


def _extract_cut(
    network: FlowNetwork, res: Residual, flow_value: int, sink_closest: bool
) -> CutResult:
    source = res.node_index[network.source]
    sink = res.node_index[network.sink]
    if sink_closest:
        labelled = res.residual_reaching_sink(sink)
        sink_side = {res.nodes[i] for i in labelled}
        source_side = set(network.nodes) - sink_side
    else:
        labelled = res.residual_reachable_from_source(source)
        source_side = {res.nodes[i] for i in labelled}
        sink_side = set(network.nodes) - source_side

    cut_edges = []
    for edge in network.edges:
        if edge.src in source_side and edge.dst in sink_side:
            arc = res.arc_of_edge[edge.index]
            # Minimality: every crossing edge must be saturated.
            assert res.cap[arc] == 0, (
                f"unsaturated edge {edge} crosses the claimed min cut"
            )
            cut_edges.append(edge)
    value = sum(e.capacity for e in cut_edges)
    assert value == flow_value, (
        f"cut value {value} != max-flow value {flow_value}"
    )
    return CutResult(
        value=value,
        cut_edges=cut_edges,
        source_side=source_side,
        sink_side=sink_side,
    )


def min_cut(network: FlowNetwork, sink_closest: bool = True) -> CutResult:
    """Compute a minimum s-t cut.

    ``sink_closest=True`` (the default, and what MC-SSAPRE requires)
    returns the unique minimum cut nearest the sink; ``False`` returns the
    one nearest the source.
    """
    flow_value, res = dinic_max_flow(network)
    return _extract_cut(network, res, flow_value, sink_closest)
