"""Deterministic load generator and differential checker for the service.

A workload is a pool of ``unique`` distinct programs (drawn from the
fuzz-driver generator shapes, so they are the same population
``repro.check`` polices) served ``requests`` times in an interleaved
round-robin: request *j* asks for pool entry ``j % unique``.  Every pool
entry past the first visit is therefore a cache hit (or a coalesced wait
under concurrency), which makes the achievable hit rate an exact
function of the spec — ``(requests - unique) / requests`` — and lets the
CI gate assert against it.

Each request's expected observable behaviour is precomputed on the
reference interpreter over the *unoptimised* prepared function, so the
run doubles as a differential test: any served answer that deviates is a
**mismatch**, whether it came from a fresh compile, the cache, a
degraded fallback, or the adaptation tier mid-hot-swap.  The CI smoke
jobs require zero.

A spec with ``drift_at=K`` is *phase-shifting*: from request ``K`` on,
argument vectors come from an independent distribution, so the live
node-frequency mix diverges from the profile the artifacts were compiled
under — the end-to-end driver for drift-triggered recompilation
(``python -m repro.serve load --adapt --drift-at K``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.bench.generator import generate_program, random_args
from repro.check.driver import SHAPES, case_inputs, spec_for_shape
from repro.ir.printer import format_function
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.serve.metrics import sample_percentile
from repro.serve.server import CompileRequest, CompileService, ServeResponse

DEFAULT_VARIANTS = ("mc-ssapre", "ssapre")

#: Default connection-pool size for the open-loop client.
DEFAULT_MAX_CONNS = 32

__all__ = [
    "DEFAULT_MAX_CONNS",
    "DEFAULT_VARIANTS",
    "OpenLoopReport",
    "TCPServiceClient",
    "WorkloadSpec",
    "Workload",
    "LoadReport",
    "build_workload",
    "open_loop_schedule",
    "run_load",
    "run_open_loop",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Deterministic description of one load run."""

    requests: int = 100
    unique: int = 6
    shapes: tuple[str, ...] = SHAPES
    variants: tuple[str, ...] = DEFAULT_VARIANTS
    seed: int = 0
    rounds: int = 1
    #: Phase shift: requests ``j >= drift_at`` draw their argument
    #: vectors from an *independent* input distribution (fresh seeded
    #: draws instead of the train-correlated pool), flipping the node-
    #: frequency mix mid-run.  This is the workload that drives the
    #: adaptation tier's drift→recompile→hot-swap path end to end;
    #: ``None`` keeps the classic stationary workload.
    drift_at: int | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 1 <= self.unique <= self.requests:
            raise ValueError("unique must be in [1, requests]")
        for shape in self.shapes:
            if shape not in SHAPES:
                raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")
        if self.drift_at is not None and not 1 <= self.drift_at <= self.requests:
            raise ValueError("drift_at must be in [1, requests]")

    def expected_hit_rate(self) -> float:
        """The hit rate a correct cache must reach on this workload."""
        return (self.requests - self.unique) / self.requests


@dataclass
class Workload:
    """The materialised request sequence plus per-request expectations."""

    spec: WorkloadSpec
    requests: list[CompileRequest]
    #: ``expected[i]`` is request *i*'s reference observable
    #: ``(return_value, output_tuple)``.
    expected: list[tuple]


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialise the request sequence for *spec* (pure, deterministic)."""
    pool: list[tuple[CompileRequest, dict]] = []
    for i in range(spec.unique):
        shape = spec.shapes[i % len(spec.shapes)]
        gen_seed = spec.seed + i
        program_spec = spec_for_shape(shape, gen_seed)
        generated = generate_program(program_spec)
        inputs = case_inputs(program_spec)
        # The post-drift phase: tiny argument values collapse the masked
        # loop bounds the generator derives from them, so loop trip
        # counts (and with them the node-frequency distribution the
        # artifacts were trained under) genuinely move.
        drift_inputs = [
            random_args(program_spec, seed=9000 + spec.seed + 31 * i + k, low=0, high=3)
            for k in range(3)
        ]
        base = CompileRequest(
            source=format_function(generated.func),
            variant=spec.variants[i % len(spec.variants)],
            train_args=tuple(inputs[0]),
            rounds=spec.rounds,
        )
        prepared = prepare(generated.func)
        pool.append((base, {
            "prepared": prepared,
            "inputs": inputs[1:],
            "drift_inputs": drift_inputs,
        }))

    requests: list[CompileRequest] = []
    expected: list[tuple] = []
    oracle_cache: dict[tuple[int, tuple[int, ...]], tuple] = {}
    for j in range(spec.requests):
        i = j % spec.unique
        base, extra = pool[i]
        drifted = spec.drift_at is not None and j >= spec.drift_at
        ref_inputs = extra["drift_inputs"] if drifted else extra["inputs"]
        args = tuple(ref_inputs[(j // spec.unique) % len(ref_inputs)])
        requests.append(
            CompileRequest(
                source=base.source,
                args=args,
                variant=base.variant,
                train_args=base.train_args,
                rounds=base.rounds,
            )
        )
        cache_key = (i, args)
        if cache_key not in oracle_cache:
            result = run_function(extra["prepared"], list(args))
            oracle_cache[cache_key] = result.observable()
        expected.append(oracle_cache[cache_key])
    return Workload(spec=spec, requests=requests, expected=expected)


@dataclass
class LoadReport:
    """Outcome of one load run, JSON-exportable for the CI artifact."""

    requests: int
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    degraded: int = 0
    mismatches: int = 0
    served_by: dict[str, int] = field(default_factory=dict)
    hit_rate: float = 0.0
    expected_hit_rate: float = 0.0
    wall_s: float = 0.0
    #: Wall-clock throughput: requests / wall_s.  In a closed loop this
    #: conflates service time with client think time (the historical
    #: bias the per-request latency fields below were added to expose);
    #: kept as-is for BENCH.json compatibility.
    rps: float = 0.0
    #: Per-request send->receive latency summary (seconds), measured
    #: from individually recorded timestamps rather than the loop's
    #: total wall time: p50/p95/p99/mean_s/max_s.
    latency: dict = field(default_factory=dict)
    #: Throughput implied by service time alone: requests / (total
    #: in-service seconds / client threads).  >= rps, and the gap
    #: between the two is exactly the client-side think time the old
    #: single-number report hid.
    service_rps: float = 0.0
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "mismatches": self.mismatches,
            "served_by": dict(sorted(self.served_by.items())),
            "hit_rate": round(self.hit_rate, 4),
            "expected_hit_rate": round(self.expected_hit_rate, 4),
            "wall_s": round(self.wall_s, 6),
            "rps": round(self.rps, 2),
            "latency": self.latency,
            "service_rps": round(self.service_rps, 2),
            "metrics": self.metrics,
        }


def run_load(
    service: CompileService,
    workload: Workload,
    *,
    jobs: int = 1,
) -> tuple[LoadReport, list[ServeResponse]]:
    """Drive *workload* through *service* with ``jobs`` client threads.

    Responses come back in request order regardless of concurrency, so
    ``responses[i]`` always pairs with ``workload.expected[i]``.

    Every request records its own send and receive timestamps: the
    report's ``latency`` block and ``service_rps`` come from those,
    while the historical ``rps`` stays requests-over-wall-time (which
    in a closed loop includes the client's own think time between
    requests).
    """

    def timed_handle(request: CompileRequest) -> tuple[ServeResponse, float, float]:
        send_t = time.perf_counter()
        response = service.handle(request)
        return response, send_t, time.perf_counter()

    start = time.perf_counter()
    if jobs <= 1:
        timed = [timed_handle(request) for request in workload.requests]
    else:
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-loadgen"
        ) as pool:
            timed = list(pool.map(timed_handle, workload.requests))
    wall = time.perf_counter() - start

    responses = [response for response, _send, _recv in timed]
    latencies = [recv - send for _response, send, recv in timed]
    busy_s = sum(latencies)
    report = LoadReport(
        requests=len(responses),
        expected_hit_rate=workload.spec.expected_hit_rate(),
        wall_s=wall,
        rps=len(responses) / wall if wall > 0 else 0.0,
        latency=latency_summary(latencies),
        service_rps=(
            len(responses) / (busy_s / max(1, jobs)) if busy_s > 0 else 0.0
        ),
    )
    for response, expected in zip(responses, workload.expected):
        if response.status == "ok":
            report.ok += 1
            if response.observable() != expected:
                report.mismatches += 1
        elif response.status == "timeout":
            report.timeouts += 1
        else:
            report.errors += 1
        if response.degraded:
            report.degraded += 1
        if response.served_by is not None:
            report.served_by[response.served_by] = (
                report.served_by.get(response.served_by, 0) + 1
            )
    report.hit_rate = service.metrics.hit_rate()
    report.metrics = service.metrics.to_dict()
    return report, responses


def latency_summary(latencies: list[float]) -> dict:
    """The pinned latency block: percentiles + mean/max, in seconds."""
    if not latencies:
        return {
            "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
            "mean_s": 0.0, "max_s": 0.0,
        }
    return {
        "p50_s": round(sample_percentile(latencies, 0.5), 6),
        "p95_s": round(sample_percentile(latencies, 0.95), 6),
        "p99_s": round(sample_percentile(latencies, 0.99), 6),
        "mean_s": round(sum(latencies) / len(latencies), 6),
        "max_s": round(max(latencies), 6),
    }


class TCPServiceClient:
    """A ``CompileService``-shaped client over the JSON-lines protocol.

    Exposes ``handle(request) -> ServeResponse`` and a ``metrics``
    facade, so :func:`run_load` (and the CLI's gates) drive a remote
    server — a single worker or the whole cluster front end — exactly
    like an in-process service.  Connections are per-thread, so the
    ``jobs`` fan-out in ``run_load`` maps to real concurrent sockets.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()
        self._conns: list[socket.socket] = []
        self._conns_lock = threading.Lock()
        self.metrics = _RemoteMetrics(self)

    def _exchange(self, payload: dict) -> dict:
        stream = getattr(self._local, "stream", None)
        if stream is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.settimeout(self.timeout)
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            self._local.stream = stream
            with self._conns_lock:
                self._conns.append(sock)
        stream.write(json.dumps(payload) + "\n")
        stream.flush()
        line = stream.readline()
        if not line:
            raise ConnectionError(
                f"server {self.host}:{self.port} closed the connection"
            )
        return json.loads(line)

    def handle(self, request: CompileRequest) -> ServeResponse:
        return ServeResponse.from_dict(
            self._exchange(dataclasses.asdict(request))
        )

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "TCPServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RemoteMetrics:
    """The slice of :class:`ServeMetrics` the load driver reads, served
    by the remote end's in-band ``{"cmd": "metrics"}``."""

    def __init__(self, client: TCPServiceClient) -> None:
        self._client = client

    def to_dict(self) -> dict:
        return self._client._exchange({"cmd": "metrics"})

    def hit_rate(self) -> float:
        return float(self.to_dict()["hit_rate"])


# ----------------------------------------------------------------------
# Open-loop mode: arrivals follow a fixed schedule, never the server.

def open_loop_schedule(n: int, rps: float, seed: int = 0) -> list[float]:
    """Deterministic Poisson arrival offsets (seconds from start).

    Exponential inter-arrival gaps at ``rps`` from a seeded PRNG: the
    schedule is a pure function of ``(n, rps, seed)``, so a bench run
    is replayable and two processes can agree on the offered load
    without coordination.  The first arrival is at 0.
    """
    if n < 1:
        return []
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    rng = random.Random(seed)
    offsets = [0.0]
    for _ in range(n - 1):
        offsets.append(offsets[-1] + rng.expovariate(rps))
    return offsets


@dataclass
class OpenLoopReport:
    """Outcome of one open-loop run.

    ``latency`` is **coordinated-omission-free**: each request's clock
    starts at its *scheduled* arrival time, so time spent queueing for
    a free connection — the signature of a server that cannot keep up —
    is charged to the request, not silently dropped the way a closed
    loop drops it.  ``service_latency`` (actual send -> receive) is
    reported alongside so queue delay and service delay are separable.
    """

    requests: int
    offered_rps: float
    seed: int
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    degraded: int = 0
    mismatches: int = 0
    served_by: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    achieved_rps: float = 0.0
    max_in_flight: int = 0
    latency: dict = field(default_factory=dict)
    service_latency: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "offered_rps": round(self.offered_rps, 2),
            "seed": self.seed,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "mismatches": self.mismatches,
            "served_by": dict(sorted(self.served_by.items())),
            "wall_s": round(self.wall_s, 6),
            "achieved_rps": round(self.achieved_rps, 2),
            "max_in_flight": self.max_in_flight,
            "latency": self.latency,
            "service_latency": self.service_latency,
        }


def run_open_loop(
    host: str,
    port: int,
    workload: Workload,
    *,
    rps: float,
    seed: int = 0,
    max_conns: int = DEFAULT_MAX_CONNS,
    timeout: float = 120.0,
) -> OpenLoopReport:
    """Drive *workload* at a fixed offered rate against a TCP server.

    Arrivals follow :func:`open_loop_schedule` regardless of how fast
    the server answers; a request whose arrival time has passed is
    dispatched immediately (it queues for one of ``max_conns`` pooled
    connections if all are busy, and that wait is part of its CO-free
    latency).  Differential checking is identical to the closed loop:
    every ``ok`` answer is compared against the workload's reference
    expectations.
    """
    return asyncio.run(
        _open_loop_async(
            host, port, workload,
            rps=rps, seed=seed, max_conns=max_conns, timeout=timeout,
        )
    )


async def _open_loop_async(
    host: str,
    port: int,
    workload: Workload,
    *,
    rps: float,
    seed: int,
    max_conns: int,
    timeout: float,
) -> OpenLoopReport:
    n = len(workload.requests)
    schedule = open_loop_schedule(n, rps, seed)
    loop = asyncio.get_event_loop()

    pool: asyncio.Queue = asyncio.Queue()
    conns = min(max_conns, n)
    for _ in range(conns):
        reader, writer = await asyncio.open_connection(host, port)
        pool.put_nowait((reader, writer))

    results: list[dict | None] = [None] * n
    latencies = [0.0] * n            # scheduled arrival -> receive
    service_latencies = [0.0] * n    # actual send -> receive
    in_flight = 0
    max_in_flight = 0
    t0 = loop.time()

    async def fire(i: int, scheduled: float, request: CompileRequest) -> None:
        nonlocal in_flight, max_in_flight
        in_flight += 1
        max_in_flight = max(max_in_flight, in_flight)
        try:
            reader, writer = await pool.get()
            try:
                send_t = loop.time()
                writer.write(
                    (json.dumps(dataclasses.asdict(request)) + "\n").encode()
                )
                await writer.drain()
                raw = await asyncio.wait_for(reader.readline(), timeout=timeout)
                recv_t = loop.time()
                if not raw:
                    raise ConnectionError("server closed the connection")
            finally:
                pool.put_nowait((reader, writer))
            results[i] = json.loads(raw)
            latencies[i] = recv_t - (t0 + scheduled)
            service_latencies[i] = recv_t - send_t
        except (OSError, ValueError, asyncio.TimeoutError) as exc:
            recv_t = loop.time()
            results[i] = {
                "status": "timeout" if isinstance(exc, asyncio.TimeoutError)
                else "error",
                "error": f"{type(exc).__name__}: {exc}",
            }
            latencies[i] = recv_t - (t0 + scheduled)
            service_latencies[i] = latencies[i]
        finally:
            in_flight -= 1

    tasks = []
    for i, (scheduled, request) in enumerate(zip(schedule, workload.requests)):
        delay = (t0 + scheduled) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(i, scheduled, request)))
    await asyncio.gather(*tasks)
    wall = loop.time() - t0

    while not pool.empty():
        _reader, writer = pool.get_nowait()
        writer.close()

    report = OpenLoopReport(
        requests=n,
        offered_rps=rps,
        seed=seed,
        wall_s=wall,
        achieved_rps=n / wall if wall > 0 else 0.0,
        max_in_flight=max_in_flight,
        latency=latency_summary(latencies),
        service_latency=latency_summary(service_latencies),
    )
    for data, expected in zip(results, workload.expected):
        assert data is not None
        status = data.get("status")
        if status == "ok":
            report.ok += 1
            observable = (
                data.get("return_value"), tuple(data.get("output") or ()),
            )
            if observable != expected:
                report.mismatches += 1
        elif status == "timeout":
            report.timeouts += 1
        else:
            report.errors += 1
        if data.get("degraded"):
            report.degraded += 1
        served_by = data.get("served_by")
        if served_by is not None:
            report.served_by[served_by] = report.served_by.get(served_by, 0) + 1
    return report
