"""Structural well-formedness checks for IR functions.

Two layers of checking are provided:

* :func:`verify_function` — invariants every function must satisfy
  (branch targets exist, phi arguments match predecessors, entry has no
  predecessors requiring phis, etc.).
* :func:`verify_ssa` lives in :mod:`repro.ssa.ssa_verifier` and adds the
  SSA-specific single-definition and dominance rules.

All passes in this repository call the verifier before and after
transforming in their test suites, so a broken rewrite fails loudly and
close to its cause.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    CondJump,
    Jump,
    Load,
    Output,
    Phi,
    Return,
    Store,
)


class VerificationError(Exception):
    """Raised when a function violates an IR invariant."""


def _fail(func: Function, message: str) -> None:
    raise VerificationError(f"function {func.name!r}: {message}")


def verify_function(func: Function) -> None:
    """Check structural invariants; raise :class:`VerificationError`.

    Checks performed:

    1. the function has an entry block and it exists in ``blocks``;
    2. every dict key matches its block's ``label``;
    3. every branch target names an existing block;
    4. every phi's argument labels are exactly the block's predecessors;
    5. the entry block has no phis (it has no predecessors);
    6. terminators are of a known type and bodies contain only statements;
    7. no duplicate parameter names;
    8. every load / store names an array declared in ``func.arrays``.
    """
    if func.entry is None or func.entry not in func.blocks:
        _fail(func, f"missing entry block {func.entry!r}")

    names = [p.name for p in func.params]
    if len(names) != len(set(names)):
        _fail(func, f"duplicate parameter names: {names}")

    for label, block in func.blocks.items():
        if block.label != label:
            _fail(func, f"block registered as {label!r} but labelled {block.label!r}")
        if not isinstance(block.terminator, (Jump, CondJump, Return)):
            _fail(func, f"block {label!r} has invalid terminator {block.terminator!r}")
        for stmt in block.body:
            if not isinstance(stmt, (Assign, Output, Store)):
                _fail(func, f"block {label!r} contains non-statement {stmt!r}")
            if isinstance(stmt, Store) and stmt.array not in func.arrays:
                _fail(
                    func,
                    f"block {label!r}: store to undeclared array "
                    f"{stmt.array!r}",
                )
            if (
                isinstance(stmt, Assign)
                and isinstance(stmt.rhs, Load)
                and stmt.rhs.array not in func.arrays
            ):
                _fail(
                    func,
                    f"block {label!r}: load from undeclared array "
                    f"{stmt.rhs.array!r}",
                )
        for phi in block.phis:
            if not isinstance(phi, Phi):
                _fail(func, f"block {label!r} phi list contains {phi!r}")

    try:
        cfg = CFG(func)
    except ValueError as exc:  # dangling branch targets
        raise VerificationError(f"function {func.name!r}: {exc}") from exc

    for label, block in func.blocks.items():
        preds = set(cfg.predecessors(label))
        for phi in block.phis:
            got = set(phi.args)
            if got != preds:
                _fail(
                    func,
                    f"phi {phi} in block {label!r} has arguments for {sorted(got)} "
                    f"but predecessors are {sorted(preds)}",
                )

    entry_block = func.entry_block
    if entry_block.phis:
        _fail(func, "entry block must not contain phis")


def has_critical_edges(func: Function) -> bool:
    """True when any CFG edge is critical (see paper Section 3.1.2)."""
    cfg = CFG(func)
    return any(cfg.is_critical_edge(src, dst) for src, dst in cfg.edges())
