"""Per-function analysis cache with generation-based invalidation.

Every cache entry remembers the value of the function generation counter
(:attr:`Function.cfg_generation` or :attr:`Function.code_generation`,
selected by the analysis's ``depends``) at compute time.  A lookup whose
recorded generation no longer matches recomputes — so CFG surgery through
:meth:`Function.add_block` / :meth:`Function.remove_block` (or any
transform that calls :meth:`Function.mark_cfg_mutated`) invalidates
dominators, dominance frontiers, loops and liveness automatically, with
no registration dance.

A :class:`Pass` that declares ``preserves()`` lets the
:class:`~repro.passes.manager.PassManager` call :meth:`reaffirm` so the
named entries survive the post-pass generation bump — that is what keeps
the cache warm across a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function
from repro.passes.base import AnalysisPass, StaleAnalysisError


@dataclass
class _Entry:
    generation: int
    value: object


class AnalysisCache:
    """Memoised analyses for exactly one :class:`Function`."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self._entries: dict[str, _Entry] = {}
        #: Per-analysis hit/miss counters (observability; never reset by
        #: invalidation so they describe the whole cache lifetime).
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def ensure(cls, func: Function, cache: "AnalysisCache | None") -> "AnalysisCache":
        """*cache* when given (validated against *func*), else a fresh one."""
        if cache is None:
            return cls(func)
        if cache.func is not func:
            raise ValueError(
                f"analysis cache is bound to function {cache.func.name!r}, "
                f"not {func.name!r}"
            )
        return cache

    def _generation(self, analysis: AnalysisPass) -> int:
        if analysis.depends == "cfg":
            return self.func.cfg_generation
        return self.func.code_generation

    # ------------------------------------------------------------------
    def get(self, analysis: AnalysisPass) -> object:
        """The up-to-date result of *analysis*, computing on a miss."""
        entry = self._entries.get(analysis.name)
        generation = self._generation(analysis)
        if entry is not None and entry.generation == generation:
            self.hits[analysis.name] = self.hits.get(analysis.name, 0) + 1
            return entry.value
        self.misses[analysis.name] = self.misses.get(analysis.name, 0) + 1
        value = analysis.compute(self.func, self)
        # compute() may itself have pulled (and therefore freshly cached)
        # other analyses; re-read the generation in case a dependency
        # lazily mutated bookkeeping — analyses never mutate the IR, so
        # the generation cannot actually move, but being explicit is free.
        self._entries[analysis.name] = _Entry(self._generation(analysis), value)
        return value

    def peek(self, analysis: AnalysisPass) -> object | None:
        """The cached result if fresh, else ``None`` (never computes)."""
        entry = self._entries.get(analysis.name)
        if entry is not None and entry.generation == self._generation(analysis):
            return entry.value
        return None

    def handle(self, analysis: AnalysisPass) -> "AnalysisHandle":
        """A live handle whose ``.value`` raises once the result is stale.

        Use this when holding an analysis across code that might mutate
        the function — a silent stale read becomes a loud
        :class:`StaleAnalysisError` instead.
        """
        self.get(analysis)
        return AnalysisHandle(self, analysis)

    # ------------------------------------------------------------------
    def reaffirm(self, names: frozenset[str] | set[str]) -> None:
        """Re-stamp the named entries to the current generations.

        Called by the pass manager for analyses a pass ``preserves()``
        even though the generation counters were bumped.
        """
        for name in names:
            entry = self._entries.get(name)
            if entry is None:
                continue
            analysis = _DEPENDS_PROBE.get(name)
            if analysis is None:
                continue
            entry.generation = self._generation(analysis)

    def invalidate(self, name: str | None = None) -> None:
        """Drop one entry (or all of them) regardless of generations."""
        if name is None:
            self._entries.clear()
        else:
            self._entries.pop(name, None)

    # ------------------------------------------------------------------
    def total_hits(self) -> int:
        return sum(self.hits.values())

    def total_misses(self) -> int:
        return sum(self.misses.values())

    def counters(self) -> dict[str, tuple[int, int]]:
        """``{analysis name: (hits, misses)}`` over the cache lifetime."""
        names = sorted(set(self.hits) | set(self.misses))
        return {
            name: (self.hits.get(name, 0), self.misses.get(name, 0))
            for name in names
        }


class AnalysisHandle:
    """A checked reference to one cached analysis result."""

    def __init__(self, cache: AnalysisCache, analysis: AnalysisPass) -> None:
        self._cache = cache
        self._analysis = analysis
        self._generation = cache._generation(analysis)

    @property
    def value(self) -> object:
        """The analysis result; raises :class:`StaleAnalysisError` if the
        function has mutated past the point this handle was taken."""
        current = self._cache._generation(self._analysis)
        if current != self._generation:
            raise StaleAnalysisError(
                f"analysis {self._analysis.name!r} of function "
                f"{self._cache.func.name!r} is stale: computed at "
                f"generation {self._generation}, function is now at "
                f"{current}"
            )
        value = self._cache.peek(self._analysis)
        if value is None:
            raise StaleAnalysisError(
                f"analysis {self._analysis.name!r} of function "
                f"{self._cache.func.name!r} was invalidated"
            )
        return value

    def refresh(self) -> "AnalysisHandle":
        """A new handle at the function's current generation."""
        return self._cache.handle(self._analysis)


#: name → descriptor, used by :meth:`AnalysisCache.reaffirm` to find the
#: generation kind of a preserved analysis.  Populated by
#: :mod:`repro.passes.analyses` at import time via :func:`register_analysis`.
_DEPENDS_PROBE: dict[str, AnalysisPass] = {}


def register_analysis(analysis: AnalysisPass) -> AnalysisPass:
    """Register a shared analysis descriptor (module-level singleton)."""
    _DEPENDS_PROBE[analysis.name] = analysis
    return analysis
