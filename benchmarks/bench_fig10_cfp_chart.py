"""E4 — paper Figure 10: CFP2006 performance normalised to safe SSAPRE."""

from conftest import emit

from repro.bench.figures import figure10


def test_figure10_series(cfp_table, benchmark):
    chart = benchmark(lambda: figure10(cfp_table))
    emit("Figure 10 (CFP2006, normalised to A = 1.0)", chart.render())

    below_one = 0
    for name, a, b, c in chart.series():
        assert a == 1.0
        assert c <= 1.03, name
        if b < 1.0:
            below_one += 1
    # Loop speculation helps most CFP benchmarks (the paper's point about
    # floating-point code being loop-oriented).
    assert below_one >= len(chart.series()) // 2
