"""A2 (ablation) — node frequencies suffice for MC-SSAPRE.

The paper's contribution 3: MC-SSAPRE needs only node frequencies while
MC-PRE needs edge frequencies.  This bench verifies that (a) MC-SSAPRE
compiled from a nodes-only profile is *identical* to one compiled from the
full profile, and (b) it still matches edge-profile-driven MC-PRE's
optimal dynamic counts.
"""

from conftest import SUITE_SUBSET, emit

from repro.bench.ablations import profile_ablation, render_profiles
from repro.bench.workloads import load_workload


def test_node_frequencies_suffice(benchmark):
    benchmark.pedantic(
        profile_ablation,
        args=(load_workload(SUITE_SUBSET[0]),),
        rounds=1,
        iterations=1,
    )

    results = [profile_ablation(load_workload(name)) for name in SUITE_SUBSET]
    emit("Ablation A2 (node-frequency sufficiency)", render_profiles(results))

    for r in results:
        assert r.identical_output, r.name
        assert r.counts_match_mcpre, r.name
