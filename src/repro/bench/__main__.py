"""``python -m repro.bench`` dispatches to :mod:`repro.bench.cli`."""

from repro.bench.cli import main

raise SystemExit(main())
