"""Tests for the rename-driven (sparse) DownSafety variant."""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.core.ssapre.downsafety import (
    compute_down_safety,
    compute_down_safety_sparse,
)
from repro.core.ssapre.driver import run_ssapre
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.ir.builder import FunctionBuilder
from repro.pipeline import prepare
from repro.profiles.counts import normalize_expr_counts
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from tests.conftest import as_ssa

AB = ExprClass(("add", ("var", "a"), ("var", "b")))


def _both_variants(seed: int):
    """(sparse, oracle) down-safety maps per Φ, for every class."""
    spec = ProgramSpec(name="dss", seed=seed, max_depth=2)
    func = generate_program(spec).func
    prepared = prepare(func)
    construct_ssa(prepared)
    results = []
    for frg in build_frgs(prepared).values():
        compute_down_safety_sparse(frg)
        sparse = {id(phi): phi.down_safe for phi in frg.phis}
        compute_down_safety(frg)
        oracle = {id(phi): phi.down_safe for phi in frg.phis}
        results.append((frg, sparse, oracle))
    return results


class TestAgainstOracle:
    def test_variants_are_incomparable(self):
        """The lexical oracle and the rename-driven variant approximate
        true (value-level) anticipability from different sides: on seed 3
        the oracle proves Φs the sparse walk misses; on seed 24 the sparse
        walk sees a value surviving a variable-phi that the lexical
        analysis must give up on.  Both directions genuinely occur."""
        sparse_only = oracle_only = 0
        for seed in (3, 24):
            for _frg, sparse, oracle in _both_variants(seed):
                for phi_id in sparse:
                    if sparse[phi_id] and not oracle[phi_id]:
                        sparse_only += 1
                    if oracle[phi_id] and not sparse[phi_id]:
                        oracle_only += 1
        assert sparse_only > 0
        assert oracle_only > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=60_000))
    def test_mostly_agree(self, seed):
        """The disagreement set is small in practice — most Φs get the
        same verdict from both variants."""
        total = agree = 0
        for _frg, sparse, oracle in _both_variants(seed):
            for phi_id in sparse:
                total += 1
                agree += sparse[phi_id] == oracle[phi_id]
        if total:
            assert agree / total > 0.6

    def test_agree_on_diamond(self, diamond):
        ssa = as_ssa(diamond)
        frg = build_frgs(ssa, [AB])[AB.key]
        compute_down_safety_sparse(frg)
        assert frg.phis[0].down_safe  # the join always computes a+b

    def test_agree_on_while_loop(self, while_loop):
        ssa = as_ssa(while_loop)
        frg = build_frgs(ssa, [AB])[AB.key]
        compute_down_safety_sparse(frg)
        assert not frg.phi_at("head").down_safe

    def test_sibling_uses_keep_phi_down_safe(self):
        """Uses in both sibling branches: the h-Φ inserted at their merge
        records the crossings (has_real_use operands), so the sparse walk
        reaches the same verdict as the oracle — both down-safe."""
        b = FunctionBuilder("f", params=["a", "b", "p", "q"])
        b.block("entry")
        b.branch("p", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("mid")
        b.block("r")
        b.jump("mid")
        b.block("mid")      # Φ here: one real operand, one bottom
        b.branch("q", "u1", "u2")
        b.block("u1")
        b.assign("y", "add", "a", "b")   # uses the Φ version
        b.ret("y")
        b.block("u2")
        b.assign("z", "add", "a", "b")   # uses the Φ version
        b.ret("z")
        ssa = as_ssa(b.build())
        frg = build_frgs(ssa, [AB])[AB.key]
        phi = frg.phi_at("mid")
        assert phi is not None
        compute_down_safety(frg)
        assert phi.down_safe
        compute_down_safety_sparse(frg)
        assert phi.down_safe


class TestSparseDriver:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=30_000))
    def test_semantics_and_safety(self, seed):
        """SSAPRE with sparse DownSafety stays correct and never makes
        any expression more frequent on any input."""
        spec = ProgramSpec(name="dsr", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        work = copy.deepcopy(prepared)
        construct_ssa(work)
        run_ssapre(work, down_safety="sparse", validate=True)
        from repro.ssa.destruct import destruct_ssa

        destruct_ssa(work)
        for argseed in range(2):
            args = random_args(spec, argseed)
            before = run_function(prepared, args)
            after = run_function(work, args)
            assert after.observable() == before.observable()
            b = normalize_expr_counts(before.expr_counts)
            a = normalize_expr_counts(after.expr_counts)
            for key, count in a.items():
                assert count <= b.get(key, 0), key

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=30_000))
    def test_both_modes_never_slower_than_input(self, seed):
        """Either DownSafety mode yields a safe optimisation: neither may
        cost more than the unoptimised program (they are incomparable
        against each other, so no ordering between them is asserted)."""
        spec = ProgramSpec(name="dsc", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        args = random_args(spec, 1)
        baseline = run_function(prepared, args).dynamic_cost

        def cost(mode):
            work = copy.deepcopy(prepared)
            construct_ssa(work)
            run_ssapre(work, down_safety=mode)
            from repro.ssa.destruct import destruct_ssa

            destruct_ssa(work)
            return run_function(work, args).dynamic_cost

        assert cost("oracle") <= baseline
        assert cost("sparse") <= baseline

    def test_unknown_mode_rejected(self, diamond):
        ssa = as_ssa(diamond)
        import pytest

        with pytest.raises(ValueError):
            run_ssapre(ssa, down_safety="magic")
