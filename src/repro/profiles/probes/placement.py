"""Minimum coverage instrumentation: where to put the probes.

A probe at block ``v`` counts executions of ``v``.  Placement picks the
smallest probe set from which flow conservation recovers *every* block
frequency, and among all minimum-size sets the one whose blocks are
coldest under the training profile (Chen et al., arXiv 2208.13907's
min-cost refinement) — the hot path runs uninstrumented.

The determining sets form a linear matroid: probe measurements are rows
in the chord-coordinate space of :class:`~repro.profiles.probes.flowsys.
FlowSystem`, and a set determines all frequencies iff its rows (together
with the known run count ``t``) span the full measurement space.
Greedily scanning blocks in ascending cost order and keeping each block
whose row grows the span therefore yields a probe set that is both
minimum-size and minimum-cost — the classic matroid-greedy optimality
argument, with no search.

For a single-exit reducible-or-not CFG the spanned space has dimension
at most ``|E| − |V| + 2`` and ``t`` always contributes one dimension, so
the probe count is bounded by ``|E| − |V| + 1`` (|E|, |V| over the
reachable real CFG) — the spanning-tree bound BENCH pins.

Placement refuses rather than degrades: multi-exit functions (several
return blocks — the augmented graph gains extra virtual edges and the
bound no longer holds), functions with no exit at all, and functions
above a block-count guard raise :class:`PlacementError` with a machine-
readable ``reason`` so callers fall back to full counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.profiles.probes.flowsys import Eliminator, FlowSystem

#: Reasons a CFG is refused (callers fall back to full counting).
REFUSAL_REASONS = ("multi-exit", "no-exit", "too-large")

#: Default guard on CFG size: beyond this the exact rational algebra is
#: no longer obviously cheap, and nothing in this code base comes close.
MAX_BLOCKS = 512


class PlacementError(Exception):
    """The CFG is outside the subsystem's certified envelope.

    ``reason`` is one of :data:`REFUSAL_REASONS`; callers use it to
    decide (and report) the full-counting fallback.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class ProbePlacement:
    """A certified probe set for one CFG shape.

    Plain label data only — hashable, picklable, and enough to rebuild
    the :class:`FlowSystem` deterministically in any process.  ``probes``
    is the instrumentation set in placement (ascending-cost) order;
    ``bound`` is the spanning-tree bound ``|E| − |V| + 1`` the set is
    guaranteed not to exceed.
    """

    entry: str
    blocks: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]
    exits: tuple[str, ...]
    probes: tuple[str, ...]
    n_edges: int = field(init=False, default=0)
    bound: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_edges", len(self.edges))
        object.__setattr__(
            self, "bound", max(0, len(self.edges) - len(self.blocks) + 1)
        )

    @property
    def probe_set(self) -> frozenset[str]:
        return frozenset(self.probes)

    def system(self) -> FlowSystem:
        return _system_for(self.entry, self.blocks, self.edges, self.exits)


@lru_cache(maxsize=256)
def _system_for(
    entry: str,
    blocks: tuple[str, ...],
    edges: tuple[tuple[str, str], ...],
    exits: tuple[str, ...],
) -> FlowSystem:
    return FlowSystem(entry, blocks, edges, exits)


def cfg_shape(
    func: Function,
) -> tuple[str, tuple[str, ...], tuple[tuple[str, str], ...], tuple[str, ...]]:
    """The reachable CFG of *func* as plain label data (entry, blocks in
    RPO, merged distinct edges, exit blocks)."""
    cfg = CFG(func)
    rpo = tuple(cfg.reverse_postorder())
    reachable = set(rpo)
    edges: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    for label in rpo:
        for succ in cfg.succs[label]:
            if succ in reachable and (label, succ) not in seen:
                seen.add((label, succ))
                edges.append((label, succ))
    exits = tuple(label for label in rpo if not cfg.succs[label])
    assert cfg.entry is not None
    return cfg.entry, rpo, tuple(edges), exits


def place_probes(
    func: Function,
    profile=None,
    max_blocks: int = MAX_BLOCKS,
) -> ProbePlacement:
    """Compute the minimum-cost minimum-size probe set for *func*.

    *profile* (an ``ExecutionProfile`` or anything with ``node_freq``)
    supplies the cost of probing each block; blocks it does not mention
    cost 0.  Without a profile every block costs 0 and the greedy falls
    back to reverse-postorder tie-breaking, which keeps placement
    deterministic either way.

    Raises :class:`PlacementError` on multi-exit, exit-free or oversized
    CFGs — the shapes where the reconstruction contract (exact counts,
    spanning-tree probe bound) is not certified.
    """
    entry, blocks, edges, exits = cfg_shape(func)
    if len(blocks) > max_blocks:
        raise PlacementError(
            "too-large", f"{len(blocks)} blocks exceeds guard {max_blocks}"
        )
    if not exits:
        raise PlacementError(
            "no-exit", f"function {func.name!r} has no return block"
        )
    if len(exits) > 1:
        raise PlacementError(
            "multi-exit",
            f"function {func.name!r} has {len(exits)} return blocks "
            f"{list(exits)!r}",
        )

    system = _system_for(entry, blocks, edges, exits)

    # Rank of the full measurement space {t} ∪ {m_v : all v}.
    full = Eliminator(system.dimension)
    full.add(system.t_row)
    for label in blocks:
        full.add(system.node_rows[label])

    node_freq = getattr(profile, "node_freq", None) or {}
    order = sorted(
        range(len(blocks)),
        key=lambda i: (node_freq.get(blocks[i], 0), i),
    )

    chosen = Eliminator(system.dimension)
    chosen.add(system.t_row)
    probes: list[str] = []
    for i in order:
        if chosen.rank == full.rank:
            break
        if chosen.add(system.node_rows[blocks[i]]):
            probes.append(blocks[i])
    assert chosen.rank == full.rank, "matroid greedy failed to reach full rank"

    placement = ProbePlacement(
        entry=entry, blocks=blocks, edges=edges, exits=exits,
        probes=tuple(probes),
    )
    assert len(placement.probes) <= placement.bound, (
        f"probe set {len(placement.probes)} exceeds spanning-tree bound "
        f"{placement.bound}"
    )
    return placement
