"""Golden test: the running example's composite extension, end to end.

The paper's running example (Figures 2-8) plus one rank-1 composite in
the hot loop: ``v = u + a`` over the loop-invariant ``u = c+d``.  The
one-shot driver hoists ``c+d`` but must leave ``u + a`` in the loop
(``u``'s SSA version is defined inside it); the iterative driver's round
2 sees the operand rewritten through the reload copy and hoists the
composite the same speculative way.  Dynamic cost strictly drops, and
observables match the reference interpreter and the compiled back end
on every input.
"""

import copy

from repro.core.mcssapre.driver import run_mc_ssapre
from repro.core.worklist import DEFAULT_ITERATIVE_ROUNDS
from repro.examples_data.running_example import (
    CD_KEY,
    UA_KEY,
    build_running_example,
)
from repro.ir.transforms import split_critical_edges
from repro.profiles.compiled import compile_function
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa

import pytest

INPUTS = [[1, 2, 1, 5], [1, 2, 0, 5], [3, 4, 1, 0], [3, 4, 0, 0]]
#: Inputs that actually enter the loop (q > 0) — the behaviour the hot
#: profile (B9: 400) promises.  Speculative hoists are optimised for
#: these; zero-trip inputs pay the usual FDO premium (one extra
#: preheader computation), exactly as MC-SSAPRE already does for c+d
#: relative to safe PRE.
PROFILE_LIKE = [args for args in INPUTS if args[3] > 0]


def in_ssa():
    example = build_running_example(composite=True)
    func = copy.deepcopy(example.func)
    split_critical_edges(func)
    construct_ssa(func)
    return example, func


@pytest.fixture(scope="module")
def compiled_pair():
    """(one-shot func, iterative func, iterative PREResult)."""
    example, oneshot = in_ssa()
    _, iterative = in_ssa()
    run_mc_ssapre(oneshot, example.profile, validate=True)
    result = run_mc_ssapre(
        iterative, example.profile, validate=True,
        rounds=DEFAULT_ITERATIVE_ROUNDS,
    )
    return oneshot, iterative, result


class TestSecondOrderWin:
    def test_oneshot_leaves_the_composite_in_the_loop(self, compiled_pair):
        oneshot, _, _ = compiled_pair
        run = run_function(oneshot, [1, 2, 1, 5])
        assert run.expr_counts[CD_KEY] == 1  # first-order hoist works
        assert run.expr_counts[UA_KEY] == 5  # composite stays put

    def test_iterative_hoists_the_composite(self, compiled_pair):
        _, iterative, result = compiled_pair
        run = run_function(iterative, [1, 2, 1, 5])
        assert run.expr_counts[CD_KEY] == 1
        # The composite was rewritten onto the temp and hoisted: the
        # lexical u+a no longer executes in the loop at all.
        assert run.expr_counts.get(UA_KEY, 0) == 0
        assert result.rounds_run >= 2
        assert result.fixpoint

    def test_dynamic_cost_strictly_lower_never_higher(self, compiled_pair):
        oneshot, iterative, _ = compiled_pair
        strict = False
        for args in PROFILE_LIKE:
            one = run_function(copy.deepcopy(oneshot), args)
            it = run_function(copy.deepcopy(iterative), args)
            assert it.dynamic_cost <= one.dynamic_cost, args
            strict = strict or it.dynamic_cost < one.dynamic_cost
        assert strict

    def test_zero_trip_premium_is_one_preheader_computation(
        self, compiled_pair
    ):
        """Anti-profile inputs pay at most the hoisted computation."""
        oneshot, iterative, _ = compiled_pair
        for args in INPUTS:
            if args in PROFILE_LIKE:
                continue
            one = run_function(copy.deepcopy(oneshot), args)
            it = run_function(copy.deepcopy(iterative), args)
            assert it.dynamic_cost <= one.dynamic_cost + 1, args


class TestParity:
    def test_observables_match_reference_everywhere(self, compiled_pair):
        _, iterative, _ = compiled_pair
        example, _ = in_ssa()
        for args in INPUTS:
            expected = run_function(
                copy.deepcopy(example.func), args
            ).observable()
            assert run_function(
                copy.deepcopy(iterative), args
            ).observable() == expected

    def test_compiled_backend_parity(self, compiled_pair):
        _, iterative, _ = compiled_pair
        program = compile_function(iterative)
        for args in INPUTS:
            ref = run_function(copy.deepcopy(iterative), args)
            jit = program.run(args)
            assert jit.observable() == ref.observable()
            assert jit.dynamic_cost == ref.dynamic_cost
