"""The occurrence index and the rank-ordered worklist engine."""

import copy

from repro.core.occurrences import OccurrenceIndex
from repro.core.ssapre.driver import PREResult, run_ssapre
from repro.core.ssapre.frg import collect_expr_classes
from repro.core.worklist import DEFAULT_ITERATIVE_ROUNDS, run_rounds
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_function
from repro.ir.values import Var
from repro.profiles.interp import run_function

from tests.conftest import as_ssa

import pytest

ADD_AB = ("add", ("var", "a"), ("var", "b"))
ADD_XC = ("add", ("var", "x"), ("var", "c"))
ADD_YC = ("add", ("var", "y"), ("var", "c"))
MUL_UV = ("mul", ("var", "u"), ("var", "v"))


def chain_func():
    """The minimal second-order example: ``x+c`` and ``y+c`` only become
    lexically equal after ``a+b``'s code motion rewrites both operands
    onto the PRE temporary."""
    b = FunctionBuilder("chain", params=["a", "b", "c"])
    b.block("entry")
    b.assign("x", "add", "a", "b")
    b.assign("u", "add", "x", "c")
    b.output("u")
    b.assign("y", "add", "a", "b")
    b.assign("v", "add", "y", "c")
    b.assign("w", "mul", "u", "v")
    b.ret("w")
    return b.build()


def no_redundancy_func():
    b = FunctionBuilder("clean", params=["a", "b"])
    b.block("entry")
    b.assign("x", "add", "a", "b")
    b.ret("x")
    return b.build()


class TestIndexBuild:
    def test_indexes_every_operator_assign(self):
        index = OccurrenceIndex.build(chain_func())
        assert index.keys() == [ADD_AB, ADD_XC, ADD_YC, MUL_UV]
        assert len(index.occurrences(ADD_AB)) == 2
        assert len(index.occurrences(MUL_UV)) == 1

    def test_matches_collect_expr_classes_population(self):
        func = as_ssa(chain_func())
        index = OccurrenceIndex.build(func)
        assert [c.key for c in index.classes_by_rank()] == [
            c.key for c in collect_expr_classes(func)
        ]

    def test_remove_statement_drops_key_when_last(self):
        func = chain_func()
        index = OccurrenceIndex.build(func)
        (occ,) = index.occurrences(MUL_UV)
        index.remove_statement(occ.stmt)
        assert MUL_UV not in index.keys()
        assert index.occurrences(MUL_UV) == []

    def test_remove_unindexed_statement_is_noop(self):
        func = chain_func()
        index = OccurrenceIndex.build(func)
        index.remove_statement(object())
        assert len(index.keys()) == 4


class TestRanks:
    def test_chain_ranks_are_nesting_depths(self):
        index = OccurrenceIndex.build(chain_func())
        assert index.rank(ADD_AB) == 0
        assert index.rank(ADD_XC) == 1
        assert index.rank(ADD_YC) == 1
        assert index.rank(MUL_UV) == 2

    def test_classes_by_rank_orders_by_rank_then_first_seen(self):
        index = OccurrenceIndex.build(chain_func())
        assert [c.key for c in index.classes_by_rank()] == [
            ADD_AB, ADD_XC, ADD_YC, MUL_UV,
        ]

    def test_def_cycles_stay_finite(self):
        b = FunctionBuilder("cyc", params=["n"])
        b.block("entry")
        b.copy("i", 0)
        b.assign("i", "add", "i", 1)  # i depends on its own class
        b.assign("j", "add", "i", 2)
        b.ret("j")
        index = OccurrenceIndex.build(b.build())
        # The cyclic back edge is cut at depth 0: the self-recursive
        # class ranks 1, a class over it ranks 2 — finite, not infinite.
        assert index.rank(("add", ("var", "i"), ("const", 1))) == 1
        assert index.rank(("add", ("var", "i"), ("const", 2))) == 2


class TestRewriteUses:
    def test_rewrites_and_rekeys_users(self):
        func = chain_func()
        index = OccurrenceIndex.build(func)
        # Pretend a+b's result x now lives in temp t: x's users re-key.
        dirty = index.rewrite_uses({("x", None): Var("t")})
        assert dirty == {("add", ("var", "t"), ("var", "c"))}
        assert ADD_XC not in index.keys()
        assert len(index.occurrences(("add", ("var", "t"), ("var", "c")))) == 1

    def test_trapping_users_are_never_rewritten(self):
        b = FunctionBuilder("trap", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.assign("q", "div", "x", "b")  # trapping user of x
        b.ret("q")
        index = OccurrenceIndex.build(b.build())
        copies = {("x", None): Var("t")}
        # The div keeps its lexical key (the safety oracle's signature)…
        assert index.rewrite_uses(copies) == set()
        assert ("div", ("var", "x"), ("var", "b")) in index.keys()
        # …and does not count as pending work for the fixpoint flag.
        assert not index.has_pending_uses(copies)

    def test_has_pending_uses_sees_nontrapping_users(self):
        index = OccurrenceIndex.build(chain_func())
        assert index.has_pending_uses({("x", None): Var("t")})
        assert not index.has_pending_uses({("zzz", None): Var("t")})


class TestEngine:
    def test_rounds_must_be_positive(self):
        func = as_ssa(chain_func())
        with pytest.raises(ValueError, match="rounds"):
            run_ssapre(func, rounds=0)

    def test_round_one_is_the_one_shot_driver(self):
        default = as_ssa(chain_func())
        explicit = as_ssa(chain_func())
        run_ssapre(default)
        run_ssapre(explicit, rounds=1)
        assert format_function(default) == format_function(explicit)

    def test_second_order_redundancy_needs_round_two(self):
        args = [2, 3, 4]
        costs = {}
        for rounds in (1, 2, 3):
            func = as_ssa(chain_func())
            result = run_ssapre(func, validate=True, rounds=rounds)
            run = run_function(func, args)
            costs[rounds] = run.dynamic_cost
            if rounds == 1:
                assert not result.fixpoint  # x+c/y+c exposed, not chased
            if rounds == 3:
                assert result.fixpoint
                assert result.rounds_run <= 3
        reference = run_function(chain_func(), args)
        assert run.observable() == reference.observable()
        # One shot removes the second a+b (7 ops -> 6 executed); round 2
        # additionally collapses x+c/y+c into one class.
        assert costs[1] > costs[2]
        assert costs[2] == costs[3]

    def test_round_stats_shape(self):
        func = as_ssa(chain_func())
        result = run_ssapre(func, rounds=DEFAULT_ITERATIVE_ROUNDS)
        assert result.rounds_run >= 2
        for number, stats in enumerate(result.round_stats, start=1):
            assert stats.number == number
            assert stats.classes > 0
            assert set(stats.to_dict()) == {
                "round", "classes", "changed", "insertions", "reloads",
            }

    def test_no_change_leaves_code_generation_alone(self):
        func = as_ssa(no_redundancy_func())
        before = func.code_generation
        result = run_ssapre(func, rounds=DEFAULT_ITERATIVE_ROUNDS)
        assert result.classes_changed == 0
        assert func.code_generation == before

    def test_cfg_mutation_is_rejected(self):
        func = as_ssa(chain_func())

        def mutating_round(f, work):
            f.mark_cfg_mutated()
            return []

        with pytest.raises(AssertionError, match="mutated the CFG"):
            run_rounds(func, PREResult(algorithm="test"), mutating_round)
