"""MC-SSAPRE step 8 — WillBeAvail from the min-cut result (paper Figure 7).

``will_be_avail(Φ)`` must mean: after performing the insertions chosen by
the cut, the expression is fully available at the Φ (Lemma 8).  It is
computed by forward propagation of *un*availability: every Φ starts
optimistically available; a Φ with a ⊥ operand that received no insertion
is reset, and resets propagate forward through operands that neither cross
a real occurrence (``has_real_use``) nor received an insertion.

Computing this attribute (plus the operand ``insert`` flags set in step 7)
is exactly what lets steps 9 and 10 reuse SSAPRE's Finalize and CodeMotion
unchanged.
"""

from __future__ import annotations

from repro.core.ssapre.frg import FRG, PhiNode


def compute_will_be_avail_from_cut(frg: FRG) -> None:
    """The Compute_will_be_avail / Reset_will_be_avail pair of Figure 7."""
    users_via_plain_operand: dict[int, list[PhiNode]] = {}
    for phi in frg.phis:
        for operand in phi.operands:
            if (
                isinstance(operand.def_node, PhiNode)
                and not operand.has_real_use
                and not operand.insert
            ):
                users_via_plain_operand.setdefault(
                    id(operand.def_node), []
                ).append(phi)

    def reset(phi: PhiNode) -> None:
        stack = [phi]
        while stack:
            current = stack.pop()
            if not current.will_be_avail:
                continue
            current.will_be_avail = False
            stack.extend(users_via_plain_operand.get(id(current), ()))

    for phi in frg.phis:
        phi.will_be_avail = True
    for phi in frg.phis:
        if phi.will_be_avail and any(
            operand.is_bottom and not operand.insert for operand in phi.operands
        ):
            reset(phi)
