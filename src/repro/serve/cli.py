"""Command-line entry: ``python -m repro.serve``.

Two subcommands:

``serve``
    Run a :class:`~repro.serve.server.CompileService` over a JSON-lines
    protocol: one request object per input line, one response object per
    output line (schema in ``docs/SERVING.md``).  By default the
    transport is stdin/stdout (pipe-friendly, trivially scriptable);
    ``--port`` switches to a threaded TCP server speaking the same
    line protocol, one connection per client.

``load``
    Build the deterministic load-generator workload
    (:mod:`repro.serve.loadgen`), drive it through an in-process service
    with ``--jobs`` client threads, and gate on the results: non-zero
    exit when any answer mismatched the reference interpreter, any
    request errored, or the hit rate fell below ``--min-hit-rate``.
    This is the CI serving smoke job.

Cluster mode (docs/SERVING.md, "Cluster"): ``serve --cluster N`` runs
the sharded cluster — N worker processes behind the asyncio front end —
instead of an in-process service, and ``load --cluster N`` stands up
that cluster, drives the workload over TCP (closed loop, or open loop
with ``--open-loop --rps R``), and gates on zero mismatches, the
exactly-one-compile-per-cold-key invariant (merged per-worker
``compiles`` == the workload's unique pool), and ``--p99-max``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
from pathlib import Path

from repro.serve.adapt import AdaptConfig
from repro.serve.adapt.drift import (
    DEFAULT_MIN_SAMPLES,
    DEFAULT_THRESHOLD,
    DRIFT_METRICS,
)
from repro.serve.adapt.tier import DEFAULT_WARMUP
from repro.serve.loadgen import (
    DEFAULT_MAX_CONNS,
    DEFAULT_VARIANTS,
    TCPServiceClient,
    WorkloadSpec,
    build_workload,
    run_load,
    run_open_loop,
)
from repro.serve.server import (
    DEFAULT_TIMEOUT_S,
    CompileRequest,
    CompileService,
)
from repro.serve.store import ArtifactStore


def _make_service(args: argparse.Namespace) -> CompileService:
    if args.cache_dir:
        store = ArtifactStore.with_disk(
            args.cache_dir, max_entries=args.max_entries
        )
    else:
        store = ArtifactStore()
        store.memory.max_entries = args.max_entries
    adapt = None
    if getattr(args, "adapt", False):
        adapt = AdaptConfig(
            warmup=args.warmup,
            metric=args.drift_metric,
            threshold=args.drift_threshold,
            min_samples=args.min_samples,
        )
    return CompileService(
        store,
        max_workers=args.workers,
        timeout_s=args.timeout,
        adapt=adapt,
        lock_dir=getattr(args, "lock_dir", None),
        plan_cache=getattr(args, "plan_cache", 0),
    )


class _MetricsDumper:
    """Background thread writing periodic metrics snapshots to one path.

    Every snapshot is a full, self-consistent JSON document written via
    temp file + :func:`os.replace`, so a reader polling the path can
    never observe a torn write.
    """

    def __init__(
        self, service: CompileService, path: str, interval_s: float
    ) -> None:
        self.service = service
        self.path = Path(path)
        self.interval_s = max(0.05, interval_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-dump", daemon=True
        )

    def start(self) -> "_MetricsDumper":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.dump()  # final snapshot, so short runs still leave one

    def dump(self) -> None:
        payload = json.dumps(self.service.metrics.to_dict(), indent=2) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=f".{self.path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.dump()


def _handle_line(service: CompileService, line: str) -> dict:
    """One protocol exchange: JSON request line in, response dict out."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"status": "error", "error": f"bad JSON: {exc}"}
    if isinstance(data, dict) and data.get("cmd") == "metrics":
        return service.metrics.to_dict()
    if isinstance(data, dict) and data.get("cmd") == "ping":
        # Liveness probe for the cluster supervisor: cheap, no service
        # state touched, so a wedged compile pool still answers.
        return {"status": "ok", "pong": True}
    try:
        request = CompileRequest.from_dict(data)
    except (TypeError, ValueError) as exc:
        return {"status": "error", "error": str(exc)}
    return service.handle(request).to_dict()


def _serve_stdio(service: CompileService) -> None:
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        print(json.dumps(_handle_line(service, line)), flush=True)


def _serve_tcp(service: CompileService, host: str, port: int) -> None:
    import socketserver

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                payload = json.dumps(_handle_line(service, line)) + "\n"
                self.wfile.write(payload.encode())
                self.wfile.flush()

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as server:
        actual_port = server.server_address[1]
        print(f"serving on {host}:{actual_port}", file=sys.stderr, flush=True)
        server.serve_forever()


def _write_metrics(service: CompileService, path: str | None) -> None:
    if path:
        Path(path).write_text(
            json.dumps(service.metrics.to_dict(), indent=2) + "\n"
        )


class _ClusterMetricsProxy:
    """Duck-types the ``service.metrics`` surface the dumper and the
    final-snapshot writer read, backed by the cluster's merged view."""

    def __init__(self, cluster) -> None:
        self.metrics = self
        self._cluster = cluster

    def to_dict(self) -> dict:
        return self._cluster.merged_metrics()


def _start_cluster(args: argparse.Namespace, n_workers: int):
    from repro.serve.cluster import Cluster
    from repro.serve.cluster.frontend import DEFAULT_PLAN_CACHE

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-cluster-cache-")
    lock_dir = args.lock_dir or tempfile.mkdtemp(prefix="repro-cluster-locks-")
    return Cluster(
        n_workers,
        cache_dir=cache_dir,
        lock_dir=lock_dir,
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", None) or 0,
        plan_cache=args.plan_cache or DEFAULT_PLAN_CACHE,
        worker_threads=args.workers,
    ).start()


def _serve_cluster(args: argparse.Namespace) -> int:
    cluster = _start_cluster(args, args.cluster)
    dumper = None
    try:
        print(
            f"cluster serving on {args.host}:{cluster.port} "
            f"({args.cluster} workers)",
            file=sys.stderr, flush=True,
        )
        proxy = _ClusterMetricsProxy(cluster)
        if args.metrics_dump:
            dumper = _MetricsDumper(
                proxy, args.metrics_dump, args.metrics_dump_every
            ).start()
        try:
            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            pass
        if args.metrics_out:
            Path(args.metrics_out).write_text(
                json.dumps(cluster.merged_metrics(), indent=2) + "\n"
            )
    finally:
        if dumper is not None:
            dumper.stop()
        cluster.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.cluster:
        return _serve_cluster(args)
    service = _make_service(args)
    dumper = None
    if args.metrics_dump:
        dumper = _MetricsDumper(
            service, args.metrics_dump, args.metrics_dump_every
        ).start()
    try:
        if args.port is not None:
            _serve_tcp(service, args.host, args.port)
        else:
            _serve_stdio(service)
    except KeyboardInterrupt:
        pass
    finally:
        if dumper is not None:
            dumper.stop()
        _write_metrics(service, args.metrics_out)
        service.close()
    return 0


def _post_drift_verification(service, workload) -> tuple[int, int]:
    """Replay the pool once after draining background recompiles.

    Every response must still match the reference interpreter — this is
    the "post-swap answers are bit-identical" check, run against
    whichever artifacts the hot swaps left bound.  Returns
    ``(verified, mismatches)``.
    """
    unique = workload.spec.unique
    verified = mismatches = 0
    for request, expected in zip(
        workload.requests[:unique], workload.expected[:unique]
    ):
        response = service.handle(request)
        verified += 1
        if response.status != "ok" or response.observable() != expected:
            mismatches += 1
    return verified, mismatches


def _load_cluster(args: argparse.Namespace, spec, workload) -> int:
    """Drive the workload against a live cluster and gate on it."""
    from repro.serve.cluster import race_cold_key

    if args.open_loop and not args.rps:
        print("--open-loop requires --rps", file=sys.stderr)
        return 2
    cluster = _start_cluster(args, args.cluster)
    try:
        race = None
        if args.race_check:
            # The cross-process cold-key race: the same cold request
            # fired at every worker port simultaneously (bypassing the
            # ring, which would collapse the race onto one worker).
            # Exactly one compile must land cluster-wide.
            before = cluster.merged_metrics()["counters"]
            first = workload.requests[0]
            answers = race_cold_key(
                cluster.worker_ports(),
                {
                    "source": first.source,
                    "args": list(first.args),
                    "variant": first.variant,
                    "rounds": first.rounds,
                    "train_args": (
                        list(first.train_args)
                        if first.train_args is not None else None
                    ),
                },
            )
            after = cluster.merged_metrics()["counters"]
            observables = {
                (a.get("return_value"), tuple(a.get("output") or ()))
                for a in answers
            }
            race = {
                "clients": len(answers),
                "all_ok": all(a.get("status") == "ok" for a in answers),
                "agreed": len(observables) == 1,
                "compiles": after["compiles"] - before["compiles"],
                "rehydrates": (
                    after["lock_rehydrates"] - before["lock_rehydrates"]
                ),
            }
        if args.warm_pool:
            # Prime every unique key once (the cold compiles) so the
            # measured phase sees steady-state serving; without this an
            # open-loop run charges the whole cold burst's queueing
            # delay to the early requests' CO-free latency.
            with TCPServiceClient(cluster.host, cluster.port) as client:
                for request in workload.requests[:spec.unique]:
                    client.handle(request)
        if args.open_loop:
            report = run_open_loop(
                cluster.host, cluster.port, workload,
                rps=args.rps, seed=args.seed, max_conns=args.max_conns,
                timeout=args.timeout,
            )
        else:
            with TCPServiceClient(cluster.host, cluster.port) as client:
                report, _responses = run_load(client, workload, jobs=args.jobs)
        merged = cluster.merged_metrics()
        if args.metrics_out:
            Path(args.metrics_out).write_text(
                json.dumps(merged, indent=2) + "\n"
            )
    finally:
        cluster.stop()

    payload = report.to_dict()
    payload["cluster"] = merged["cluster"]
    payload["merged_counters"] = merged["counters"]
    if race is not None:
        payload["race"] = race
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        p99 = report.latency.get("p99_s", 0.0)
        rps = getattr(report, "achieved_rps", None) or report.rps
        print(
            f"cluster load: {report.requests} request(s), {report.ok} ok, "
            f"{report.errors} error(s), {report.mismatches} mismatch(es)"
        )
        print(
            f"cluster load: {rps:.1f} req/s, p99 {p99 * 1000:.1f}ms, "
            f"compiles {merged['counters']['compiles']} "
            f"(pool of {spec.unique})"
        )
        if race is not None:
            print(
                f"cluster load: cold race compiles={race['compiles']} "
                f"rehydrates={race['rehydrates']} agreed={race['agreed']}"
            )

    failures = []
    if report.mismatches:
        failures.append(f"{report.mismatches} mismatch(es) vs reference")
    if report.errors:
        failures.append(f"{report.errors} error response(s)")
    if report.timeouts:
        failures.append(f"{report.timeouts} timeout(s)")
    # Exactly one compile per cold key, cluster-wide: ring routing plus
    # cross-process single-flight must never duplicate a build.  The
    # race check adds one extra key compiled outside the pool count
    # only if request[0]'s key was re-raced; it is pool key 0, so the
    # total stays spec.unique.
    compiles = merged["counters"]["compiles"]
    if compiles != spec.unique:
        failures.append(
            f"{compiles} compile(s) across workers for {spec.unique} "
            "unique key(s)"
        )
    if args.p99_max and report.latency.get("p99_s", 0.0) > args.p99_max:
        failures.append(
            f"p99 {report.latency['p99_s']:.4f}s > bound {args.p99_max:g}s"
        )
    if race is not None:
        if not race["all_ok"] or not race["agreed"]:
            failures.append("cold-key race answers disagreed")
        if race["compiles"] != 1:
            failures.append(
                f"cold-key race compiled {race['compiles']} time(s), not 1"
            )
    if failures:
        print("CLUSTER GATE FAILURE: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        requests=args.requests,
        unique=args.unique,
        variants=tuple(args.variants.split(",")),
        seed=args.seed,
        rounds=args.rounds,
        drift_at=args.drift_at,
    )
    workload = build_workload(spec)
    if args.cluster:
        return _load_cluster(args, spec, workload)
    service = _make_service(args)
    dumper = None
    if args.metrics_dump:
        dumper = _MetricsDumper(
            service, args.metrics_dump, args.metrics_dump_every
        ).start()
    adaptation: dict | None = None
    try:
        report, _responses = run_load(service, workload, jobs=args.jobs)
        if service.adapt is not None:
            # Let in-flight promotions/recompiles land, then prove the
            # swapped-in artifacts still answer exactly like the
            # reference interpreter.
            drained = service.adapt.drain(timeout=args.timeout)
            verified, swap_mismatches = _post_drift_verification(
                service, workload
            )
            report.mismatches += swap_mismatches
            counters = service.metrics.to_dict()["counters"]
            adaptation = {
                "drained": drained,
                "post_swap_verified": verified,
                "post_swap_mismatches": swap_mismatches,
                "live_samples": counters["live_samples"],
                "tier_interp": counters["tier_interp"],
                "drift_events": counters["drift_events"],
                "recompiles": counters["recompiles"],
                "hot_swaps": counters["hot_swaps"],
                "tier_promotions": counters["tier_promotions"],
                "tier_demotions": counters["tier_demotions"],
                "rollbacks": counters["rollbacks"],
                "keys": service.adapt.describe(),
            }
            report.metrics = service.metrics.to_dict()
    finally:
        if dumper is not None:
            dumper.stop()
        _write_metrics(service, args.metrics_out)
        service.close()

    payload = report.to_dict()
    if adaptation is not None:
        payload["adaptation"] = adaptation
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"load: {report.requests} request(s), {report.ok} ok, "
            f"{report.errors} error(s), {report.timeouts} timeout(s), "
            f"{report.degraded} degraded"
        )
        print(
            f"load: hit rate {report.hit_rate:.3f} "
            f"(workload admits {report.expected_hit_rate:.3f}), "
            f"{report.rps:.1f} req/s over {report.wall_s:.3f}s"
        )
        served = ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.served_by.items())
        )
        print(f"load: served_by {served}")
        print(f"load: mismatches {report.mismatches}")
        if adaptation is not None:
            print(
                "load: adaptation promotions="
                f"{adaptation['tier_promotions']} "
                f"drift_events={adaptation['drift_events']} "
                f"hot_swaps={adaptation['hot_swaps']} "
                f"post_swap_mismatches={adaptation['post_swap_mismatches']}"
            )

    failures = []
    if report.mismatches:
        failures.append(f"{report.mismatches} mismatch(es) vs reference")
    if report.errors:
        failures.append(f"{report.errors} error response(s)")
    if report.hit_rate < args.min_hit_rate:
        failures.append(
            f"hit rate {report.hit_rate:.3f} < required {args.min_hit_rate:.3f}"
        )
    if adaptation is not None:
        if not adaptation["drained"]:
            failures.append("background recompiles did not drain")
        if adaptation["hot_swaps"] < args.min_hot_swaps:
            failures.append(
                f"hot swaps {adaptation['hot_swaps']} < required "
                f"{args.min_hot_swaps}"
            )
        if adaptation["tier_promotions"] < args.min_promotions:
            failures.append(
                f"tier promotions {adaptation['tier_promotions']} < required "
                f"{args.min_promotions}"
            )
    elif args.min_hot_swaps or args.min_promotions:
        failures.append("--min-hot-swaps/--min-promotions require --adapt")
    if failures:
        print("LOAD GATE FAILURE: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the on-disk artifact tier rooted at DIR",
    )
    parser.add_argument(
        "--max-entries", type=int, default=256, metavar="N",
        help="in-memory LRU capacity (default 256)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="compile worker threads (default 4)",
    )
    parser.add_argument(
        "--timeout", type=float, default=DEFAULT_TIMEOUT_S, metavar="S",
        help=f"per-request deadline in seconds (default {DEFAULT_TIMEOUT_S:g})",
    )
    parser.add_argument(
        "--lock-dir", default=None, metavar="DIR",
        help=(
            "enable cross-process single-flight: per-key flock build "
            "locks under DIR (share it, and --cache-dir, across workers)"
        ),
    )
    parser.add_argument(
        "--plan-cache", type=int, default=0, metavar="N",
        help=(
            "memoise up to N request plans (parsed/prepared/keyed "
            "programs) per service; 0 disables (default)"
        ),
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final metrics snapshot as JSON to PATH",
    )
    parser.add_argument(
        "--metrics-dump", default=None, metavar="PATH",
        help=(
            "periodically write full metrics snapshots to PATH "
            "(atomic replace; see --metrics-dump-every)"
        ),
    )
    parser.add_argument(
        "--metrics-dump-every", type=float, default=5.0, metavar="S",
        help="interval between --metrics-dump snapshots (default 5s)",
    )
    parser.add_argument(
        "--adapt", action="store_true",
        help=(
            "enable the online re-optimisation tier: live profiles, "
            "tiered execution, drift-triggered recompiles + hot swaps"
        ),
    )
    parser.add_argument(
        "--warmup", type=int, default=DEFAULT_WARMUP, metavar="N",
        help=(
            "interpreter runs before a key is promoted to a compiled "
            f"artifact (default {DEFAULT_WARMUP}; needs --adapt)"
        ),
    )
    parser.add_argument(
        "--drift-metric", choices=DRIFT_METRICS, default="l1",
        help="drift divergence metric (default l1; needs --adapt)",
    )
    parser.add_argument(
        "--drift-threshold", type=float, default=DEFAULT_THRESHOLD,
        metavar="X",
        help=(
            "drift score in (0,1] that triggers a recompile "
            f"(default {DEFAULT_THRESHOLD:g}; needs --adapt)"
        ),
    )
    parser.add_argument(
        "--min-samples", type=int, default=DEFAULT_MIN_SAMPLES, metavar="N",
        help=(
            "live runs folded before the drift detector may fire "
            f"(default {DEFAULT_MIN_SAMPLES}; needs --adapt)"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Content-addressed compile-and-run service over the PRE "
            "pipeline, plus its load-generator driver."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="serve JSON-lines requests from stdin or a TCP port"
    )
    _add_service_args(serve)
    serve.add_argument(
        "--port", type=int, default=None, metavar="P",
        help="listen on TCP port P instead of stdin (0 = ephemeral)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="H",
        help="bind address for --port (default 127.0.0.1)",
    )
    serve.add_argument(
        "--cluster", type=int, default=0, metavar="N",
        help=(
            "serve through the sharded cluster: N worker processes "
            "behind the consistent-hash TCP front end (0 = in-process)"
        ),
    )
    serve.set_defaults(func=cmd_serve)

    load = sub.add_parser(
        "load", help="run the deterministic serving workload and gate on it"
    )
    _add_service_args(load)
    load.add_argument(
        "--requests", type=int, default=100, metavar="N",
        help="total requests to issue (default 100)",
    )
    load.add_argument(
        "--unique", type=int, default=6, metavar="N",
        help="distinct (program, config) pool size (default 6)",
    )
    load.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent client threads (default 1)",
    )
    load.add_argument(
        "--variants", default=",".join(DEFAULT_VARIANTS), metavar="V1,V2",
        help=f"variants to cycle over (default {','.join(DEFAULT_VARIANTS)})",
    )
    load.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base generator seed (default 0)",
    )
    load.add_argument(
        "--rounds", type=int, default=1, metavar="N",
        help="PRE rounds per compile (default 1)",
    )
    load.add_argument(
        "--min-hit-rate", type=float, default=0.0, metavar="X",
        help="fail unless the final hit rate reaches X (default 0.0)",
    )
    load.add_argument(
        "--drift-at", type=int, default=None, metavar="K",
        help=(
            "phase-shift the workload: requests >= K draw from an "
            "independent input distribution (drives drift end to end)"
        ),
    )
    load.add_argument(
        "--min-hot-swaps", type=int, default=0, metavar="N",
        help="fail unless >= N drift-triggered hot swaps happened (needs --adapt)",
    )
    load.add_argument(
        "--min-promotions", type=int, default=0, metavar="N",
        help="fail unless >= N interp->compiled promotions happened (needs --adapt)",
    )
    load.add_argument(
        "--json", action="store_true",
        help="print the load report as JSON instead of a summary",
    )
    load.add_argument(
        "--cluster", type=int, default=0, metavar="N",
        help=(
            "drive the workload against a live N-worker cluster over "
            "TCP instead of an in-process service"
        ),
    )
    load.add_argument(
        "--open-loop", action="store_true",
        help=(
            "open-loop mode: arrivals follow a seeded Poisson schedule "
            "at --rps, independent of server speed (needs --cluster)"
        ),
    )
    load.add_argument(
        "--rps", type=float, default=0.0, metavar="R",
        help="offered request rate for --open-loop",
    )
    load.add_argument(
        "--p99-max", type=float, default=0.0, metavar="S",
        help="fail if p99 latency exceeds S seconds (0 = no gate)",
    )
    load.add_argument(
        "--max-conns", type=int, default=DEFAULT_MAX_CONNS, metavar="N",
        help=(
            "open-loop connection-pool size "
            f"(default {DEFAULT_MAX_CONNS})"
        ),
    )
    load.add_argument(
        "--warm-pool", action="store_true",
        help=(
            "prime every unique key once before the measured load, so "
            "latency gates see steady-state serving (needs --cluster)"
        ),
    )
    load.add_argument(
        "--race-check", action="store_true",
        help=(
            "before the load, fire the first cold request at every "
            "worker simultaneously and require exactly one compile "
            "(needs --cluster)"
        ),
    )
    load.set_defaults(func=cmd_load)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
