"""Tests for natural-loop discovery."""

from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import LoopForest
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import CFG


def forest_of(func) -> LoopForest:
    cfg = CFG(func)
    return LoopForest(cfg, DominatorTree(cfg))


def build_nested_loops():
    b = FunctionBuilder("nest", params=["n"])
    b.block("entry")
    b.copy("i", 0)
    b.jump("outer")
    b.block("outer")
    b.assign("ci", "lt", "i", "n")
    b.branch("ci", "inner_pre", "done")
    b.block("inner_pre")
    b.copy("j", 0)
    b.jump("inner")
    b.block("inner")
    b.assign("cj", "lt", "j", "n")
    b.branch("cj", "inner_body", "outer_latch")
    b.block("inner_body")
    b.assign("j", "add", "j", 1)
    b.jump("inner")
    b.block("outer_latch")
    b.assign("i", "add", "i", 1)
    b.jump("outer")
    b.block("done")
    b.ret("i")
    return b.build()


class TestSimpleLoop:
    def test_single_loop_found(self, while_loop):
        forest = forest_of(while_loop)
        assert len(forest) == 1
        loop = forest.loop_of_header("head")
        assert loop is not None
        assert loop.blocks == {"head", "body"}
        assert loop.latches == ["body"]

    def test_entry_preds_and_exits(self, while_loop):
        forest = forest_of(while_loop)
        loop = forest.loop_of_header("head")
        cfg = CFG(while_loop)
        assert loop.entry_preds(cfg) == ["entry"]
        assert loop.exit_edges(cfg) == [("head", "done")]

    def test_no_loops_in_diamond(self, diamond):
        assert len(forest_of(diamond)) == 0


class TestNesting:
    def test_two_loops_found(self):
        forest = forest_of(build_nested_loops())
        assert len(forest) == 2

    def test_inner_nested_in_outer(self):
        forest = forest_of(build_nested_loops())
        inner = forest.loop_of_header("inner")
        outer = forest.loop_of_header("outer")
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.depth == 2
        assert outer.depth == 1

    def test_inner_blocks_subset_of_outer(self):
        forest = forest_of(build_nested_loops())
        inner = forest.loop_of_header("inner")
        outer = forest.loop_of_header("outer")
        assert inner.blocks < outer.blocks

    def test_innermost_containing(self):
        forest = forest_of(build_nested_loops())
        assert forest.innermost_containing("inner_body").header == "inner"
        assert forest.innermost_containing("outer_latch").header == "outer"
        assert forest.innermost_containing("entry") is None

    def test_loop_depth_queries(self):
        forest = forest_of(build_nested_loops())
        assert forest.loop_depth("inner_body") == 2
        assert forest.loop_depth("outer_latch") == 1
        assert forest.loop_depth("done") == 0


def test_self_loop():
    b = FunctionBuilder("f", params=["n"])
    b.block("entry")
    b.jump("spin")
    b.block("spin")
    b.assign("n", "sub", "n", 1)
    b.assign("c", "gt", "n", 0)
    b.branch("c", "spin", "out")
    b.block("out")
    b.ret("n")
    forest = forest_of(b.build())
    loop = forest.loop_of_header("spin")
    assert loop.blocks == {"spin"}
    assert loop.latches == ["spin"]
