"""Fluent helper for constructing IR functions in Python code.

Tests, examples and the synthetic workload generator all build programs
through this builder rather than poking blocks directly; it keeps the
construction code close to the textual IR in shape::

    b = FunctionBuilder("max3", params=["x", "y", "z"])
    entry = b.block("entry")
    b.assign("m", "max", "x", "y")
    b.assign("m2", "max", "m", "z")
    b.ret("m2")
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Output,
    Phi,
    Return,
    Store,
    UnaryOp,
)
from repro.ir.ops import BINARY_OPS, UNARY_OPS
from repro.ir.values import Const, Operand, Var


def as_operand(value: "str | int | Operand") -> Operand:
    """Coerce a Python value to an IR operand.

    Strings become (unversioned) variables, ints become constants, and
    operands pass through unchanged.
    """
    if isinstance(value, (Const, Var)):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot convert {value!r} to an operand")


def as_var(value: "str | Var") -> Var:
    if isinstance(value, Var):
        return value
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot convert {value!r} to a variable")


class FunctionBuilder:
    """Builds a :class:`Function` one block at a time.

    All statement-appending methods target the *current* block (the most
    recent :meth:`block` call).  Blocks may be created eagerly with
    :meth:`declare` and filled later, which branch-before-target
    construction needs.
    """

    def __init__(self, name: str, params: list[str] | None = None) -> None:
        self.func = Function(name, [Var(p) for p in (params or [])])
        self._current: BasicBlock | None = None

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def declare(self, label: str) -> str:
        """Create a block without making it current."""
        self.func.add_block(label)
        return label

    def block(self, label: str | None = None) -> str:
        """Create (or switch to a previously declared) block."""
        if label is not None and label in self.func.blocks:
            self._current = self.func.blocks[label]
            return label
        new = self.func.add_block(label)
        self._current = new
        return new.label

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise ValueError("no current block; call block() first")
        return self._current

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def assign(self, target: "str | Var", op: str, *operands) -> Var:
        """``target = op operands...`` — computation (1–2 operands)."""
        tvar = as_var(target)
        ops = [as_operand(o) for o in operands]
        if op in BINARY_OPS:
            if len(ops) != 2:
                raise ValueError(f"{op} expects 2 operands, got {len(ops)}")
            rhs = BinOp(op, ops[0], ops[1])
        elif op in UNARY_OPS:
            if len(ops) != 1:
                raise ValueError(f"{op} expects 1 operand, got {len(ops)}")
            rhs = UnaryOp(op, ops[0])
        else:
            raise ValueError(f"unknown operator {op!r}")
        self.current.body.append(Assign(tvar, rhs))
        return tvar

    def copy(self, target: "str | Var", source) -> Var:
        """``target = source`` — a plain copy."""
        tvar = as_var(target)
        self.current.body.append(Assign(tvar, as_operand(source)))
        return tvar

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def array(self, name: str, length: int) -> str:
        """Declare array *name* with *length* elements on the function."""
        self.func.declare_array(name, length)
        return name

    def load(self, target: "str | Var", array: str, index) -> Var:
        """``target = load array, index``."""
        tvar = as_var(target)
        self.current.body.append(Assign(tvar, Load(array, as_operand(index))))
        return tvar

    def store(self, array: str, index, value) -> None:
        """``store array, index, value``."""
        self.current.body.append(
            Store(array, as_operand(index), as_operand(value))
        )

    def output(self, value) -> None:
        self.current.body.append(Output(as_operand(value)))

    def phi(self, target: "str | Var", **args) -> Var:
        """``target = phi(label=operand, ...)`` (SSA programs only)."""
        tvar = as_var(target)
        phi = Phi(tvar, {label: as_operand(v) for label, v in args.items()})
        self.current.phis.append(phi)
        return tvar

    # ------------------------------------------------------------------
    # Terminators
    # ------------------------------------------------------------------
    def jump(self, target: str) -> None:
        self.current.terminator = Jump(target)

    def branch(self, cond, true_target: str, false_target: str) -> None:
        self.current.terminator = CondJump(as_operand(cond), true_target, false_target)

    def ret(self, value=None) -> None:
        self.current.terminator = Return(None if value is None else as_operand(value))

    # ------------------------------------------------------------------
    def build(self) -> Function:
        """Finish construction and return the function."""
        return self.func
