"""Property-based invariants of FRG construction on random programs.

These are the structural facts the correctness proofs lean on (paper
Section 3.2 and Kennedy et al.'s Lemmas); each is checked on arbitrary
generated programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program
from repro.core.ssapre.frg import PhiNode, RealOcc, build_frgs
from repro.ir.transforms import split_critical_edges
from repro.ssa.construct import construct_ssa


def frgs_for(seed: int):
    spec = ProgramSpec(name="prop", seed=seed, max_depth=2)
    func = generate_program(spec).func
    split_critical_edges(func)
    construct_ssa(func)
    return build_frgs(func)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_same_version_same_operand_values(seed):
    """Two occurrences with one version compute the same value: their
    SSA operand tuples must be identical (the definition of h-versions)."""
    for frg in frgs_for(seed).values():
        by_version = {}
        for occ in frg.real_occs:
            assert occ.version > 0
            prior = by_version.setdefault(occ.version, occ.operand_values)
            assert prior == occ.operand_values, (frg.expr, occ)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_defs_dominate_uses(seed):
    """An occurrence's defining node must dominate it."""
    for frg in frgs_for(seed).values():
        for occ in frg.real_occs:
            definer = occ.def_node
            if definer is not None:
                assert frg.domtree.dominates(definer.label, occ.label), (
                    frg.expr,
                    occ,
                )
            if occ.crossing_real is not None:
                assert frg.domtree.dominates(
                    occ.crossing_real.label, occ.label
                )


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_phi_operand_defs_dominate_pred_ends(seed):
    for frg in frgs_for(seed).values():
        for phi in frg.phis:
            for operand in phi.operands:
                if operand.def_node is not None:
                    assert frg.domtree.dominates(
                        operand.def_node.label, operand.pred
                    ), (frg.expr, phi, operand)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_rg_excluded_implies_dominating_real(seed):
    """rg_excluded marks exactly the occurrences dominated by a real
    occurrence of their own version (MC-SSAPRE step 2)."""
    for frg in frgs_for(seed).values():
        for occ in frg.real_occs:
            if occ.rg_excluded:
                crossing = occ.crossing_real
                assert crossing is not None and crossing is not occ
                assert crossing.version == occ.version
                assert frg.domtree.dominates(crossing.label, occ.label)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_has_real_use_consistency(seed):
    """A Φ operand's has_real_use flag must match its crossing link, and
    operands defined by real occurrences always carry a crossing."""
    for frg in frgs_for(seed).values():
        for phi in frg.phis:
            for operand in phi.operands:
                assert operand.has_real_use == (
                    operand.crossing_real is not None
                )
                if isinstance(operand.def_node, RealOcc):
                    assert operand.has_real_use


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_versions_unique_per_definer(seed):
    """Each h-version has exactly one definer (a Φ or a real occurrence)."""
    for frg in frgs_for(seed).values():
        definer_of: dict[int, object] = {}
        for phi in frg.phis:
            assert phi.version not in definer_of
            definer_of[phi.version] = phi
        for occ in frg.real_occs:
            if occ.def_node is None:
                existing = definer_of.setdefault(occ.version, occ)
                assert existing is occ
            else:
                expected = definer_of.get(occ.version)
                if expected is not None:
                    assert occ.def_node is expected


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_non_excluded_uses_of_phis_have_phi_defs(seed):
    """Reduced-graph sink candidates (non-excluded uses) are defined by
    Φs, never by real occurrences (those would be rg_excluded)."""
    for frg in frgs_for(seed).values():
        for occ in frg.real_occs:
            if not occ.rg_excluded and occ.def_node is not None:
                assert isinstance(occ.def_node, PhiNode), (frg.expr, occ)
