"""Textual rendering of IR functions.

The output is valid input for :mod:`repro.lang.parser`, so
``parse(format_function(f))`` round-trips (up to block ordering, which is
preserved).  Example::

    func main(n) {
    entry:
      i = 0
      jump head
    head:
      c = lt i, n
      br c, body, done
    body:
      i = add i, 1
      jump head
    done:
      ret i
    }
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    lines = [f"{block.label}:"]
    for phi in block.phis:
        lines.append(f"{indent}{phi}")
    for stmt in block.body:
        lines.append(f"{indent}{stmt}")
    lines.append(f"{indent}{block.terminator}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    params = ", ".join(str(p) for p in func.params)
    lines = [f"func {func.name}({params}) {{"]
    # Entry block first, then the rest in insertion order.
    ordered = list(func.blocks.values())
    if func.entry is not None:
        entry = func.blocks[func.entry]
        ordered.remove(entry)
        ordered.insert(0, entry)
    for block in ordered:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)
