"""Tiered-execution policy: interpret first, compile when warm.

A brand-new structural key has no live profile, so compiling it
immediately means optimising against whatever single training vector the
request happened to carry.  The tier policy instead runs the first
``warmup`` hits on the reference interpreter over the *prepared*
(unoptimised) function — profiling comes for free, no compile is paid at
all — and only then promotes the key to a compiled MC-SSAPRE artifact
built from the profile those runs accumulated.  The same
speculate-and-guard shape as a tracing JIT: speculate that the warmup
traffic predicts the future, guard with the drift detector, bail to the
interpreter (demotion) when the compiled tier stops being trustworthy.

The policy object is pure decision logic; per-key state (hit counts,
bindings) lives in the :class:`~repro.serve.adapt.manager.AdaptationManager`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Execution tiers, cheapest first.
TIER_INTERP = "interp"
TIER_COMPILED = "compiled"

#: Default interpreter runs before a key is promoted.
DEFAULT_WARMUP = 4

__all__ = [
    "TIER_INTERP",
    "TIER_COMPILED",
    "DEFAULT_WARMUP",
    "TierPolicy",
]


@dataclass(frozen=True)
class TierPolicy:
    """When to promote a key out of the interpreter tier."""

    #: Interpreter-served hits before promotion is scheduled.  0 means
    #: promote on the very first hit (compile eagerly, classic serving).
    warmup: int = DEFAULT_WARMUP

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")

    def should_promote(self, hits: int) -> bool:
        """True once *hits* interpreter runs have accumulated."""
        return hits >= self.warmup

    def tier_for(self, hits: int, bound: bool) -> str:
        """The tier a request is served on right now.

        ``bound`` is whether a compiled artifact binding is live for the
        key; promotion is asynchronous, so a key past its warmup still
        serves on the interpreter until the background build lands.
        """
        return TIER_COMPILED if bound else TIER_INTERP
