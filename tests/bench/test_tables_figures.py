"""Tests for the table/figure harness (on a small benchmark subset)."""

import pytest

from repro.bench.comparison import compare_workload, render_comparison
from repro.bench.figures import EFGSizeDistribution, figure9, figure11
from repro.bench.tables import Table, build_table
from repro.bench.workloads import load_workload


@pytest.fixture(scope="module")
def small_table() -> Table:
    return build_table(("mcf", "sjeng"), "test table")


class TestTables:
    def test_rows_and_costs(self, small_table):
        assert [r.benchmark for r in small_table.rows] == ["mcf", "sjeng"]
        for row in small_table.rows:
            assert row.a_cost > 0 and row.b_cost > 0 and row.c_cost > 0

    def test_speedup_formulas(self, small_table):
        row = small_table.rows[0]
        assert row.speedup_a == pytest.approx(
            (row.a_cost - row.c_cost) / row.a_cost
        )
        assert row.speedup_b == pytest.approx(
            (row.b_cost - row.c_cost) / row.b_cost
        )

    def test_render_contains_paper_columns(self, small_table):
        text = small_table.render()
        assert "A. SSAPRE" in text
        assert "B. SSAPREsp" in text
        assert "C. MC-SSAPRE" in text
        assert "(A-C)/A" in text and "(B-C)/B" in text
        assert "Average" in text

    def test_efg_sizes_recorded(self, small_table):
        assert any(row.efg_sizes for row in small_table.rows)


class TestFigures:
    def test_bar_chart_series_normalised(self, small_table):
        chart = figure9(small_table)
        for name, a, b, c in chart.series():
            assert a == 1.0
            assert b > 0 and c > 0

    def test_bar_chart_renders(self, small_table):
        text = figure9(small_table).render()
        assert "normalised" in text
        assert "mcf" in text

    def test_efg_distribution_statistics(self):
        dist = EFGSizeDistribution(sizes=[4, 4, 4, 5, 6, 10, 50])
        assert dist.minimum == 4
        assert dist.maximum == 50
        assert dist.share_at(4) == pytest.approx(3 / 7)
        assert dist.cumulative_at_most(10) == pytest.approx(6 / 7)
        assert dist.total == 7

    def test_efg_distribution_render(self):
        dist = EFGSizeDistribution(sizes=[4] * 10 + [7, 30, 120])
        text = dist.render()
        assert "min size: 4" in text
        assert "exactly 4 nodes" in text

    def test_figure11_collects_from_tables(self, small_table):
        dist = figure11([small_table])
        assert dist.total == sum(len(r.efg_sizes) for r in small_table.rows)
        if dist.total:
            assert dist.minimum >= 4


class TestComparison:
    def test_compare_workload(self):
        comparison = compare_workload(load_workload("mcf"), use_train_as_ref=True)
        # Both optimal: identical measured cost under the matching profile.
        assert comparison.mc_ssapre_cost == comparison.mc_pre_cost
        if comparison.efg_nodes and comparison.mcpre_nodes:
            assert min(comparison.efg_nodes) >= 4

    def test_render_comparison(self):
        comparison = compare_workload(load_workload("sjeng"))
        text = render_comparison([comparison])
        assert "sjeng" in text
        assert "effort ratio" in text


class TestParallelTable:
    def test_jobs2_rows_match_sequential(self, small_table):
        parallel = build_table(("mcf", "sjeng"), "test table", jobs=2)
        assert [
            (r.benchmark, r.a_cost, r.b_cost, r.c_cost, r.efg_sizes)
            for r in parallel.rows
        ] == [
            (r.benchmark, r.a_cost, r.b_cost, r.c_cost, r.efg_sizes)
            for r in small_table.rows
        ]
