"""Recursive-descent parser for the textual IR.

Grammar (keywords are reserved and cannot name variables)::

    program  := function+
    function := "func" NAME "(" [NAME ("," NAME)*] ")" "{" block+ "}"
    block    := NAME ":" instr*
    instr    := NAME "=" "phi" "(" [NAME ":" operand ("," ...)*] ")"
              | NAME "=" OP operand ["," operand]
              | NAME "=" operand                       # copy
              | "output" operand
              | "jump" NAME
              | "br" operand "," NAME "," NAME
              | "ret" [operand]
    operand  := INT | NAME            # NAME may carry an SSA ".N" suffix

The printer (:mod:`repro.ir.printer`) emits exactly this syntax, so the two
round-trip; tests assert ``parse(print(f)) == print(f)`` structurally.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Output,
    Phi,
    Return,
    UnaryOp,
)
from repro.ir.ops import BINARY_OPS, UNARY_OPS
from repro.ir.values import Const, Operand, Var
from repro.lang.lexer import Token, tokenize

_KEYWORDS = {"func", "phi", "output", "jump", "br", "ret"}
_TERMINATOR_WORDS = {"jump", "br", "ret"}


class ParseError(Exception):
    """Raised on syntactically invalid input."""


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = list(tokenize(source))
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind!r}, found {token}")
        return self.advance()

    def at_name(self, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == "NAME" and (text is None or token.text == text)

    # ------------------------------------------------------------------
    def parse_program(self) -> list[Function]:
        funcs = []
        while self.peek().kind != "EOF":
            funcs.append(self.parse_function())
        if not funcs:
            raise ParseError("empty program")
        return funcs

    def parse_function(self) -> Function:
        keyword = self.expect("NAME")
        if keyword.text != "func":
            raise ParseError(f"expected 'func', found {keyword}")
        name = self.expect("NAME").text
        self.expect("(")
        params: list[Var] = []
        while not self.peek().kind == ")":
            # parse_var handles the SSA ".N" suffix, so the parameter list
            # of an SSA-form function (``func f(a.1)``) round-trips.
            params.append(self.parse_var())
            if self.peek().kind == ",":
                self.advance()
        self.expect(")")
        self.expect("{")
        func = Function(name, params)
        while self.peek().kind != "}":
            self.parse_block(func)
        self.expect("}")
        return func

    def parse_block(self, func: Function) -> None:
        label = self.expect("NAME").text
        self.expect(":")
        block = func.add_block(label)
        while True:
            token = self.peek()
            if token.kind != "NAME":
                raise ParseError(
                    f"block {label!r} has no terminator before {token}"
                )
            if token.text not in _TERMINATOR_WORDS and self._name_is_block_label():
                raise ParseError(
                    f"block {label!r} has no terminator before label {token.text!r}"
                )
            if token.text == "output":
                self.advance()
                block.body.append(Output(self.parse_operand()))
            elif token.text == "jump":
                self.advance()
                block.terminator = Jump(self.expect("NAME").text)
                return
            elif token.text == "br":
                self.advance()
                cond = self.parse_operand()
                self.expect(",")
                true_target = self.expect("NAME").text
                self.expect(",")
                false_target = self.expect("NAME").text
                block.terminator = CondJump(cond, true_target, false_target)
                return
            elif token.text == "ret":
                self.advance()
                value: Operand | None = None
                nxt = self.peek()
                if nxt.kind == "INT" or (
                    nxt.kind == "NAME"
                    and nxt.text not in _KEYWORDS
                    and not self._name_is_block_label()
                ):
                    value = self.parse_operand()
                block.terminator = Return(value)
                return
            else:
                self.parse_assignment(block)

    def _name_is_block_label(self) -> bool:
        """Lookahead: is the NAME at ``pos`` followed by a colon?"""
        return (
            self.peek().kind == "NAME"
            and self.tokens[self.pos + 1].kind == ":"
        )

    def parse_assignment(self, block) -> None:
        target = self.parse_var()
        self.expect("=")
        token = self.peek()
        if token.kind == "NAME" and token.text == "phi":
            self.advance()
            self.expect("(")
            args: dict[str, Operand] = {}
            while self.peek().kind != ")":
                pred = self.expect("NAME").text
                self.expect(":")
                args[pred] = self.parse_operand()
                if self.peek().kind == ",":
                    self.advance()
            self.expect(")")
            block.phis.append(Phi(target, args))
            return
        if token.kind == "NAME" and token.text in BINARY_OPS:
            op = self.advance().text
            left = self.parse_operand()
            self.expect(",")
            right = self.parse_operand()
            block.body.append(Assign(target, BinOp(op, left, right)))
            return
        if token.kind == "NAME" and token.text in UNARY_OPS:
            op = self.advance().text
            operand = self.parse_operand()
            block.body.append(Assign(target, UnaryOp(op, operand)))
            return
        block.body.append(Assign(target, self.parse_operand()))

    def parse_operand(self) -> Operand:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return Const(int(token.text))
        if token.kind == "NAME":
            return self.parse_var()
        raise ParseError(f"expected operand, found {token}")

    def parse_var(self) -> Var:
        token = self.expect("NAME")
        if token.text in _KEYWORDS or token.text in BINARY_OPS or token.text in UNARY_OPS:
            raise ParseError(f"reserved word used as variable: {token}")
        name = token.text
        if "." in name:
            base, _, version = name.rpartition(".")
            return Var(base, int(version))
        return Var(name)


def parse_function(source: str) -> Function:
    """Parse exactly one function from *source*."""
    funcs = _Parser(source).parse_program()
    if len(funcs) != 1:
        raise ParseError(f"expected exactly one function, found {len(funcs)}")
    return funcs[0]


def parse_program(source: str) -> list[Function]:
    """Parse one or more functions from *source*."""
    return _Parser(source).parse_program()
