"""Golden memory-PRE behavior: speculative load hoisting under aliasing.

The pinned program pair from the perf suite, checked as a tier-1
property: a branch-guarded, provably-in-bounds load is *partially*
redundant — safe PRE must leave it alone (the head Φ is not down-safe),
MC-SSAPRE must speculate it out of the loop for a strict dynamic-cost
win on the train input — while a may-aliasing store on the back edge
freezes every variant.  The alias lattice's no-alias verdicts (other
array, unequal constant index) must *not* block the motion, and a
lexically may-trapping variable-index load must never be speculated.
"""

import pytest

from repro.lang.parser import parse_function
from repro.passes.compiler import compile as compile_func
from repro.pipeline import prepare
from repro.profiles.interp import run_function


HOIST = """
func memgold(n, flag) arrays(A: 8, B: 8) {
entry:
  i = 0
  s = 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  br flag, hot, skip
hot:
  t = load A, 5
  s = add s, t
  jump latch
skip:
  s = add s, 1
  jump latch
latch:
  i = add i, 1
  jump head
exit:
  ret s
}
"""

#: (n, flag) vectors; index 0 trains the profile (hot arm throughout).
INPUTS = ([8, 1], [8, 0], [5, 1], [0, 1])


def _variant(latch_extra="", load="t = load A, 5"):
    source = HOIST.replace("t = load A, 5", load)
    if latch_extra:
        source = source.replace(
            "i = add i, 1", f"{latch_extra}\n  i = add i, 1"
        )
    return prepare(parse_function(source))


def _loads(result):
    return sum(
        count for key, count in result.expr_counts.items()
        if key[0] == "load"
    )


def _compile_pair(prepared):
    train = list(INPUTS[0])
    profile = run_function(prepared, train).profile
    safe = compile_func(prepared, "ssapre", profile, validate=True)
    mc = compile_func(prepared, "mc-ssapre", profile, validate=True)
    control = run_function(prepared, train)
    return control, run_function(safe.func, train), run_function(mc.func, train), safe, mc


def _assert_observable_equivalence(prepared, *compiled):
    for args in INPUTS:
        want = run_function(prepared, list(args)).observable()
        for out in compiled:
            assert run_function(out.func, list(args)).observable() == want


class TestSpeculativeHoist:
    def test_mc_wins_strictly_where_safe_pre_is_blocked(self):
        prepared = _variant()
        control, safe_run, mc_run, safe, mc = _compile_pair(prepared)
        # Safe PRE cannot touch the branch-guarded load...
        assert _loads(safe_run) == _loads(control) == 8
        assert safe_run.dynamic_cost == control.dynamic_cost
        # ...MC-SSAPRE speculates it down to a single evaluation.
        assert _loads(mc_run) == 1
        assert mc_run.dynamic_cost < safe_run.dynamic_cost
        _assert_observable_equivalence(prepared, safe, mc)

    def test_may_alias_store_on_back_edge_blocks_all_motion(self):
        prepared = _variant(latch_extra="store A, i, s")
        control, safe_run, mc_run, safe, mc = _compile_pair(prepared)
        assert _loads(mc_run) == _loads(safe_run) == _loads(control) == 8
        assert mc_run.dynamic_cost == control.dynamic_cost
        assert safe_run.dynamic_cost == control.dynamic_cost
        _assert_observable_equivalence(prepared, safe, mc)

    def test_store_to_other_array_does_not_block(self):
        # B never aliases A: the hoist must survive the store.
        prepared = _variant(latch_extra="store B, i, s")
        control, _safe_run, mc_run, safe, mc = _compile_pair(prepared)
        assert _loads(control) == 8
        assert _loads(mc_run) == 1
        _assert_observable_equivalence(prepared, safe, mc)

    def test_store_to_unequal_constant_index_does_not_block(self):
        # A[3] never aliases A[5].
        prepared = _variant(latch_extra="store A, 3, s")
        control, _safe_run, mc_run, safe, mc = _compile_pair(prepared)
        assert _loads(control) == 8
        assert _loads(mc_run) == 1
        _assert_observable_equivalence(prepared, safe, mc)

    def test_store_to_same_constant_index_blocks(self):
        prepared = _variant(latch_extra="store A, 5, s")
        control, _safe_run, mc_run, safe, mc = _compile_pair(prepared)
        assert _loads(mc_run) == _loads(control) == 8
        _assert_observable_equivalence(prepared, safe, mc)

    def test_variable_index_load_is_never_speculated(self):
        # `load A, m` with m = n & 7 is in bounds at runtime but
        # *lexically* may-trapping, so speculation must refuse it even
        # though the profile says the hot arm always runs.
        prepared = _variant(load="m = and n, 7\n  t = load A, m")
        control, safe_run, mc_run, safe, mc = _compile_pair(prepared)
        assert _loads(mc_run) == _loads(safe_run) == _loads(control) == 8
        _assert_observable_equivalence(prepared, safe, mc)


class TestFullRedundancyStillSafe:
    def test_straightline_repeated_load_is_plain_pre(self):
        # Two identical loads with no intervening may-alias store: even
        # *safe* PRE removes the second — no speculation involved.
        source = """
func twice(n) arrays(A: 8) {
entry:
  a = load A, 2
  store A, 7, n
  b = load A, 2
  s = add a, b
  ret s
}
"""
        prepared = prepare(parse_function(source))
        profile = run_function(prepared, [1]).profile
        safe = compile_func(prepared, "ssapre", profile, validate=True)
        run = run_function(safe.func, [1])
        assert _loads(run) == 1
        assert run.observable() == run_function(prepared, [1]).observable()

    def test_intervening_alias_store_keeps_both_loads(self):
        source = """
func twice(n) arrays(A: 8) {
entry:
  m = and n, 7
  a = load A, 2
  store A, m, n
  b = load A, 2
  s = add a, b
  ret s
}
"""
        prepared = prepare(parse_function(source))
        profile = run_function(prepared, [1]).profile
        for variant in ("ssapre", "mc-ssapre"):
            out = compile_func(prepared, variant, profile, validate=True)
            run = run_function(out.func, [1])
            assert _loads(run) == 2
            assert run.observable() == (
                run_function(prepared, [1]).observable()
            )
