"""ISPRE — Isothermal Speculative PRE (Horspool, Pereira & Scholz 2006).

The fast-but-non-optimal heuristic the paper cites as the price of
avoiding min-cut [11].  The program is partitioned by the profile into a
*hot* region (blocks with frequency ≥ θ · max frequency) and a *cold*
remainder.  For each expression:

* **ingress edges** are CFG edges from cold to hot blocks;
* the expression is inserted on every ingress edge where it is
  *removable* — partially anticipated into the hot region and not
  already available out of the cold side;
* occurrences inside the hot region that become fully available are then
  rewritten to reloads.

Only bit-vector analyses are used — no flow network, no min cut — which is
the point: the ablation benchmark shows ISPRE leaves dynamic evaluations
on the table relative to MC-SSAPRE while running faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis import cfg_of
from repro.analysis.dataflow import ExprKey, expression_keys, solve_pre_dataflow
from repro.ir.function import Function
from repro.ir.ops import is_trapping
from repro.profiles.profile import ExecutionProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache


@dataclass
class ISPREResult:
    insertions: int = 0
    reloads: int = 0
    hot_blocks: int = 0
    skipped_trapping: int = 0
    details: dict[ExprKey, int] = field(default_factory=dict)


def hot_region(
    func: Function, profile: ExecutionProfile, theta: float
) -> set[str]:
    """Blocks whose frequency is at least ``theta`` times the maximum."""
    peak = max((profile.node(label) for label in func.blocks), default=0)
    if peak == 0:
        return set()
    threshold = theta * peak
    return {
        label for label in func.blocks if profile.node(label) >= threshold
    }


def run_ispre(
    func: Function,
    profile: ExecutionProfile,
    theta: float = 0.5,
    validate: bool = False,
    cache: "AnalysisCache | None" = None,
) -> ISPREResult:
    """Run ISPRE on a non-SSA function, in place."""
    from repro.passes.cache import AnalysisCache
    from repro.ssa.ssa_verifier import is_ssa

    if is_ssa(func):
        raise ValueError("ISPRE operates on non-SSA input")
    cache = AnalysisCache.ensure(func, cache)
    result = ISPREResult()
    hot = hot_region(func, profile, theta)
    result.hot_blocks = len(hot)
    if not hot:
        return result

    cfg = cfg_of(func, cache)
    reachable = set(cfg.reverse_postorder())
    ingress = [
        (u, v)
        for u in reachable
        for v in cfg.successors(u)
        if u not in hot and v in hot and v in reachable
    ]

    for key in expression_keys(func):
        if is_trapping(key[0]):
            result.skipped_trapping += 1
            continue
        inserted = _optimize(func, key, ingress, result, cache)
        result.details[key] = inserted
        if validate:
            from repro.ir.verifier import verify_function

            verify_function(func)
    func.mark_code_mutated()
    return result


def _optimize(func, key, ingress, result, cache) -> int:
    dataflow = solve_pre_dataflow(func, [key])
    # Removability: partially anticipated into the hot side, not already
    # available out of the cold side.
    chosen = []
    for u, v in ingress:
        if key in dataflow.pant_postphi[v] and key not in dataflow.avail_out[u]:
            chosen.append((u, v))
    if not chosen:
        return 0

    from repro.baselines.mcpre import apply_insertions_and_rewrite

    apply_insertions_and_rewrite(func, key, chosen, result, cache)
    return len(chosen)
