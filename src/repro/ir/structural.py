"""Structural comparison of IR functions.

``parse(print(f))`` must reproduce *f* exactly — same parameters (with SSA
versions), same entry, same blocks, same instructions.  Textual equality of
the printed forms is a weaker check (two different in-memory functions can
print identically, e.g. a versioned parameter ``a.1`` vs a parameter whose
*name* is the string ``"a.1"``), so the round-trip property tests and the
test-case reducer compare structure instead.

Block *insertion order* is compared only up to the printer's normalisation
(entry first): the printer emits the entry block first regardless of where
it sits in the block map, so a reparsed function may legitimately store it
first.
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Output,
    Phi,
    Return,
    Store,
    UnaryOp,
)


def _ordered_labels(func: Function) -> list[str]:
    """Block labels in printed order: entry first, then insertion order."""
    labels = list(func.blocks)
    if func.entry in labels:
        labels.remove(func.entry)
        labels.insert(0, func.entry)
    return labels


def _rhs_diff(path: str, a, b) -> list[str]:
    if type(a) is not type(b):
        return [f"{path}: rhs kind {type(a).__name__} != {type(b).__name__}"]
    if isinstance(a, BinOp):
        if (a.op, a.left, a.right) != (b.op, b.left, b.right):
            return [f"{path}: {a} != {b}"]
    elif isinstance(a, UnaryOp):
        if (a.op, a.operand) != (b.op, b.operand):
            return [f"{path}: {a} != {b}"]
    elif isinstance(a, Load):
        if (a.array, a.index) != (b.array, b.index):
            return [f"{path}: {a} != {b}"]
    elif a != b:  # bare operand (copy)
        return [f"{path}: {a} != {b}"]
    return []


def _block_diff(label: str, a: BasicBlock, b: BasicBlock) -> list[str]:
    diffs: list[str] = []
    if len(a.phis) != len(b.phis):
        diffs.append(f"{label}: {len(a.phis)} phis != {len(b.phis)}")
    else:
        for i, (pa, pb) in enumerate(zip(a.phis, b.phis)):
            assert isinstance(pa, Phi) and isinstance(pb, Phi)
            if pa.target != pb.target or pa.args != pb.args:
                diffs.append(f"{label}.phi[{i}]: {pa} != {pb}")
    if len(a.body) != len(b.body):
        diffs.append(f"{label}: {len(a.body)} statements != {len(b.body)}")
    else:
        for i, (sa, sb) in enumerate(zip(a.body, b.body)):
            path = f"{label}.body[{i}]"
            if type(sa) is not type(sb):
                diffs.append(
                    f"{path}: {type(sa).__name__} != {type(sb).__name__}"
                )
            elif isinstance(sa, Assign):
                if sa.target != sb.target:
                    diffs.append(f"{path}: target {sa.target} != {sb.target}")
                else:
                    diffs.extend(_rhs_diff(path, sa.rhs, sb.rhs))
            elif isinstance(sa, Output) and sa.value != sb.value:
                diffs.append(f"{path}: {sa} != {sb}")
            elif isinstance(sa, Store) and (
                (sa.array, sa.index, sa.value)
                != (sb.array, sb.index, sb.value)
            ):
                diffs.append(f"{path}: {sa} != {sb}")
    ta, tb = a.terminator, b.terminator
    if type(ta) is not type(tb):
        diffs.append(
            f"{label}.term: {type(ta).__name__} != {type(tb).__name__}"
        )
    elif isinstance(ta, Jump):
        if ta.target != tb.target:
            diffs.append(f"{label}.term: {ta} != {tb}")
    elif isinstance(ta, CondJump):
        if (ta.cond, ta.true_target, ta.false_target) != (
            tb.cond, tb.true_target, tb.false_target
        ):
            diffs.append(f"{label}.term: {ta} != {tb}")
    elif isinstance(ta, Return) and ta.value != tb.value:
        diffs.append(f"{label}.term: {ta} != {tb}")
    return diffs


def structural_diff(a: Function, b: Function) -> list[str]:
    """Human-readable differences between two functions (empty = identical).

    Compares names, parameters (including SSA versions), entry labels,
    printed block order and every phi/statement/terminator field-by-field.
    """
    diffs: list[str] = []
    if a.name != b.name:
        diffs.append(f"name: {a.name!r} != {b.name!r}")
    if a.params != b.params:
        diffs.append(f"params: {a.params} != {b.params}")
    if a.arrays != b.arrays:
        diffs.append(f"arrays: {a.arrays} != {b.arrays}")
    if a.entry != b.entry:
        diffs.append(f"entry: {a.entry!r} != {b.entry!r}")
    order_a, order_b = _ordered_labels(a), _ordered_labels(b)
    if order_a != order_b:
        diffs.append(f"block order: {order_a} != {order_b}")
        return diffs
    for label in order_a:
        diffs.extend(_block_diff(label, a.blocks[label], b.blocks[label]))
    return diffs


def structurally_equal(a: Function, b: Function) -> bool:
    """True when :func:`structural_diff` finds no differences."""
    return not structural_diff(a, b)
