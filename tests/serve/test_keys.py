"""Content-addressed keys: renumbering-stable, semantics-sensitive."""

import pytest

from repro.pipeline import PipelineConfig, prepare
from repro.profiles.interp import run_function
from repro.serve.keys import (
    artifact_key,
    function_fingerprint,
    profile_fingerprint,
)

from tests.conftest import as_ssa, build_diamond, build_straightline
from tests.ir.test_printer_normalize import _shuffle_versions


class TestFunctionFingerprint:
    def test_stable_across_ssa_version_renumbering(self):
        func = as_ssa(build_diamond())
        assert function_fingerprint(func) == function_fingerprint(
            _shuffle_versions(func)
        )

    def test_name_does_not_count(self):
        a = build_diamond()
        b = build_diamond()
        b.name = "renamed"
        assert function_fingerprint(a) == function_fingerprint(b)

    def test_different_bodies_differ(self):
        assert function_fingerprint(build_diamond()) != function_fingerprint(
            build_straightline()
        )

    def test_deterministic(self):
        assert function_fingerprint(build_diamond()) == function_fingerprint(
            build_diamond()
        )

    def test_array_declarations_are_key_material(self):
        # Array length decides what the optimiser may speculate (a
        # constant index is provably safe iff it is inside the declared
        # bounds) *and* the initial memory contents — two functions
        # differing only there must never share an artifact.
        a = build_diamond()
        b = build_diamond()
        c = build_diamond()
        b.declare_array("A", 8)
        c.declare_array("A", 4)
        assert function_fingerprint(a) != function_fingerprint(b)
        assert function_fingerprint(b) != function_fingerprint(c)

    def test_array_declaration_order_does_not_count(self):
        a = build_diamond()
        a.declare_array("A", 8)
        a.declare_array("B", 4)
        b = build_diamond()
        b.declare_array("B", 4)
        b.declare_array("A", 8)
        assert function_fingerprint(a) == function_fingerprint(b)


class TestProfileFingerprint:
    def _profile(self, args):
        return run_function(prepare(build_diamond()), args).profile

    def test_same_run_same_fingerprint(self):
        assert profile_fingerprint(self._profile([1, 2, 1])) == (
            profile_fingerprint(self._profile([1, 2, 1]))
        )

    def test_different_path_different_fingerprint(self):
        # c=0 vs c=1 takes the other diamond arm.
        assert profile_fingerprint(self._profile([1, 2, 1])) != (
            profile_fingerprint(self._profile([1, 2, 0]))
        )


class TestArtifactKey:
    def setup_method(self):
        self.prepared = prepare(build_diamond())

    def test_every_input_is_keyed(self):
        base = artifact_key(self.prepared, PipelineConfig(variant="ssapre"))
        assert base != artifact_key(
            self.prepared, PipelineConfig(variant="lcm")
        )
        assert base != artifact_key(
            self.prepared, PipelineConfig(variant="ssapre", rounds=3)
        )
        assert base != artifact_key(
            self.prepared, PipelineConfig(variant="ssapre"),
            engine="reference",
        )
        assert base != artifact_key(
            self.prepared, PipelineConfig(variant="ssapre"),
            train_args=(1, 2, 3),
        )

    def test_train_args_key_is_intensional(self):
        config = PipelineConfig(variant="mc-ssapre")
        a = artifact_key(self.prepared, config, train_args=(1, 2, 1))
        b = artifact_key(self.prepared, config, train_args=(1, 2, 1))
        c = artifact_key(self.prepared, config, train_args=(1, 2, 0))
        assert a == b != c

    def test_profile_guided_requires_profile_or_train_args(self):
        with pytest.raises(ValueError, match="profile-guided"):
            artifact_key(self.prepared, PipelineConfig(variant="mc-ssapre"))

    def test_rejects_both_profile_and_train_args(self):
        profile = run_function(self.prepared, [1, 2, 1]).profile
        with pytest.raises(ValueError, match="not both"):
            artifact_key(
                self.prepared, PipelineConfig(variant="mc-ssapre"),
                train_args=(1, 2, 1), profile=profile,
            )

    def test_extensional_profile_keying(self):
        config = PipelineConfig(variant="mc-ssapre")
        p1 = run_function(self.prepared, [1, 2, 1]).profile
        p2 = run_function(self.prepared, [1, 2, 1]).profile
        assert artifact_key(self.prepared, config, profile=p1) == (
            artifact_key(self.prepared, config, profile=p2)
        )


class TestSolverKeying:
    def setup_method(self):
        self.prepared = prepare(build_diamond())

    def _key(self, solver):
        return artifact_key(
            self.prepared,
            PipelineConfig(variant="mc-ssapre", solver=solver),
            train_args=(1, 2, 1),
        )

    def test_solvers_key_distinct_artifacts(self):
        assert self._key("mincut") != self._key("lospre")

    def test_auto_shares_the_resolved_solver_key(self):
        # The diamond's CFG is accepted by the shape classifier, so
        # auto resolves to lospre — and must share its cache entry,
        # not mint a third key.
        assert self._key("auto") == self._key("lospre")
        assert self._key("auto") != self._key("mincut")

    def test_key_schema_pins_the_layout(self):
        # v2 made keys solver-aware; v3 folded array declarations into
        # the function fingerprint.
        from repro.serve.keys import KEY_SCHEMA

        assert KEY_SCHEMA == 3
