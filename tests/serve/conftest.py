"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro.ir.printer import format_function
from repro.pipeline import PipelineConfig, prepare
from repro.serve.keys import artifact_key
from repro.serve.server import build_artifact

from tests.conftest import build_diamond, build_while_loop


@pytest.fixture
def diamond_source() -> str:
    return format_function(build_diamond())


@pytest.fixture
def loop_source() -> str:
    return format_function(build_while_loop())


def make_artifact(func, variant: str = "ssapre", engine: str = "compiled"):
    """A real artifact for one of the conftest functions (no profile)."""
    prepared = prepare(func)
    config = PipelineConfig(variant=variant)
    key = artifact_key(prepared, config, engine=engine)
    return key, build_artifact(prepared, config, key=key, engine=engine)


@pytest.fixture
def diamond_artifact():
    return make_artifact(build_diamond())


@pytest.fixture
def loop_artifact():
    return make_artifact(build_while_loop())
