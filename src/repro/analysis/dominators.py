"""Dominator analysis.

The default algorithm is the Cooper–Harvey–Kennedy iterative scheme over
reverse postorder, which is simple, robust, and fast for the CFG sizes this
project handles.  A naive O(n²) data-flow formulation is kept as
:func:`dominators_naive` purely as a differential-testing oracle.
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.cfg import CFG


class DominatorTree:
    """Immediate dominators + dominator tree for reachable blocks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.rpo = cfg.reverse_postorder()
        self._rpo_index = {label: i for i, label in enumerate(self.rpo)}
        self.idom: dict[str, str | None] = _cooper_harvey_kennedy(
            cfg, self.rpo, self._rpo_index
        )
        self.children: dict[str, list[str]] = {label: [] for label in self.rpo}
        for label, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(label)
        # Deterministic child order (RPO) keeps every downstream walk stable.
        for kids in self.children.values():
            kids.sort(key=self._rpo_index.__getitem__)
        self._dfs_in: dict[str, int] = {}
        self._dfs_out: dict[str, int] = {}
        self._number()

    def _number(self) -> None:
        """Assign preorder in/out intervals for O(1) dominance queries."""
        clock = 0
        assert self.cfg.entry is not None
        stack: list[tuple[str, int]] = [(self.cfg.entry, 0)]
        while stack:
            label, child_index = stack[-1]
            if child_index == 0:
                self._dfs_in[label] = clock
                clock += 1
            kids = self.children[label]
            if child_index < len(kids):
                stack[-1] = (label, child_index + 1)
                stack.append((kids[child_index], 0))
            else:
                self._dfs_out[label] = clock
                clock += 1
                stack.pop()

    # ------------------------------------------------------------------
    def dominates(self, a: str, b: str) -> bool:
        """True when *a* dominates *b* (reflexively)."""
        return (
            self._dfs_in[a] <= self._dfs_in[b]
            and self._dfs_out[b] <= self._dfs_out[a]
        )

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def preorder(self) -> Iterator[str]:
        """Preorder walk of the dominator tree (parents before children)."""
        assert self.cfg.entry is not None
        stack = [self.cfg.entry]
        while stack:
            label = stack.pop()
            yield label
            # Reversed so children come off the stack in RPO order.
            stack.extend(reversed(self.children[label]))

    def depth(self, label: str) -> int:
        d = 0
        cur: str | None = label
        while (cur := self.idom[cur]) is not None:
            d += 1
        return d


def _cooper_harvey_kennedy(
    cfg: CFG, rpo: list[str], rpo_index: dict[str, int]
) -> dict[str, str | None]:
    entry = cfg.entry
    assert entry is not None
    idom: dict[str, str | None] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while rpo_index[b] > rpo_index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            processed = [p for p in cfg.predecessors(label) if p in idom]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: dict[str, str | None] = {entry: None}
    for label in rpo:
        if label != entry:
            result[label] = idom[label]
    return result


def dominators_naive(cfg: CFG) -> dict[str, set[str]]:
    """Reference implementation: full dominator *sets* by iteration.

    Exponentially slower representation than the CHK tree; used only to
    cross-check :class:`DominatorTree` in tests.
    """
    entry = cfg.entry
    assert entry is not None
    labels = cfg.reverse_postorder()
    universe = set(labels)
    dom: dict[str, set[str]] = {label: set(universe) for label in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                continue
            preds = [p for p in cfg.predecessors(label) if p in universe]
            new = set(universe)
            for pred in preds:
                new &= dom[pred]
            new |= {label}
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom
