"""Adaptation tier: live profiles, drift detection, tiering, hot swaps."""

import threading
import time

import pytest

from repro.pipeline import PipelineConfig, prepare
from repro.profiles.interp import run_function
from repro.serve.adapt import AdaptConfig, DriftDetector, LiveProfile, TierPolicy
from repro.serve.adapt.drift import js_divergence, l1_distance
from repro.serve.adapt.tier import TIER_COMPILED, TIER_INTERP
from repro.serve.keys import artifact_key, structural_key
from repro.serve.server import CompileRequest, CompileService, build_artifact

from tests.conftest import build_while_loop


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def _adaptive_service(**overrides) -> CompileService:
    cfg = dict(warmup=2, metric="l1", threshold=0.2, min_samples=3)
    cfg.update(overrides)
    return CompileService(adapt=AdaptConfig(**cfg))


def _loop_request(source: str, n: int) -> CompileRequest:
    """The conftest while loop with trip count *n* — the knob that moves
    the node-frequency distribution between phases."""
    return CompileRequest(
        source=source, args=(2, 3, n), variant="mc-ssapre", train_args=(2, 3, n)
    )


def _only_state(service: CompileService):
    (state,) = service.adapt._states.values()
    return state


class TestDriftDetector:
    def test_empty_live_profile_is_never_drift(self):
        detector = DriftDetector(min_samples=1)
        verdict = detector.check({"a": 10}, {}, samples=0)
        assert not verdict.drifted
        assert verdict.score == 0.0
        assert verdict.reason == "no-live-profile"

    def test_empty_baseline_is_never_drift(self):
        detector = DriftDetector(min_samples=1)
        verdict = detector.check({}, {"a": 10}, samples=50)
        assert not verdict.drifted
        assert verdict.reason == "no-baseline"

    def test_identical_profiles_score_zero(self):
        detector = DriftDetector(min_samples=1)
        freq = {"entry": 1, "body": 40, "exit": 1}
        verdict = detector.check(freq, dict(freq), samples=10)
        assert verdict.score == 0.0
        assert verdict.reason == "below-threshold"

    def test_scaled_profile_scores_zero(self):
        # Same shape, 100x the mass: identical placement decisions.
        detector = DriftDetector(min_samples=1)
        assert detector.score({"a": 1, "b": 3}, {"a": 100, "b": 300}) == 0.0

    def test_zero_frequency_nodes_are_ignored(self):
        detector = DriftDetector(min_samples=1)
        assert detector.score({"a": 10, "dead": 0}, {"a": 7}) == 0.0
        # All-zero maps count as empty, not as a divergent distribution.
        verdict = detector.check({"a": 0, "b": 0}, {"a": 5}, samples=10)
        assert verdict.reason == "no-baseline"

    def test_below_minimum_sample_gate_holds_even_on_disjoint_support(self):
        detector = DriftDetector(threshold=0.1, min_samples=16)
        verdict = detector.check({"a": 10}, {"b": 10}, samples=15)
        assert not verdict.drifted
        assert verdict.reason == "insufficient-samples"
        assert verdict.score == 1.0  # the score is still reported
        fired = detector.check({"a": 10}, {"b": 10}, samples=16)
        assert fired.drifted
        assert fired.reason == "drift"

    def test_metric_bounds_on_disjoint_support(self):
        p, q = {"a": 1.0}, {"b": 1.0}
        assert l1_distance(p, q) == 1.0
        assert js_divergence(p, q) == 1.0
        assert js_divergence(p, p) == 0.0

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector(metric="kl")
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(threshold=1.5)
        with pytest.raises(ValueError):
            DriftDetector(min_samples=0)


class TestLiveProfile:
    def test_fold_accumulates_counts_and_samples(self):
        live = LiveProfile()
        live.fold({"a": 3, "b": 1})
        live.fold({"a": 2})
        assert live.node_freq() == {"a": 5, "b": 1}
        assert live.samples == 2
        assert live.weight == 6
        assert live.snapshot().node_freq == {"a": 5, "b": 1}

    def test_decay_halves_counts_once_weight_exceeds_budget(self):
        live = LiveProfile(max_weight=10)
        live.fold({"a": 8, "b": 4})  # weight 12 > 10 -> halve
        assert live.decays == 1
        assert live.node_freq() == {"a": 4, "b": 2}
        assert live.weight == 6

    def test_decay_ages_rare_labels_out(self):
        live = LiveProfile(max_weight=4)
        live.fold({"hot": 8, "rare": 1})  # halving drops rare to 0
        assert "rare" not in live.node_freq()
        assert live.weight == live.node_freq()["hot"]

    def test_mean_freq_gives_each_run_one_vote(self):
        # One long run on "a", one tiny run on "b": count-weighted mass
        # is all "a", but the per-run mean splits 50/50 — short runs must
        # be able to register in the drift signal.
        live = LiveProfile()
        live.fold({"a": 1000})
        live.fold({"b": 1})
        assert live.distribution()["a"] == pytest.approx(1000 / 1001)
        mean = live.mean_distribution()
        assert mean["a"] == pytest.approx(0.5)
        assert mean["b"] == pytest.approx(0.5)

    def test_all_zero_fold_counts_a_sample_but_no_mass(self):
        live = LiveProfile()
        live.fold({"a": 0})
        assert live.samples == 1
        assert live.weight == 0
        assert live.node_freq() == {}
        assert live.mean_freq() == {}

    def test_max_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveProfile(max_weight=0)


class TestTierPolicy:
    def test_promotion_at_the_warmup_boundary(self):
        policy = TierPolicy(warmup=3)
        assert not policy.should_promote(2)
        assert policy.should_promote(3)

    def test_tier_follows_the_binding_not_the_hits(self):
        policy = TierPolicy(warmup=2)
        # Past warmup but the async build has not landed yet.
        assert policy.tier_for(10, bound=False) == TIER_INTERP
        assert policy.tier_for(0, bound=True) == TIER_COMPILED

    def test_negative_warmup_is_rejected(self):
        with pytest.raises(ValueError):
            TierPolicy(warmup=-1)


class TestStructuralKey:
    def test_profile_does_not_move_the_structural_key(self, loop_source):
        prepared = prepare(build_while_loop())
        config = PipelineConfig(variant="mc-ssapre")
        skey = structural_key(prepared, config)
        assert skey == structural_key(prepared, config)
        # The content address *does* move with the training input; the
        # structural key is the stable indirection hot swaps pivot on.
        key_a = artifact_key(prepared, config, train_args=(2, 3, 1))
        key_b = artifact_key(prepared, config, train_args=(2, 3, 50))
        assert key_a != key_b
        assert skey not in (key_a, key_b)

    def test_engine_and_config_move_the_structural_key(self):
        prepared = prepare(build_while_loop())
        config = PipelineConfig(variant="mc-ssapre")
        assert structural_key(prepared, config) != structural_key(
            prepared, config, engine="reference"
        )
        assert structural_key(prepared, config) != structural_key(
            prepared, PipelineConfig(variant="ssapre")
        )


class TestTieredServing:
    def test_warmup_serves_on_interp_then_promotes(self, loop_source):
        with _adaptive_service(warmup=2) as service:
            first = service.handle(_loop_request(loop_source, 8))
            assert first.status == "ok"
            assert first.served_by == "interp"
            second = service.handle(_loop_request(loop_source, 8))
            assert second.status == "ok"
            assert service.adapt.drain(timeout=30.0)
            third = service.handle(_loop_request(loop_source, 8))
            assert third.status == "ok"
            assert third.served_by == "memory"
            # All tiers agree with each other (same args).
            assert first.observable() == third.observable()
            counters = service.metrics.to_dict()["counters"]
            assert counters["tier_promotions"] == 1
            assert counters["tier_interp"] == 2
            assert counters["live_samples"] >= 3

    def test_interp_tier_matches_the_reference(self, loop_source):
        expected = run_function(prepare(build_while_loop()), [2, 3, 8])
        with _adaptive_service(warmup=100) as service:
            response = service.handle(_loop_request(loop_source, 8))
        assert response.status == "ok"
        assert response.served_by == "interp"
        assert response.observable() == expected.observable()

    def test_promotion_build_never_blocks_requests(self, loop_source):
        gate = threading.Event()
        calls = []

        def gated_build(prepared, config, *, key, engine="compiled",
                        train_args=None, profile=None, max_steps=2_000_000):
            calls.append(key)
            assert gate.wait(timeout=30.0), "test never released the build"
            return build_artifact(
                prepared, config, key=key, engine=engine,
                train_args=train_args, profile=profile, max_steps=max_steps,
            )

        service = CompileService(
            build=gated_build, adapt=AdaptConfig(warmup=1, min_samples=3)
        )
        try:
            first = service.handle(_loop_request(loop_source, 8))
            assert first.served_by == "interp"
            assert _wait_until(lambda: calls)  # the build is now parked
            # Requests keep flowing on the interpreter while the compile
            # is stuck — promotion is asynchronous by construction.
            for _ in range(5):
                response = service.handle(_loop_request(loop_source, 8))
                assert response.status == "ok"
                assert response.served_by == "interp"
            gate.set()
            assert service.adapt.drain(timeout=30.0)
            landed = service.handle(_loop_request(loop_source, 8))
            assert landed.served_by == "memory"
            assert landed.observable() == first.observable()
        finally:
            gate.set()
            service.close()

    def test_profile_free_variant_is_never_drift_checked(self, loop_source):
        request = CompileRequest(
            source=loop_source, args=(2, 3, 8), variant="ssapre"
        )
        shifted = CompileRequest(
            source=loop_source, args=(2, 3, 0), variant="ssapre"
        )
        with _adaptive_service(
            warmup=1, threshold=0.01, min_samples=1
        ) as service:
            service.handle(request)
            assert service.adapt.drain(timeout=30.0)
            for _ in range(6):
                assert service.handle(shifted).status == "ok"
            assert service.adapt.drain(timeout=30.0)
            state = _only_state(service)
            assert state.binding.baseline == {}
            counters = service.metrics.to_dict()["counters"]
            assert counters["drift_events"] == 0
            assert counters["hot_swaps"] == 0


class TestDriftRecompile:
    def test_phase_shift_triggers_recompile_and_hot_swap(self, loop_source):
        with _adaptive_service(
            warmup=1, threshold=0.2, min_samples=4
        ) as service:
            # Phase one: long loops; promote under that profile.
            service.handle(_loop_request(loop_source, 12))
            assert service.adapt.drain(timeout=30.0)
            state = _only_state(service)
            assert state.binding.generation == 1
            first_key = state.binding.key
            # Phase two: the loop collapses; every response must stay
            # correct while the detector notices and swaps underneath.
            expected = run_function(prepare(build_while_loop()), [2, 3, 0])
            for _ in range(10):
                response = service.handle(_loop_request(loop_source, 0))
                assert response.status == "ok"
                assert response.observable() == expected.observable()
            assert service.adapt.drain(timeout=30.0)
            counters = service.metrics.to_dict()["counters"]
            assert counters["drift_events"] >= 1
            assert counters["hot_swaps"] >= 1
            binding = state.binding
            assert binding.generation >= 2
            assert binding.key != first_key  # new extensional address
            assert state.previous is not None  # rollback target retained
            assert state.previous.key == first_key
            # The swapped artifact still answers exactly like the
            # reference interpreter.
            after = service.handle(_loop_request(loop_source, 0))
            assert after.served_by == "memory"
            assert after.observable() == expected.observable()

    def test_swapped_artifact_matches_a_from_scratch_build(self, loop_source):
        with _adaptive_service(
            warmup=1, threshold=0.2, min_samples=4
        ) as service:
            service.handle(_loop_request(loop_source, 12))
            assert service.adapt.drain(timeout=30.0)
            for _ in range(10):
                service.handle(_loop_request(loop_source, 0))
            assert service.adapt.drain(timeout=30.0)
            state = _only_state(service)
            binding = state.binding
            assert binding.generation >= 2
            # Rebuild cold under the exact profile the swap recorded:
            # same content address, bit-identical answers.
            fresh = build_artifact(
                state.prepared, state.config, key=binding.key,
                engine=state.engine, profile=binding.profile,
            )
            assert not fresh.degraded
            assert fresh.key == binding.key
            from repro.serve.server import execute_artifact
            for n in (0, 6, 12):
                args = (2, 3, n)
                swapped = execute_artifact(binding.artifact, args, 2_000_000)
                rebuilt = execute_artifact(fresh, args, 2_000_000)
                assert swapped.observable() == rebuilt.observable()
                assert swapped.dynamic_cost == rebuilt.dynamic_cost
                assert swapped.steps == rebuilt.steps
            served = service.handle(_loop_request(loop_source, 0))
            assert served.key == binding.key

    def test_stationary_traffic_never_swaps(self, loop_source):
        with _adaptive_service(
            warmup=1, threshold=0.05, min_samples=2
        ) as service:
            service.handle(_loop_request(loop_source, 8))
            assert service.adapt.drain(timeout=30.0)
            for _ in range(12):
                assert service.handle(
                    _loop_request(loop_source, 8)
                ).status == "ok"
            assert service.adapt.drain(timeout=30.0)
            counters = service.metrics.to_dict()["counters"]
            assert counters["drift_events"] == 0
            assert counters["hot_swaps"] == 0
            assert _only_state(service).binding.generation == 1


class TestHotSwapAtomicity:
    def test_concurrent_requests_racing_swaps_stay_correct(self, loop_source):
        """Hammer handle() from several threads while bindings are
        swapped under them: every response is ok and bit-identical to
        the reference, and every served key is one of the two published
        bindings — never a torn state."""
        with _adaptive_service(warmup=1, min_samples=10**6) as service:
            service.handle(_loop_request(loop_source, 6))
            assert service.adapt.drain(timeout=30.0)
            state = _only_state(service)
            manager = service.adapt
            # Two alternative artifacts compiled under different phases.
            profiles = []
            for n in (6, 0):
                result = run_function(state.prepared, [2, 3, n])
                profiles.append(result.profile)
            alternates = []
            for profile in profiles:
                key = artifact_key(
                    state.prepared, state.config,
                    engine=state.engine, profile=profile,
                )
                alternates.append((key, build_artifact(
                    state.prepared, state.config, key=key,
                    engine=state.engine, profile=profile,
                ), profile))
            valid_keys = {key for key, _, _ in alternates}
            expected = run_function(
                prepare(build_while_loop()), [2, 3, 6]
            ).observable()

            failures: list = []
            stop = threading.Event()

            def hammer() -> None:
                request = _loop_request(loop_source, 6)
                while not stop.is_set():
                    response = service.handle(request)
                    if (
                        response.status != "ok"
                        or response.observable() != expected
                    ):
                        failures.append(response)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            swaps_before = service.metrics.get("hot_swaps")
            try:
                for i in range(60):
                    key, artifact, profile = alternates[i % 2]
                    manager._bind(
                        state, key, artifact, profile, baseline={},
                        promotion=False,
                    )
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
            assert not failures
            assert service.metrics.get("hot_swaps") - swaps_before == 60
            assert state.binding.key in valid_keys
            # The swapped-in program keeps feeding the live profile.
            samples_before = state.live.samples
            assert service.handle(_loop_request(loop_source, 6)).status == "ok"
            assert state.live.samples == samples_before + 1


class TestOperatorVerbs:
    def _promoted_service(self, loop_source) -> CompileService:
        service = _adaptive_service(warmup=1, threshold=0.2, min_samples=4)
        service.handle(_loop_request(loop_source, 12))
        assert service.adapt.drain(timeout=30.0)
        for _ in range(10):
            service.handle(_loop_request(loop_source, 0))
        assert service.adapt.drain(timeout=30.0)
        return service

    def test_rollback_restores_the_previous_binding(self, loop_source):
        with self._promoted_service(loop_source) as service:
            state = _only_state(service)
            swapped_key = state.binding.key
            previous_key = state.previous.key
            assert service.adapt.rollback(state.skey)
            assert state.binding.key == previous_key
            assert state.previous.key == swapped_key  # roll forward works
            assert service.metrics.get("rollbacks") == 1
            # Still serving, still correct.
            expected = run_function(prepare(build_while_loop()), [2, 3, 0])
            response = service.handle(_loop_request(loop_source, 0))
            assert response.status == "ok"
            assert response.observable() == expected.observable()

    def test_rollback_without_history_is_a_noop(self, loop_source):
        with _adaptive_service(warmup=1) as service:
            service.handle(_loop_request(loop_source, 8))
            assert service.adapt.drain(timeout=30.0)
            state = _only_state(service)
            assert not service.adapt.rollback(state.skey)
            assert not service.adapt.rollback("no-such-key")
            assert service.metrics.get("rollbacks") == 0

    def test_demote_returns_the_key_to_the_interpreter(self, loop_source):
        with self._promoted_service(loop_source) as service:
            state = _only_state(service)
            assert service.adapt.demote(state.skey)
            assert state.binding is None
            assert state.hits == 0
            assert service.metrics.get("tier_demotions") == 1
            response = service.handle(_loop_request(loop_source, 0))
            assert response.status == "ok"
            assert response.served_by == "interp"
            assert not service.adapt.demote("no-such-key")

    def test_describe_reports_tier_and_generation(self, loop_source):
        with self._promoted_service(loop_source) as service:
            (row,) = service.adapt.describe()
            assert row["variant"] == "mc-ssapre"
            assert row["tier"] == "compiled"
            assert row["generation"] >= 2
            assert row["structural_key"] == _only_state(service).skey


class TestProbesProfiling:
    """AdaptConfig(profiling="probes"): sparse live profiling after swap."""

    def test_unknown_profiling_mode_rejected(self):
        with pytest.raises(ValueError):
            AdaptConfig(profiling="sideways")

    def test_promoted_binding_feeds_probe_samples(self, loop_source):
        service = _adaptive_service(warmup=1, profiling="probes")
        with service:
            service.handle(_loop_request(loop_source, 8))
            assert service.adapt.drain(timeout=30.0)
            state = _only_state(service)
            assert state.binding is not None
            # The promotion build ran in sparse mode end to end.
            assert state.binding.artifact.profiling == "probes"
            assert state.binding.artifact.program.probes is not None
            before = service.metrics.get("live_probe_samples")
            response = service.handle(_loop_request(loop_source, 8))
            assert response.status == "ok"
            assert response.served_by == "memory"
            assert service.metrics.get("live_probe_samples") == before + 1
            assert service.metrics.get("profile_reconstructions") >= 1
            # Reconstructed counts feed the live profile like full ones.
            assert state.live.samples >= 1
