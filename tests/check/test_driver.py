"""The fuzz driver: case construction, classification, determinism."""

from repro.check.driver import (
    SHAPES,
    SOLVER_TWIN,
    DriverStats,
    build_case,
    check_case,
    failure_predicate,
    run_case,
    run_driver,
    spec_for_shape,
)
from repro.check.oracles import ORACLE_NAMES, OracleFailure
from repro.ir.printer import format_function

from tests.check.conftest import crashing_variant, dangling_jump_variant

import pytest


class TestSpecs:
    def test_both_shapes_have_trapping_knobs_on(self):
        for shape in SHAPES:
            spec = spec_for_shape(shape, 0)
            assert spec.trapping_density > 0
            assert spec.trapping_hot_prob > 0

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            spec_for_shape("spec2017", 0)

    def test_specs_deterministic_in_seed(self):
        assert spec_for_shape("cint", 7) == spec_for_shape("cint", 7)
        assert spec_for_shape("cint", 7) != spec_for_shape("cint", 8)


class TestBuildCase:
    def test_builds_all_variants_and_inputs(self):
        result = build_case(0, "cint")
        assert result.skipped is None
        case = result.case
        assert set(case.compiled) == {
            "none", "ssapre", "ssapre-sp", "mc-ssapre", "mc-pre",
            "ispre", "lcm", "ssapre-iter", "mc-ssapre-iter",
            "mc-ssapre-lospre",
        }
        assert len(case.inputs) == 3
        assert len(case.control_runs) == 3
        for runs in case.variant_runs.values():
            assert len(runs) == 3

    def test_iterative_twins_optional(self):
        # The solver twin is independent of the iterative knob: it rides
        # along whenever mc-ssapre itself is compiled.
        result = build_case(0, "cint", iterative=False)
        assert set(result.case.compiled) == {
            "none", "ssapre", "ssapre-sp", "mc-ssapre", "mc-pre",
            "ispre", "lcm", "mc-ssapre-lospre",
        }

    def test_solver_twin_matches_main_compile(self):
        case = build_case(0, "cint").case
        assert format_function(case.compiled[SOLVER_TWIN]) == (
            format_function(case.compiled["mc-ssapre"])
        )

    def test_forced_lospre_produces_identical_case(self):
        mincut = build_case(0, "cint", solver="mincut").case
        lospre = build_case(0, "cint", solver="lospre").case
        for name in mincut.compiled:
            assert format_function(lospre.compiled[name]) == (
                format_function(mincut.compiled[name])
            ), name

    def test_budget_exhaustion_skips_instead_of_failing(self):
        result = build_case(0, "cfp", max_steps=5)
        assert result.skipped is not None
        assert result.case is None
        assert result.passed  # a skip is not a finding

    def test_crash_classification(self):
        result = build_case(0, "cint", extra_variants={"boom": crashing_variant})
        kinds = {(f.variant, f.kind) for f in result.compile_failures}
        assert ("boom", "crash") in kinds

    def test_verifier_reject_classification(self):
        result = build_case(
            0, "cint", extra_variants={"dangling": dangling_jump_variant}
        )
        kinds = {(f.variant, f.kind) for f in result.compile_failures}
        assert ("dangling", "verifier-reject") in kinds


class TestDeterminism:
    def test_same_seed_same_case(self):
        a = run_case(3, "cint")
        b = run_case(3, "cint")
        assert format_function(a.case.source) == format_function(b.case.source)
        assert a.case.inputs == b.case.inputs
        assert [f.to_dict() for f in a.failures] == [
            f.to_dict() for f in b.failures
        ]
        for variant in a.case.compiled:
            assert format_function(a.case.compiled[variant]) == format_function(
                b.case.compiled[variant]
            )

    def test_shapes_actually_differ(self):
        cint = build_case(3, "cint").case
        cfp = build_case(3, "cfp").case
        assert format_function(cint.source) != format_function(cfp.source)


class TestRunDriver:
    def test_small_sweep_passes_clean(self):
        stats, failing = run_driver(3)
        assert failing == []
        assert stats.cases == 3 * len(SHAPES)
        assert stats.failures == 0
        assert set(stats.per_oracle) == {"compile", *ORACLE_NAMES}
        for checks, fails in stats.per_oracle.values():
            assert checks > 0
            assert fails == 0

    def test_explicit_seed_list_and_single_oracle(self):
        stats, failing = run_driver([5, 9], shapes=("cint",), oracles=("equiv",))
        assert stats.cases == 2
        assert set(stats.per_oracle) == {"compile", "equiv"}

    def test_unknown_oracle_rejected(self):
        result = build_case(0, "cint")
        with pytest.raises(ValueError, match="unknown oracle"):
            check_case(result, ("frobnicate",))

    def test_stats_to_dict_shape(self):
        stats, _ = run_driver(1, shapes=("cint",))
        d = stats.to_dict()
        assert set(d) == {
            "cases", "skipped", "failures", "per_oracle", "by_kind",
            "interrupted", "wall_time_s",
        }
        assert all(
            set(v) == {"checks", "failures"} for v in d["per_oracle"].values()
        )


class TestProfileValidation:
    """Flow-conservation checking of every fuzzed profile (schema v5)."""

    def test_control_profiles_conserve_flow(self):
        result = build_case(2, "cfp")
        assert result.compile_failures == []
        entry = result.case.prepared.entry
        for run in result.case.control_runs:
            assert run.profile.check_flow_conservation(entry) == []

    def test_flow_violation_classifies_under_profile_bucket(self):
        result = build_case(0, "cint")
        result.compile_failures.append(OracleFailure(
            "profile", "control", "flow-violation", "synthetic"
        ))
        stats = DriverStats()
        stats.record(result)
        assert stats.per_oracle["profile"] == [0, 1]
        assert stats.by_kind["flow-violation"] == 1

    def test_profile_failures_replay_without_oracles(self):
        # Like "compile" findings, "profile" findings are recorded by
        # build_case itself — the reducer predicate must not ask for a
        # named oracle that does not exist.
        failure = OracleFailure(
            "profile", "control", "flow-violation", "synthetic"
        )
        predicate = failure_predicate(0, "cint", failure)
        source = build_case(0, "cint").case.source
        # A healthy program does not reproduce the synthetic violation.
        assert predicate(source) is False
