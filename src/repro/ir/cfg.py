"""Control-flow graph views over a :class:`~repro.ir.function.Function`.

A :class:`CFG` is an immutable snapshot: it is cheap to build (one pass over
the blocks) and is rebuilt after any transform that changes control flow.
This deliberately avoids incremental-update bugs — functions in this code
base are small enough that rebuilding is never the bottleneck.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.ir.function import BasicBlock, Function


class CFG:
    """Predecessor/successor view plus traversal orders."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.entry = func.entry
        if self.entry is None:
            raise ValueError("function has no entry block")
        self.succs: dict[str, tuple[str, ...]] = {}
        self.preds: dict[str, list[str]] = {label: [] for label in func.blocks}
        for label, block in func.blocks.items():
            succs = block.successors()
            for succ in succs:
                if succ not in func.blocks:
                    raise ValueError(
                        f"block {label!r} branches to unknown label {succ!r}"
                    )
            self.succs[label] = succs
            for succ in succs:
                self.preds[succ].append(label)
        self._rpo: list[str] | None = None

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def successors(self, label: str) -> tuple[str, ...]:
        return self.succs[label]

    def predecessors(self, label: str) -> list[str]:
        return self.preds[label]

    def edges(self) -> Iterator[tuple[str, str]]:
        for label, succs in self.succs.items():
            for succ in succs:
                yield (label, succ)

    def exit_labels(self) -> list[str]:
        """Blocks whose terminator is a return (no successors)."""
        return [label for label, succs in self.succs.items() if not succs]

    def is_critical_edge(self, src: str, dst: str) -> bool:
        """True when *src* has >1 successors and *dst* has >1 predecessors.

        Distinct successor labels are what matters: a conditional branch with
        both arms equal is effectively unconditional.
        """
        return len(set(self.succs[src])) > 1 and len(self.preds[dst]) > 1

    # ------------------------------------------------------------------
    # Traversal orders
    # ------------------------------------------------------------------
    def reverse_postorder(self) -> list[str]:
        """Reverse postorder over blocks reachable from the entry."""
        if self._rpo is None:
            seen: set[str] = set()
            postorder: list[str] = []
            # Iterative DFS to avoid Python recursion limits on deep CFGs.
            assert self.entry is not None
            stack: list[tuple[str, Iterator[str]]] = []
            seen.add(self.entry)
            stack.append((self.entry, iter(self.succs[self.entry])))
            while stack:
                label, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(label)
                    stack.pop()
            self._rpo = postorder[::-1]
        return list(self._rpo)

    def reachable(self) -> set[str]:
        return set(self.reverse_postorder())

    def blocks_in_rpo(self) -> Iterator[BasicBlock]:
        for label in self.reverse_postorder():
            yield self.func.blocks[label]


def unreachable_blocks(func: Function) -> set[str]:
    """Labels of blocks not reachable from the entry."""
    cfg = CFG(func)
    return set(func.blocks) - cfg.reachable()


def remove_unreachable_blocks(func: Function) -> list[str]:
    """Delete unreachable blocks and prune dangling phi arguments.

    Returns the labels removed (in no particular order).
    """
    dead = unreachable_blocks(func)
    if not dead:
        return []
    for label in dead:
        del func.blocks[label]
    for block in func:
        for phi in block.phis:
            for gone in dead & set(phi.args):
                del phi.args[gone]
    func.mark_cfg_mutated()
    return sorted(dead)


def edge_key(src: str, dst: str) -> tuple[str, str]:
    """Canonical dictionary key for a CFG edge."""
    return (src, dst)


def count_edges(cfg: CFG, labels: Iterable[str] | None = None) -> int:
    """Number of CFG edges, optionally restricted to a subset of blocks."""
    if labels is None:
        return sum(len(s) for s in cfg.succs.values())
    keep = set(labels)
    return sum(
        1 for src, dst in cfg.edges() if src in keep and dst in keep
    )
