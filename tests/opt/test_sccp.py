"""Tests for sparse conditional constant propagation."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Jump
from repro.ir.values import Const
from repro.opt.sccp import sparse_conditional_constant_propagation as sccp
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.ssa_verifier import verify_ssa


def test_requires_ssa(straightline):
    with pytest.raises(ValueError):
        sccp(straightline)


def test_straightline_folding():
    b = FunctionBuilder("f")
    b.block("entry")
    b.copy("x", 6)
    b.copy("y", 7)
    b.assign("z", "mul", "x", "y")
    b.ret("z")
    func = b.build()
    construct_ssa(func)
    result = sccp(func)
    assert result.constants_found >= 3
    term = func.blocks["entry"].terminator
    assert term.value == Const(42)


def test_constant_branch_folded_and_dead_arm_removed():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.copy("flag", 1)
    b.branch("flag", "taken", "dead")
    b.block("taken")
    b.assign("r", "add", "a", 1)
    b.ret("r")
    b.block("dead")
    b.assign("r", "add", "a", 999)
    b.ret("r")
    func = b.build()
    construct_ssa(func)
    result = sccp(func)
    assert result.branches_folded == 1
    assert result.blocks_removed == 1
    assert "dead" not in func.blocks
    assert isinstance(func.blocks["entry"].terminator, Jump)
    verify_ssa(func)
    assert run_function(func, [5]).return_value == 6


def test_phi_over_executable_edges_only():
    """The dead arm's constant must not pollute the phi's meet — the
    whole point of *conditional* constant propagation."""
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.copy("flag", 0)
    b.branch("flag", "dead", "taken")
    b.block("dead")
    b.copy("x", 111)
    b.jump("join")
    b.block("taken")
    b.copy("x", 7)
    b.jump("join")
    b.block("join")
    b.assign("r", "add", "x", "a")
    b.ret("r")
    func = b.build()
    construct_ssa(func)
    result = sccp(func)
    # x is the constant 7: only the executable edge feeds the phi.
    assert run_function(func, [1]).return_value == 8
    entry_add = func.blocks["join"].body[0]
    assert entry_add.rhs.left == Const(7)


def test_loop_counter_stays_varying(while_loop):
    construct_ssa(while_loop)
    snapshot = [
        run_function(copy.deepcopy(while_loop), [2, 3, n]).observable()
        for n in (0, 4)
    ]
    sccp(while_loop)
    verify_ssa(while_loop)
    got = [run_function(while_loop, [2, 3, n]).observable() for n in (0, 4)]
    assert got == snapshot


def test_constant_through_phi_loop():
    """A loop-carried value that never changes folds to its constant."""
    b = FunctionBuilder("f", params=["n"])
    b.block("entry")
    b.copy("k", 5)
    b.copy("i", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.copy("k", "k")  # re-binds k to itself each iteration
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.assign("r", "add", "k", 1)
    b.ret("r")
    func = b.build()
    construct_ssa(func)
    sccp(func)
    term_block = func.blocks["done"]
    assert term_block.body[-1].rhs == Const(6) or run_function(
        func, [3]
    ).return_value == 6


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=30_000))
def test_semantics_preserved(seed):
    spec = ProgramSpec(name="sccp", seed=seed, max_depth=2)
    prog = generate_program(spec)
    construct_ssa(prog.func)
    args = random_args(spec, 1)
    expected = run_function(copy.deepcopy(prog.func), args)
    sccp(prog.func)
    verify_ssa(prog.func)
    after = run_function(prog.func, args)
    assert after.observable() == expected.observable()
    assert after.dynamic_cost <= expected.dynamic_cost


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=30_000))
def test_composes_with_pre(seed):
    """SCCP -> MC-SSAPRE -> copyprop -> DCE, all semantics-preserving."""
    from repro.core.mcssapre.driver import run_mc_ssapre
    from repro.opt.copyprop import propagate_copies
    from repro.opt.dce import eliminate_dead_code
    from repro.pipeline import prepare

    spec = ProgramSpec(name="pipe", seed=seed, max_depth=2)
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    args = random_args(spec, 1)
    expected = run_function(prepared, args)
    work = copy.deepcopy(prepared)
    construct_ssa(work)
    sccp(work)
    run_mc_ssapre(work, expected.profile.nodes_only(), validate=True)
    propagate_copies(work)
    eliminate_dead_code(work)
    verify_ssa(work)
    after = run_function(work, args)
    assert after.observable() == expected.observable()
    assert after.dynamic_cost <= expected.dynamic_cost
