"""The ``passes`` artifact: per-pass observability for the pipeline.

``python -m repro.bench passes`` compiles one benchmark through every
variant's pipeline and prints each :class:`~repro.passes.manager.PassReport`
— per-pass wall time, IR size before/after, and analysis-cache hit/miss
deltas.  The SSA variants demonstrate the cache paying off: SSA
construction computes the CFG, dominator tree and dominance frontiers
(misses), and because instruction rewriting preserves the CFG, the PRE
stage's FRG construction reuses all three (hits).  The trailing
``mc-ssapre-iter`` report compiles with the rank-ordered iterative
worklist and prints per-round statistics (classes processed, changed,
insertions, reloads, fixpoint-vs-bound).

The artifact also times ``Function.clone`` against ``copy.deepcopy`` on
the same prepared function — the input-copy fast path the compiler uses
on every compile.
"""

from __future__ import annotations

import copy
import json
import time

from repro.bench.workloads import load_workload
from repro.core.worklist import DEFAULT_ITERATIVE_ROUNDS
from repro.passes.compiler import VARIANTS, compile as compile_func
from repro.pipeline import prepare
from repro.profiles.interp import run_function

#: Compiles per artifact run; one benchmark keeps the artifact quick.
DEFAULT_BENCHMARK = "bwaves"
_CLONE_REPS = 20


def clone_benchmark(func, reps: int = _CLONE_REPS) -> dict:
    """Time ``Function.clone`` vs ``copy.deepcopy`` on *func*."""
    t0 = time.perf_counter()
    for _ in range(reps):
        func.clone()
    clone_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        copy.deepcopy(func)
    deepcopy_s = (time.perf_counter() - t0) / reps
    return {
        "reps": reps,
        "clone_ms": round(clone_s * 1e3, 3),
        "deepcopy_ms": round(deepcopy_s * 1e3, 3),
        "speedup": round(deepcopy_s / clone_s, 2) if clone_s else float("inf"),
    }


def passes_artifact(
    names: tuple[str, ...] = (DEFAULT_BENCHMARK,),
    variants: tuple[str, ...] = VARIANTS,
    seed_offset: int = 0,
    validate: bool = False,
    as_json: bool = False,
    solver: str = "mincut",
) -> str:
    """Render the per-pass report for each benchmark and variant.

    ``solver`` picks the mc-ssapre speculation back end
    ("mincut"/"lospre"/"auto"); which solver actually ran shows up in
    the mc-ssapre stage's payload summary.
    """
    out: list[dict] = []
    for name in names:
        workload = load_workload(name, seed_offset)
        prepared = prepare(workload.program.func)
        train = run_function(prepared, workload.train_args)
        entry: dict = {
            "benchmark": name,
            "clone_vs_deepcopy": clone_benchmark(prepared),
            "reports": [],
        }
        for variant in variants:
            compiled = compile_func(
                prepared, variant, train.profile, validate=validate,
                solver=solver if variant == "mc-ssapre" else "mincut",
            )
            assert compiled.report is not None
            entry["reports"].append(compiled.report)
        if "mc-ssapre" in variants:
            # The iterative twin, so the artifact shows per-round stats
            # (classes processed, insertions, reloads, fixpoint).
            compiled = compile_func(
                prepared, "mc-ssapre", train.profile, validate=validate,
                rounds=DEFAULT_ITERATIVE_ROUNDS, solver=solver,
            )
            assert compiled.report is not None
            compiled.report.variant = "mc-ssapre-iter"
            entry["reports"].append(compiled.report)
        out.append(entry)
    if as_json:
        return json.dumps(
            [
                {
                    **entry,
                    "reports": [r.to_dict() for r in entry["reports"]],
                }
                for entry in out
            ],
            indent=2,
        )
    lines: list[str] = []
    for entry in out:
        cb = entry["clone_vs_deepcopy"]
        lines.append(f"benchmark: {entry['benchmark']}")
        lines.append(
            f"  input copy: clone {cb['clone_ms']:.3f} ms vs deepcopy "
            f"{cb['deepcopy_ms']:.3f} ms ({cb['speedup']:.1f}x faster, "
            f"avg of {cb['reps']} reps)"
        )
        lines.append("")
        for report in entry["reports"]:
            lines.append(report.render())
            lines.append("")
    return "\n".join(lines).rstrip()
