"""Tests for critical-edge splitting and while->do-while restructuring."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import CFG
from repro.ir.transforms import restructure_while_loops, split_critical_edges
from repro.ir.verifier import has_critical_edges, verify_function
from repro.profiles.interp import run_function


def build_critical() -> "FunctionBuilder":
    b = FunctionBuilder("f", params=["c", "x"])
    b.block("entry")
    b.branch("c", "mid", "join")  # entry->join is critical
    b.block("mid")
    b.assign("x", "add", "x", 1)
    b.jump("join")
    b.block("join")
    b.ret("x")
    return b


class TestSplitCriticalEdges:
    def test_removes_all_critical_edges(self):
        func = build_critical().build()
        inserted = split_critical_edges(func)
        assert len(inserted) == 1
        assert not has_critical_edges(func)
        verify_function(func)

    def test_preserves_semantics(self):
        func = build_critical().build()
        before = run_function(copy.deepcopy(func), [1, 5])
        split_critical_edges(func)
        after = run_function(func, [1, 5])
        assert before.observable() == after.observable()
        before0 = run_function(build_critical().build(), [0, 5])
        after0 = run_function(func, [0, 5])
        assert before0.observable() == after0.observable()

    def test_noop_when_no_critical_edges(self, diamond):
        assert split_critical_edges(diamond) == []

    def test_phi_args_rekeyed(self):
        func = build_critical().build()
        from repro.ssa.construct import construct_ssa

        split_critical_edges(func)
        construct_ssa(func)
        verify_function(func)
        join = func.blocks["join"]
        assert join.phis, "join should merge x"
        for phi in join.phis:
            assert set(phi.args) == set(CFG(func).predecessors("join"))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_idempotent_on_generated_programs(self, seed):
        prog = generate_program(ProgramSpec(name="s", seed=seed, max_depth=2))
        func = prog.func
        split_critical_edges(func)
        assert not has_critical_edges(func)
        assert split_critical_edges(func) == []
        verify_function(func)


class TestRestructureWhileLoops:
    def test_loop_rotated(self, while_loop):
        clones = restructure_while_loops(while_loop)
        assert clones, "the while loop should be rotated"
        verify_function(while_loop)
        cfg = CFG(while_loop)
        # The original header is now reached only from inside the loop.
        preds = set(cfg.predecessors("head"))
        assert preds == {"body"}

    def test_zero_trip_loop_semantics(self, while_loop):
        before = run_function(copy.deepcopy(while_loop), [2, 3, 0])
        restructure_while_loops(while_loop)
        after = run_function(while_loop, [2, 3, 0])
        assert before.observable() == after.observable()

    def test_multi_trip_semantics(self, while_loop):
        before = run_function(copy.deepcopy(while_loop), [2, 3, 9])
        restructure_while_loops(while_loop)
        after = run_function(while_loop, [2, 3, 9])
        assert before.observable() == after.observable()

    def test_body_no_longer_guarded_by_header_on_entry(self, while_loop):
        """After rotation, entering with n>0 skips the in-loop test once."""
        restructure_while_loops(while_loop)
        run = run_function(while_loop, [2, 3, 4])
        # The clone executes once; the original header once per iteration.
        clone_label = next(l for l in while_loop.blocks if l.startswith("head_test"))
        assert run.profile.node(clone_label) == 1
        assert run.profile.node("head") == 4

    def test_rejects_ssa_input(self, while_loop):
        from repro.ssa.construct import construct_ssa

        construct_ssa(while_loop)
        with pytest.raises(ValueError):
            restructure_while_loops(while_loop)

    def test_entry_header_loop(self):
        """A loop whose header is the function entry block."""
        b = FunctionBuilder("f", params=["n"])
        b.block("head")
        b.assign("n", "sub", "n", 1)
        b.assign("c", "gt", "n", 0)
        b.branch("c", "head", "done")
        b.block("done")
        b.ret("n")
        func = b.build()
        before = run_function(copy.deepcopy(func), [5])
        restructure_while_loops(func)
        verify_function(func)
        after = run_function(func, [5])
        assert before.observable() == after.observable()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_generated_program_semantics_preserved(self, seed):
        spec = ProgramSpec(name="r", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 3)
        before = run_function(copy.deepcopy(prog.func), args)
        clones = restructure_while_loops(prog.func)
        verify_function(prog.func)
        after = run_function(prog.func, args)
        assert before.observable() == after.observable()
