"""Delta-debugging reduction of a failing IR test case.

Given a source function and a *predicate* ("does the interesting failure
still reproduce on this candidate?"), the reducer greedily applies seven
shrinking strategies until none makes progress:

1. **straighten** — rewrite a conditional branch into an unconditional
   jump (both arms are tried), which unrolls loops to zero trips and
   collapses diamonds to one arm;
2. **drop-block** — delete one block wholesale, retargeting its
   predecessors to one of its successors;
3. **inline-jump** — absorb a jump-only edge so single-predecessor
   blocks (including return blocks, which drop-block cannot touch)
   disappear into their predecessor;
4. **drop-store** — delete one ``store`` statement; tried before the
   generic statement drop because removing a store deletes a whole
   may-alias kill from every load class at once, which typically
   collapses the memory side of a failure in a few edits;
5. **drop-instruction** — delete one body statement;
6. **constify** — replace a variable operand with the constant ``1``,
   detaching the statement from the dataflow that feeds it;
7. **constify-index** — replace a variable ``load``/``store`` index with
   the constant ``0`` (in bounds for every declared array), which both
   detaches the index dataflow and turns a may-trap load class into a
   provably in-bounds, speculatable one.

Every candidate is verified (:func:`repro.ir.verifier.verify_function`)
before the — much more expensive — predicate runs, and every accepted
candidate must *still* satisfy the predicate, so the invariant "the
current function reproduces the failure" holds at every step.  The final
function is emitted as text via the printer and checked to round-trip
through the parser structurally unchanged
(:mod:`repro.ir.structural`), so the ``.ir`` artifact on disk is exactly
the function that failed.

The strategies only ever *remove* or *simplify*, so reduction terminates:
each accepted edit strictly decreases the tuple (blocks, statements,
variable operands), which is a well-founded order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Store,
    retarget,
)
from repro.ir.structural import structural_diff
from repro.ir.values import Const, Var
from repro.ir.verifier import VerificationError, verify_function
from repro.lang.parser import parse_function
from repro.ir.printer import format_function

#: ``predicate(candidate) -> True`` when the failure still reproduces.
Predicate = Callable[[Function], bool]


@dataclass
class ReductionResult:
    """The shrunk function plus an audit trail of the search."""

    func: Function
    ir_text: str
    rounds: int = 0
    attempts: int = 0
    accepted: int = 0
    #: (strategy, description) of every accepted edit, in order.
    trail: list[tuple[str, str]] = field(default_factory=list)

    @property
    def blocks(self) -> int:
        return len(self.func)

    @property
    def statements(self) -> int:
        return self.func.statement_count()


def _size(func: Function) -> tuple[int, int, int]:
    """The well-founded measure each accepted edit must decrease."""
    var_operands = 0
    for block in func:
        for stmt in block.body:
            if isinstance(stmt, Assign) and isinstance(stmt.rhs, BinOp):
                var_operands += isinstance(stmt.rhs.left, Var)
                var_operands += isinstance(stmt.rhs.right, Var)
            elif isinstance(stmt, Assign) and isinstance(stmt.rhs, Load):
                var_operands += isinstance(stmt.rhs.index, Var)
            elif isinstance(stmt, Store):
                var_operands += isinstance(stmt.index, Var)
                var_operands += isinstance(stmt.value, Var)
    return (len(func), func.statement_count(), var_operands)


# ----------------------------------------------------------------------
# Candidate generators.  Each yields (description, candidate) pairs; the
# candidate is always a fresh clone, never the input.
# ----------------------------------------------------------------------
def _straighten_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    for label, block in func.blocks.items():
        if not isinstance(block.terminator, CondJump):
            continue
        for target in (block.terminator.false_target,
                       block.terminator.true_target):
            candidate = func.clone()
            candidate.blocks[label].terminator = Jump(target)
            candidate.mark_cfg_mutated()
            remove_unreachable_blocks(candidate)
            yield f"straighten {label} -> {target}", candidate


def _drop_block_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    for label, block in func.blocks.items():
        if label == func.entry:
            continue
        successors = [s for s in block.successors() if s != label]
        if not successors:
            continue  # a return block; straighten/drop-stmt shrink it
        for repl in dict.fromkeys(successors):  # unique, order-preserving
            candidate = func.clone()
            for other in candidate:
                if label in other.terminator.successors():
                    retarget(other.terminator, label, repl)
            candidate.remove_block(label)
            remove_unreachable_blocks(candidate)
            yield f"drop block {label} -> {repl}", candidate


def _inline_jump_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    """Absorb a ``jump``-only edge: the predecessor takes over the
    target's body and terminator.  Shrinks (via the size guard) exactly
    when the target had that single predecessor and disappears."""
    from repro.ir.function import _clone_statement, _clone_terminator

    for label, block in func.blocks.items():
        term = block.terminator
        if not isinstance(term, Jump) or term.target == label:
            continue
        target = func.blocks[term.target]
        if target.phis:
            continue
        candidate = func.clone()
        merged = candidate.blocks[label]
        merged.body.extend(_clone_statement(s) for s in target.body)
        merged.terminator = _clone_terminator(target.terminator)
        candidate.mark_cfg_mutated()
        remove_unreachable_blocks(candidate)
        yield f"inline {term.target} into {label}", candidate


def _drop_store_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    """Delete one store — one may-alias kill — per candidate."""
    for label, block in func.blocks.items():
        for idx in range(len(block.body) - 1, -1, -1):
            if not isinstance(block.body[idx], Store):
                continue
            candidate = func.clone()
            removed = candidate.blocks[label].body.pop(idx)
            candidate.mark_code_mutated()
            yield f"drop store {label}.body[{idx}] ({removed})", candidate


def _drop_stmt_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    for label, block in func.blocks.items():
        for idx in range(len(block.body) - 1, -1, -1):
            candidate = func.clone()
            removed = candidate.blocks[label].body.pop(idx)
            candidate.mark_code_mutated()
            yield f"drop {label}.body[{idx}] ({removed})", candidate


def _constify_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    for label, block in func.blocks.items():
        for idx, stmt in enumerate(block.body):
            if not (isinstance(stmt, Assign) and isinstance(stmt.rhs, BinOp)):
                continue
            for side in ("left", "right"):
                if not isinstance(getattr(stmt.rhs, side), Var):
                    continue
                candidate = func.clone()
                rhs = candidate.blocks[label].body[idx].rhs
                setattr(rhs, side, Const(1))
                candidate.mark_code_mutated()
                yield f"constify {label}.body[{idx}].{side}", candidate


def _constify_index_candidates(func: Function) -> Iterator[tuple[str, Function]]:
    """Replace a variable memory index with ``Const(0)`` (always in
    bounds — declared array lengths are >= 1), detaching the index
    dataflow and making the access class provably non-trapping."""
    for label, block in func.blocks.items():
        for idx, stmt in enumerate(block.body):
            if isinstance(stmt, Assign) and isinstance(stmt.rhs, Load):
                if not isinstance(stmt.rhs.index, Var):
                    continue
                candidate = func.clone()
                candidate.blocks[label].body[idx].rhs.index = Const(0)
                candidate.mark_code_mutated()
                yield f"constify-index {label}.body[{idx}] (load)", candidate
            elif isinstance(stmt, Store) and isinstance(stmt.index, Var):
                candidate = func.clone()
                candidate.blocks[label].body[idx].index = Const(0)
                candidate.mark_code_mutated()
                yield f"constify-index {label}.body[{idx}] (store)", candidate


#: Coarse-to-fine order: structural strategies first (they delete whole
#: regions per accepted edit), then statement- and operand-level polish.
#: drop-store runs before the generic statement drop: each accepted edit
#: removes an entire alias kill, which untangles memory failures fast.
STRATEGIES: tuple[tuple[str, Callable[[Function], Iterator]], ...] = (
    ("straighten", _straighten_candidates),
    ("drop-block", _drop_block_candidates),
    ("inline-jump", _inline_jump_candidates),
    ("drop-store", _drop_store_candidates),
    ("drop-stmt", _drop_stmt_candidates),
    ("constify", _constify_candidates),
    ("constify-index", _constify_index_candidates),
)


def _valid(candidate: Function) -> bool:
    try:
        verify_function(candidate)
    except VerificationError:
        return False
    return True


def reduce_function(
    func: Function,
    predicate: Predicate,
    *,
    max_rounds: int = 50,
    max_attempts: int = 20_000,
) -> ReductionResult:
    """Shrink *func* while *predicate* keeps returning True.

    The input is never mutated.  Raises :class:`ValueError` if the
    predicate rejects the *initial* function — a reducer pointed at a
    non-failure would otherwise happily shrink it to nothing.
    """
    current = func.clone()
    if not predicate(current):
        raise ValueError(
            "predicate does not hold on the unreduced function; "
            "nothing to shrink"
        )
    result = ReductionResult(func=current, ir_text="")
    for _ in range(max_rounds):
        result.rounds += 1
        progressed = False
        for strategy, generate in STRATEGIES:
            # Re-scan one strategy until it is exhausted on the current
            # function; each acceptance invalidates the old candidates.
            accepted_here = True
            while accepted_here and result.attempts < max_attempts:
                accepted_here = False
                for description, candidate in generate(current):
                    if result.attempts >= max_attempts:
                        break
                    if _size(candidate) >= _size(current):
                        continue  # not a shrink (e.g. nothing unreachable)
                    if not _valid(candidate):
                        continue
                    result.attempts += 1
                    if predicate(candidate):
                        current = candidate
                        result.accepted += 1
                        result.trail.append((strategy, description))
                        accepted_here = progressed = True
                        break
        if not progressed or result.attempts >= max_attempts:
            break

    result.func = current
    result.ir_text = format_function(current)
    reparsed = parse_function(result.ir_text)
    diffs = structural_diff(current, reparsed)
    if diffs:  # pragma: no cover - printer/parser round-trip is tested
        raise AssertionError(
            f"reduced function does not round-trip through the printer: "
            f"{diffs[:3]}"
        )
    return result
