"""The adaptation manager: the feedback loop from served runs to recompiles.

One :class:`AdaptationManager` per :class:`~repro.serve.server.CompileService`
(constructed when the service is given an :class:`AdaptConfig`).  It owns
one :class:`_KeyState` per *structural* key — the profile-free identity
from :func:`repro.serve.keys.structural_key` — and closes the loop the
paper leaves open: an artifact is only optimal w.r.t. the profile it was
compiled under, so the manager keeps comparing that profile against live
traffic and replaces the artifact when they part ways.

The life of a structural key:

1. **Tier 0 (interpreter).**  The first ``warmup`` hits run the
   reference interpreter over the *prepared* function — no compile is
   paid, and every run's node counts fold into the key's
   :class:`~repro.serve.adapt.live.LiveProfile` for free.
2. **Promotion.**  Once warm, a background build compiles the variant
   under the accumulated live profile (extensional — the counts
   themselves are hashed into the artifact's content address) and binds
   the artifact.  Requests are never blocked: they keep serving on the
   interpreter until the binding lands.
3. **Drift → hot swap.**  Every compiled-tier run folds its node counts
   (via the compiled back end's ``profile_hook``) and the
   :class:`~repro.serve.adapt.drift.DriftDetector` scores the live
   *run-weighted* distribution (each request one vote — see
   :meth:`~repro.serve.adapt.live.LiveProfile.mean_freq`) against the
   binding's baseline.  On drift, a background
   recompile under a fresh live snapshot builds a *new* content-addressed
   artifact and atomically swaps the binding — an immutable
   :class:`Binding` replaced by reference, so a racing request observes
   either the old artifact or the new one, never a half-swapped state.
   The previous binding is retained for :meth:`AdaptationManager.rollback`.

Builds are deduplicated twice: a per-key ``building`` flag collapses
concurrent drift events into one scheduled recompile, and the scheduled
build itself goes through the service's single-flight machinery
(:meth:`CompileService.build_keyed`), so an adapt build and a request
build racing on the same content key still compile exactly once.
Adapt builds run on the manager's own small executor so a build waiting
in single-flight can never deadlock the service's compile workers.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ir.function import Function
from repro.pipeline import PipelineConfig
from repro.profiles.interp import RunResult
from repro.profiles.profile import ExecutionProfile
from repro.serve.adapt.drift import (
    DEFAULT_MIN_SAMPLES,
    DEFAULT_THRESHOLD,
    DriftDetector,
)
from repro.serve.adapt.live import DEFAULT_MAX_WEIGHT, LiveProfile
from repro.serve.adapt.tier import DEFAULT_WARMUP, TierPolicy
from repro.serve.keys import artifact_key
from repro.serve.store import Artifact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.server import CompileService

__all__ = ["AdaptConfig", "Binding", "AdaptationManager"]


@dataclass(frozen=True)
class AdaptConfig:
    """Knobs of the adaptation tier (all bounded-sanity-checked)."""

    #: Interpreter runs before a key is promoted to a compiled artifact.
    warmup: int = DEFAULT_WARMUP
    #: Drift metric: "l1" (total variation) or "js" (Jensen–Shannon).
    metric: str = "l1"
    #: Divergence score at which drift fires, in (0, 1].
    threshold: float = DEFAULT_THRESHOLD
    #: Minimum live samples folded since the last (re)compile before the
    #: detector may fire — fresh bindings get a grace period.
    min_samples: int = DEFAULT_MIN_SAMPLES
    #: Live-profile weight budget before exponential decay halves it.
    max_weight: int = DEFAULT_MAX_WEIGHT
    #: Profiling mode for promoted/recompiled artifacts: "full" keeps
    #: classic per-edge counting; "probes" lowers compiled artifacts in
    #: sparse-instrumentation mode (repro.profiles.probes) so the live
    #: profile is fed by flow-conservation reconstructions — identical
    #: node frequencies, a fraction of the counter traffic.
    profiling: str = "full"

    def __post_init__(self) -> None:
        from repro.pipeline import PROFILING_MODES

        if self.profiling not in PROFILING_MODES:
            raise ValueError(
                f"unknown profiling mode {self.profiling!r}; "
                f"expected one of {PROFILING_MODES}"
            )

    def policy(self) -> TierPolicy:
        return TierPolicy(warmup=self.warmup)

    def detector(self) -> DriftDetector:
        return DriftDetector(
            metric=self.metric,
            threshold=self.threshold,
            min_samples=self.min_samples,
        )


@dataclass(frozen=True)
class Binding:
    """The live artifact of one structural key.  Immutable: a hot swap
    publishes a *new* binding object, so readers can never see a torn
    mix of old and new fields."""

    #: Content address of the bound artifact (profile included).
    key: str
    artifact: Artifact
    #: The mean per-run node distribution observed when the artifact was
    #: built — the drift baseline, run-weighted so it compares
    #: apples-to-apples with :meth:`LiveProfile.mean_freq`.  Empty for
    #: profile-free variants (never drift-checked).
    baseline: dict[str, float]
    #: The exact profile used for the build (``None`` = profile-free);
    #: kept so tests and benches can rebuild from scratch and prove the
    #: swapped artifact bit-identical.
    profile: ExecutionProfile | None
    #: 1 for the promotion build, +1 per hot swap.
    generation: int


class _KeyState:
    """Mutable per-structural-key state, guarded by its own lock.

    ``binding`` is read without the lock on the serve path (an atomic
    reference read of an immutable object); everything else is mutated
    under ``lock``.
    """

    __slots__ = (
        "skey", "prepared", "config", "engine", "max_steps",
        "lock", "live", "hits", "binding", "previous", "building",
    )

    def __init__(
        self,
        skey: str,
        prepared: Function,
        config: PipelineConfig,
        engine: str,
        max_steps: int,
        max_weight: int,
    ) -> None:
        self.skey = skey
        self.prepared = prepared
        self.config = config
        self.engine = engine
        self.max_steps = max_steps
        self.lock = threading.Lock()
        self.live = LiveProfile(max_weight=max_weight)
        self.hits = 0
        self.binding: Binding | None = None
        self.previous: Binding | None = None
        self.building = False


class AdaptationManager:
    """Live profiles, drift detection and hot swaps for one service."""

    def __init__(self, config: AdaptConfig, service: "CompileService") -> None:
        self.config = config
        self.service = service
        self.policy = config.policy()
        self.detector = config.detector()
        self._states: dict[str, _KeyState] = {}
        self._states_lock = threading.Lock()
        #: Dedicated build executor: an adapt build parked in the
        #: service's single-flight wait must not occupy (and potentially
        #: starve) the service's compile workers.
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-adapt"
        )
        self._pending = 0
        self._pending_cv = threading.Condition()
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._closed = True
        self._executor.shutdown(wait=True)

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until every scheduled background build has landed."""
        with self._pending_cv:
            return self._pending_cv.wait_for(
                lambda: self._pending == 0, timeout=timeout
            )

    def _note_spawn(self) -> None:
        with self._pending_cv:
            self._pending += 1

    def _note_done(self) -> None:
        with self._pending_cv:
            self._pending -= 1
            self._pending_cv.notify_all()

    # -- state ---------------------------------------------------------
    def state_for(
        self,
        skey: str,
        prepared: Function,
        config: PipelineConfig,
        engine: str,
        max_steps: int,
    ) -> _KeyState:
        """The (created-on-first-sight) state of one structural key."""
        with self._states_lock:
            state = self._states.get(skey)
            if state is None:
                state = _KeyState(
                    skey, prepared, config, engine, max_steps,
                    max_weight=self.config.max_weight,
                )
                self._states[skey] = state
            return state

    def state(self, skey: str) -> _KeyState | None:
        with self._states_lock:
            return self._states.get(skey)

    def describe(self) -> list[dict]:
        """JSON-safe per-key summary (tier, hits, samples, generation)."""
        with self._states_lock:
            states = list(self._states.values())
        rows = []
        for state in states:
            binding = state.binding
            rows.append({
                "structural_key": state.skey,
                "variant": state.config.variant,
                "tier": "compiled" if binding is not None else "interp",
                "hits": state.hits,
                "live_samples": state.live.samples,
                "generation": binding.generation if binding else 0,
            })
        return rows

    # -- the feedback loop ---------------------------------------------
    def _fold(self, state: _KeyState, node_freq, probed: bool = False) -> None:
        """Fold one run's node counts into the key's live profile.

        This is also the closure installed as the compiled program's
        ``profile_hook``: it reads ``state.live`` at call time, so a hot
        swap (which resets the accumulator) retargets every in-flight
        hook automatically.  ``probed`` marks counts that arrived as a
        flow-conservation reconstruction from sparse probes rather than
        full counting — same numbers, cheaper collection — so operators
        can see which profiling tier fed the live profile.
        """
        state.live.fold(node_freq)
        self.service.metrics.inc("live_samples")
        if probed:
            self.service.metrics.inc("live_probe_samples")
            self.service.metrics.inc("profile_reconstructions")

    def record_interp(self, state: _KeyState, result: RunResult) -> None:
        """Account one tier-0 (interpreter) run; maybe schedule promotion."""
        self._fold(state, result.profile.node_freq)
        with state.lock:
            state.hits += 1
            ready = (
                state.binding is None
                and not state.building
                and self.policy.should_promote(state.hits)
            )
            if ready:
                state.building = True
        if ready:
            self._spawn_build(state, promotion=True)

    def record_served(
        self, state: _KeyState, artifact: Artifact, result: RunResult
    ) -> None:
        """Account one compiled-tier run; maybe schedule a drift recompile.

        The fold itself already happened inside the run when the
        artifact carries a compiled program (its ``profile_hook`` is
        installed at bind time); degraded or reference-engine artifacts
        have no hook, so fold here.
        """
        if artifact.program is None or artifact.program.profile_hook is None:
            self._fold(state, result.profile.node_freq)
        binding = state.binding
        if binding is None or not binding.baseline:
            return  # raced a demotion, or profile-free: nothing to re-fit
        verdict = self.detector.check(
            binding.baseline, state.live.mean_freq(), state.live.samples
        )
        if not verdict.drifted:
            return
        with state.lock:
            if state.building or state.binding is not binding:
                return  # a recompile is already pending / just landed
            state.building = True
        self.service.metrics.inc("drift_events")
        self._spawn_build(state, promotion=False)

    # -- background builds ---------------------------------------------
    def _spawn_build(self, state: _KeyState, promotion: bool) -> None:
        self._note_spawn()
        try:
            self._executor.submit(self._background_build, state, promotion)
        except RuntimeError:  # executor shut down mid-request
            with state.lock:
                state.building = False
            self._note_done()

    def _background_build(self, state: _KeyState, promotion: bool) -> None:
        try:
            needs_profile = state.config.needs_profile
            profile = state.live.snapshot() if needs_profile else None
            # The drift baseline is captured at the same instant as the
            # build profile, but run-weighted (each request one vote) so
            # later comparisons are not drowned out by long runs.
            baseline = state.live.mean_freq() if needs_profile else {}
            key = artifact_key(
                state.prepared,
                state.config,
                engine=state.engine,
                profile=profile,
            )
            self.service.metrics.inc("recompiles")
            # profiling passed only when non-default so injected test
            # builds (which predate the knob) keep their signature.
            extra = (
                {"profiling": self.config.profiling}
                if self.config.profiling != "full"
                else {}
            )
            artifact = self.service.build_keyed(
                key,
                lambda: self.service._build(
                    state.prepared,
                    state.config,
                    key=key,
                    engine=state.engine,
                    profile=profile,
                    max_steps=state.max_steps,
                    **extra,
                ),
            )
            if artifact is None or artifact.degraded:
                # Never swap a broken artifact in; the interpreter (or
                # the previous binding) keeps serving correct answers.
                with state.lock:
                    state.building = False
                return
            self._bind(state, key, artifact, profile, baseline, promotion)
        except Exception:  # noqa: BLE001 - the loop must survive bad builds
            with state.lock:
                state.building = False
        finally:
            self._note_done()

    def _bind(
        self,
        state: _KeyState,
        key: str,
        artifact: Artifact,
        profile: ExecutionProfile | None,
        baseline: dict[str, float],
        promotion: bool,
    ) -> None:
        """Publish *artifact* as the key's live binding (the hot swap)."""
        if artifact.program is not None:
            # Wire live profiling into block dispatch before publication
            # so no compiled run can ever slip through unprofiled.
            probed = getattr(artifact.program, "probes", None) is not None
            artifact.program.profile_hook = (
                lambda freq, _state=state, _probed=probed: self._fold(
                    _state, freq, probed=_probed
                )
            )
        with state.lock:
            previous = state.binding
            state.binding = Binding(
                key=key,
                artifact=artifact,
                baseline=baseline,
                profile=profile,
                generation=previous.generation + 1 if previous else 1,
            )
            state.previous = previous
            # Restart accumulation against the new baseline: drift is
            # measured for the artifact now serving, not its ancestors.
            state.live = LiveProfile(max_weight=self.config.max_weight)
            state.building = False
        metrics = self.service.metrics
        if promotion or previous is None:
            metrics.inc("tier_promotions")
        else:
            metrics.inc("hot_swaps")

    # -- operator verbs ------------------------------------------------
    def rollback(self, skey: str) -> bool:
        """Swap the previous artifact back in (one level of undo)."""
        state = self.state(skey)
        if state is None:
            return False
        with state.lock:
            if state.previous is None:
                return False
            state.binding, state.previous = state.previous, state.binding
            state.live = LiveProfile(max_weight=self.config.max_weight)
        self.service.metrics.inc("rollbacks")
        return True

    def demote(self, skey: str) -> bool:
        """Drop the key back to the interpreter tier (bail out).

        The binding is discarded and the warmup clock restarts, so the
        key must re-earn promotion with fresh profiling runs.
        """
        state = self.state(skey)
        if state is None:
            return False
        with state.lock:
            if state.binding is None:
                return False
            state.previous = state.binding
            state.binding = None
            state.hits = 0
            state.live = LiveProfile(max_weight=self.config.max_weight)
        self.service.metrics.inc("tier_demotions")
        return True
