"""The synthetic SPEC CPU2006-like benchmark suite.

The paper evaluates on the 12 CINT2006 and 17 CFP2006 benchmarks with
FDO: a *train* input produces the profile, a *ref* input is measured.  We
cannot ship SPEC, so each benchmark name maps to a deterministic synthetic
IR program from :mod:`repro.bench.generator` whose *shape* matches the
family:

* **CINT-like** — branch-heavy control flow, shallow loops, integer
  operators, moderate expression redundancy;
* **CFP-like** — deep counting-loop nests with longer trip counts,
  FP-flavoured operators, and a high density of loop-invariant hot
  expressions — the structural reason loop-based speculation (SSAPREsp)
  recovers more of MC-SSAPRE's win on CFP than on CINT, which is exactly
  the asymmetry Tables 1 and 2 report.

Each benchmark also carries deterministic train and ref argument vectors
(distinct seeds): profiles correlate but do not coincide, like SPEC's
train/ref inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.generator import (
    GeneratedProgram,
    ProgramSpec,
    generate_program,
    perturbed_args,
    random_args,
)

#: CINT2006 benchmark names in the paper's Table 1 order.
CINT2006 = (
    "perlbench",
    "bzip2",
    "gcc",
    "mcf",
    "gobmk",
    "hmmer",
    "sjeng",
    "libquantum",
    "h264ref",
    "omnetpp",
    "astar",
    "xalancbmk",
)

#: CFP2006 benchmark names in the paper's Table 2 order.
CFP2006 = (
    "bwaves",
    "gamess",
    "milc",
    "zeusmp",
    "gromacs",
    "cactusADM",
    "leslie3d",
    "namd",
    "dealII",
    "soplex",
    "povray",
    "calculix",
    "GemsFDTD",
    "tonto",
    "lbm",
    "wrf",
    "sphinx3",
)

#: The composite-chain suite: nested expression chains with per-site
#: intermediates — the second-order-redundancy workloads the iterative
#: worklist engine is measured on (``repro.perf``'s "iterative" table).
#: Deliberately *not* part of :data:`ALL_BENCHMARKS`: the canonical
#: CINT/CFP suite stats are pinned by tests and mirror the paper.
COMPOSITE = ("chain-int", "chain-fp", "chain-deep")

#: The memory suite: array loads/stores under the conservative alias
#: model.  ``mem-stream`` is load-heavy with few aliasing stores (most
#: hot load classes survive and hoist), ``mem-alias`` is store-heavy
#: with a high alias density (kills dominate, motion is mostly blocked),
#: ``mem-hot`` mixes speculatable constant-index hot loads with
#: may-trap variable-index ones.  Like :data:`COMPOSITE`, deliberately
#: not part of :data:`ALL_BENCHMARKS`.
MEMORY = ("mem-stream", "mem-alias", "mem-hot")

ALL_BENCHMARKS = CINT2006 + CFP2006


@dataclass
class Workload:
    """One synthetic benchmark: program + train/ref argument vectors."""

    name: str
    family: str  # "CINT" or "CFP"
    program: GeneratedProgram
    train_args: list[int]
    ref_args: list[int]


#: Per-benchmark seed overrides: the default formula occasionally lands on
#: a degenerate program (e.g. all loops behind never-taken branches).
_SEED_OVERRIDES = {"bzip2": 1025}


def _cint_spec(name: str, index: int) -> ProgramSpec:
    return ProgramSpec(
        name=name,
        seed=_SEED_OVERRIDES.get(name, 1000 + index * 17),
        params=4,
        locals_count=10,
        region_length=7,
        max_depth=3,
        branch_weight=0.38,
        loop_weight=0.18,
        loop_mask_bits=5,
        loop_base=4,
        hot_exprs=6,
        hot_prob=0.26,
        trapping_prob=0.04,
        fp_flavor=False,
        stable_fraction=0.5,
    )


def _cfp_spec(name: str, index: int) -> ProgramSpec:
    return ProgramSpec(
        name=name,
        seed=2000 + index * 23,
        params=4,
        locals_count=10,
        region_length=6,
        max_depth=3,
        branch_weight=0.16,
        loop_weight=0.34,
        loop_mask_bits=6,
        loop_base=8,
        hot_exprs=7,
        hot_prob=0.32,
        trapping_prob=0.02,
        fp_flavor=True,
        stable_fraction=0.65,
    )


def _composite_spec(name: str, index: int) -> ProgramSpec:
    # "chain-deep" stretches the chains to depth 4 (rank-4 classes need
    # every round the default iterative budget allows); the other two
    # mirror the CINT/CFP flavours at depth 2-3.
    deep = name == "chain-deep"
    return ProgramSpec(
        name=name,
        seed=3000 + index * 31,
        params=4,
        locals_count=10,
        region_length=6,
        max_depth=3,
        branch_weight=0.24,
        loop_weight=0.28,
        loop_mask_bits=5,
        loop_base=6,
        hot_exprs=5,
        hot_prob=0.30,
        trapping_prob=0.02,
        composite_exprs=4 if deep else 3,
        composite_depth=4 if deep else (2 + index),
        composite_prob=0.40,
        fp_flavor=name == "chain-fp",
        stable_fraction=0.6,
    )


def _memory_spec(name: str, index: int) -> ProgramSpec:
    alias = name == "mem-alias"
    hot = name == "mem-hot"
    return ProgramSpec(
        name=name,
        seed=4000 + index * 37,
        params=4,
        locals_count=10,
        region_length=6,
        max_depth=3,
        branch_weight=0.24,
        loop_weight=0.30,
        loop_mask_bits=5,
        loop_base=6,
        hot_exprs=4,
        hot_prob=0.28,
        trapping_prob=0.02,
        fp_flavor=False,
        stable_fraction=0.6,
        arrays=3 if name == "mem-stream" else 2,
        mem_prob=0.40,
        store_density=0.45 if alias else 0.25,
        alias_density=0.8 if alias else 0.3,
        hot_loads=5 if hot else 3,
        trapping_hot_prob=0.3 if hot else 0.0,
    )


def spec_for(name: str, seed_offset: int = 0) -> ProgramSpec:
    """The generator spec of one named benchmark.

    ``seed_offset`` shifts every generator seed by a constant — the
    deterministic way to rerun the whole suite on fresh program instances
    (``python -m repro.bench <artifact> --seed N``).  Offset 0 is the
    canonical suite the tests pin down.
    """
    if name in CINT2006:
        spec = _cint_spec(name, CINT2006.index(name))
    elif name in CFP2006:
        spec = _cfp_spec(name, CFP2006.index(name))
    elif name in COMPOSITE:
        spec = _composite_spec(name, COMPOSITE.index(name))
    elif name in MEMORY:
        spec = _memory_spec(name, MEMORY.index(name))
    else:
        raise KeyError(f"unknown benchmark {name!r}")
    if seed_offset:
        spec.seed += seed_offset
    return spec


def load_workload(name: str, seed_offset: int = 0) -> Workload:
    """Build one named benchmark deterministically."""
    spec = spec_for(name, seed_offset)
    program = generate_program(spec)
    train = random_args(spec, seed=101 + seed_offset)
    if name in CINT2006:
        family = "CINT"
    elif name in CFP2006:
        family = "CFP"
    elif name in MEMORY:
        family = "MEMORY"
    else:
        family = "COMPOSITE"
    return Workload(
        name=name,
        family=family,
        program=program,
        train_args=train,
        ref_args=perturbed_args(
            spec, train, seed=202 + seed_offset, strength=3
        ),
    )


def load_suite(
    names: tuple[str, ...] = ALL_BENCHMARKS, seed_offset: int = 0
) -> list[Workload]:
    """Build a list of benchmarks (the whole suite by default)."""
    return [load_workload(name, seed_offset) for name in names]
