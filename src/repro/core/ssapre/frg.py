"""Factored redundancy graph (FRG) construction — SSAPRE steps 1 and 2.

For each lexically identified expression class the two steps are:

* **Φ-Insertion** — place hypothetical Φs (factoring points of the
  hypothetical temporary ``h``) at the iterated dominance frontier of every
  real occurrence, and at every block containing a variable phi of one of
  the expression's operands (a version change of an operand may change the
  value of ``h`` there).
* **Rename** — assign versions to all occurrences of ``h`` via a preorder
  dominator-tree walk with one stack per class, exactly as in SSA
  construction.  Two occurrences receive the same version iff they are
  guaranteed to compute the same value.

MC-SSAPRE's step 2 additions (paper Section 3.1.3) are integrated here:
real occurrences are pushed on the renaming stack even when they do not
define a new version, and any occurrence dominated by a real occurrence of
its own version is marked ``rg_excluded`` — it is trivially fully redundant
and can be excluded from the reduced graph.

The resulting :class:`FRG` is the "SSA graph" out of which MC-SSAPRE forms
its flow network, and on which classic SSAPRE runs its sparse analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache

from repro.analysis import cfg_of, dominance_frontiers_of, dominator_tree_of
from repro.analysis.domfrontier import iterated_dominance_frontier
from repro.analysis.dominators import DominatorTree
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Load, Store, UnaryOp, is_expr_rhs
from repro.ir.memory import store_kills_key
from repro.ir.ops import is_trapping
from repro.ir.values import Const, Operand, Var


ExprKey = tuple


@dataclass(frozen=True, slots=True)
class ExprClass:
    """A lexically identified expression (paper footnote 1).

    Load classes (``("load", ("arr", A), index_base)``) participate like
    unary expressions whose single operand is the index: the array symbol
    is part of the class identity, not an operand, so the FRG machinery
    (operand stacks, Φ-operand matching) sees only SSA values.  The extra
    memory dimension — a may-aliasing store changes the loaded value even
    when the index value is unchanged — is injected during Rename as kill
    events, see :class:`_Renamer`.
    """

    key: ExprKey

    @property
    def op(self) -> str:
        return self.key[0]

    @property
    def is_load(self) -> bool:
        return self.key[0] == "load"

    @property
    def array(self) -> str:
        """Array symbol of a load class (only valid when ``is_load``)."""
        return self.key[1][1]

    @property
    def arity(self) -> int:
        return len(self.operand_bases)

    @property
    def operand_bases(self) -> tuple:
        """Per-position operand identity: ('var', name) or ('const', v)."""
        if self.is_load:
            return tuple(self.key[2:])
        return tuple(self.key[1:])

    @property
    def var_names(self) -> tuple[str, ...]:
        return tuple(p for k, p in self.operand_bases if k == "var")

    @property
    def trapping(self) -> bool:
        return is_trapping(self.op)

    def make_rhs(self, values: tuple[Operand, ...]):
        """Build a BinOp/UnaryOp/Load computing this class from values."""
        if self.is_load:
            return Load(self.key[1][1], values[0])
        if self.arity == 2:
            return BinOp(self.op, values[0], values[1])
        return UnaryOp(self.op, values[0])

    def __str__(self) -> str:
        parts = [p if k == "var" else str(p) for k, p in self.operand_bases]
        if self.is_load:
            return f"load({self.array}[{', '.join(parts)}])"
        return f"{self.op}({', '.join(parts)})"


@dataclass(eq=False)
class RealOcc:
    """A real occurrence of the expression (exists in the input program)."""

    label: str
    stmt: Assign
    stmt_index: int
    operand_values: tuple[Operand, ...] = ()
    version: int = -1
    def_node: Optional["DefNode"] = None  #: version definer; None = defines itself
    #: nearest dominating real occurrence of the same version, if any
    crossing_real: Optional["RealOcc"] = None
    rg_excluded: bool = False
    # --- Finalize attributes ---
    reload: bool = False
    save: bool = False

    @property
    def is_use(self) -> bool:
        """True when this occurrence uses a version defined elsewhere."""
        return self.def_node is not None

    def __repr__(self) -> str:
        flags = []
        if self.rg_excluded:
            flags.append("excl")
        if self.reload:
            flags.append("reload")
        if self.save:
            flags.append("save")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"RealOcc(h{self.version}@{self.label}{suffix})"


@dataclass(eq=False)
class PhiOperand:
    """One incoming operand of a hypothetical Φ (per predecessor block)."""

    pred: str
    phi: "PhiNode"
    version: int | None = None  #: None = ⊥ (no value available on this edge)
    def_node: Optional["DefNode"] = None
    has_real_use: bool = False
    crossing_real: RealOcc | None = None
    operand_values: tuple[Operand | None, ...] = ()
    insert: bool = False

    @property
    def is_bottom(self) -> bool:
        return self.version is None

    def __repr__(self) -> str:
        v = "⊥" if self.is_bottom else f"h{self.version}"
        return f"PhiOperand({v} from {self.pred})"


@dataclass(eq=False)
class PhiNode:
    """A hypothetical Φ for the expression's temporary ``h``."""

    label: str
    version: int = -1
    operands: list[PhiOperand] = field(default_factory=list)
    operand_values: tuple[Operand, ...] = ()
    # --- analysis attributes (filled by later steps) ---
    down_safe: bool = False
    can_be_avail: bool = True
    later: bool = True
    will_be_avail: bool = False
    fully_avail: bool = False  # MC-SSAPRE step 3
    part_anticipated: bool = False  # MC-SSAPRE step 3
    in_reduced: bool = False  # MC-SSAPRE step 4
    #: Rename-time hint for the sparse DownSafety variant: cleared when
    #: the Φ's version was observed dying unused along some walk path
    #: (killed by an operand redefinition, or live at a program exit).
    rename_down_safe: bool = True

    def operand_for(self, pred: str) -> PhiOperand:
        for operand in self.operands:
            if operand.pred == pred:
                return operand
        raise KeyError(f"no operand for predecessor {pred!r}")

    def __repr__(self) -> str:
        return f"PhiNode(h{self.version}@{self.label})"


DefNode = Union[PhiNode, RealOcc]


@dataclass
class FRG:
    """The factored redundancy graph of one expression class."""

    expr: ExprClass
    func: Function
    cfg: CFG
    domtree: DominatorTree
    phis: list[PhiNode] = field(default_factory=list)
    real_occs: list[RealOcc] = field(default_factory=list)
    next_version: int = 0

    def phi_at(self, label: str) -> PhiNode | None:
        for phi in self.phis:
            if phi.label == label:
                return phi
        return None

    def phi_uses(self, phi: PhiNode) -> tuple[list[PhiOperand], list[RealOcc]]:
        """All uses of *phi*'s version: operand uses and real-occ uses."""
        operand_uses = [
            operand
            for other in self.phis
            for operand in other.operands
            if operand.def_node is phi
        ]
        real_uses = [occ for occ in self.real_occs if occ.def_node is phi]
        return operand_uses, real_uses

    def node_count(self) -> int:
        return len(self.phis) + len(self.real_occs)

    def describe(self) -> str:
        """Human-readable dump used by examples and debugging."""
        lines = [f"FRG for {self.expr}:"]
        for phi in sorted(self.phis, key=lambda p: p.version):
            ops = ", ".join(
                f"{o.pred}: " + ("⊥" if o.is_bottom else f"h{o.version}")
                + ("*" if o.has_real_use else "")
                for o in phi.operands
            )
            lines.append(f"  h{phi.version} = Φ({ops}) at {phi.label}")
        for occ in self.real_occs:
            mark = " [rg_excluded]" if occ.rg_excluded else ""
            definer = (
                "defines"
                if occ.def_node is None
                else f"uses h{occ.version} of {occ.def_node!r}"
            )
            lines.append(f"  h{occ.version}@{occ.label}: {definer}{mark}")
        return "\n".join(lines)


def collect_expr_classes(func: Function) -> list[ExprClass]:
    """All candidate expression classes, in first-occurrence order."""
    seen: dict[ExprKey, None] = {}
    for block in func:
        for stmt in block.body:
            if isinstance(stmt, Assign) and is_expr_rhs(stmt.rhs):
                seen.setdefault(stmt.rhs.class_key(), None)
    return [ExprClass(key) for key in seen]


@dataclass(slots=True)
class _StackEntry:
    version: int
    def_node: DefNode | None  #: None marks a store-kill sentinel
    operand_values: tuple
    real_seen: RealOcc | None


class _Renamer:
    """Shared dominator-tree walk renaming all classes in one pass."""

    def __init__(
        self,
        func: Function,
        cfg: CFG,
        domtree: DominatorTree,
        frgs: dict[ExprKey, FRG],
        phi_blocks: dict[ExprKey, set[str]],
        pruned_merges: dict[str, set[ExprKey]] | None = None,
    ) -> None:
        self.func = func
        self.cfg = cfg
        self.domtree = domtree
        self.frgs = frgs
        self.pruned_merges = pruned_merges or {}
        # Variable version stacks (the program is in SSA; the stacks recover
        # "current version at point p" during the walk).
        self.var_stacks: dict[str, list[int]] = {}
        self.expr_stacks: dict[ExprKey, list[_StackEntry]] = {
            key: [] for key in frgs
        }
        # Classes indexed by operand base name, for kill processing.
        self.classes_by_var: dict[str, list[ExprKey]] = {}
        # Load classes indexed by array symbol, for store-kill processing.
        self.loads_by_array: dict[str, list[ExprKey]] = {}
        for key, frg in frgs.items():
            for name in frg.expr.var_names:
                self.classes_by_var.setdefault(name, []).append(key)
            if frg.expr.is_load:
                self.loads_by_array.setdefault(frg.expr.array, []).append(key)
        #: monotone counter making store-kill sentinel values unique.
        self._kill_serial = 0
        # Pre-created PhiNodes indexed by block label (sparse: iterating
        # per block must not touch classes with no Φ there).
        self.phi_nodes: dict[tuple[ExprKey, str], PhiNode] = {}
        self.phis_by_label: dict[str, list[tuple[ExprKey, PhiNode]]] = {}
        for key, labels in phi_blocks.items():
            for label in labels:
                node = PhiNode(label=label)
                self.phi_nodes[(key, label)] = node
                self.phis_by_label.setdefault(label, []).append((key, node))
                frgs[key].phis.append(node)

    # ------------------------------------------------------------------
    def current_version(self, name: str) -> int | None:
        stack = self.var_stacks.get(name)
        return stack[-1] if stack else None

    def push_var(self, var: Var, pushed: list) -> None:
        assert var.version is not None
        self.var_stacks.setdefault(var.name, []).append(var.version)
        pushed.append(("var", var.name))

    def current_operand_values(
        self, expr: ExprClass
    ) -> tuple[Operand | None, ...]:
        """Current value of each expression operand (None = undefined)."""
        values: list[Operand | None] = []
        for kind, payload in expr.operand_bases:
            if kind == "const":
                values.append(Const(payload))
            else:
                version = self.current_version(payload)
                values.append(None if version is None else Var(payload, version))
        return tuple(values)

    # ------------------------------------------------------------------
    def run(self) -> None:
        assert self.func.entry is not None
        # Parameters are defined at entry.
        entry_pushed: list = []
        for param in self.func.params:
            if param.version is not None:
                self.push_var(param, entry_pushed)
        walk: list[tuple[str, list | None]] = [(self.func.entry, None)]
        pushed_by_label: dict[str, list] = {}
        while walk:
            label, pushes = walk.pop()
            if pushes is not None:
                self._leave(pushes)
                continue
            pushed = self._visit(label)
            pushed_by_label[label] = pushed
            walk.append((label, pushed))
            for child in reversed(self.domtree.children[label]):
                walk.append((child, None))
        self._leave(entry_pushed)

    def _leave(self, pushed: list) -> None:
        for kind, name in reversed(pushed):
            if kind == "var":
                self.var_stacks[name].pop()
            else:
                self.expr_stacks[name].pop()

    def _visit(self, label: str) -> list:
        block = self.func.blocks[label]
        pushed: list = []

        # 1. Variable phis define new versions at the head of the block.
        for phi in block.phis:
            self._note_kill(phi.target.name)
            self.push_var(phi.target, pushed)

        # 2. Hypothetical Φs: each defines a new version of h.
        for key, node in self.phis_by_label.get(label, ()):
            frg = self.frgs[key]
            frg.next_version += 1
            node.version = frg.next_version
            values = self.current_operand_values(frg.expr)
            node.operand_values = values
            entry = _StackEntry(
                version=node.version,
                def_node=node,
                operand_values=values,
                real_seen=None,
            )
            self.expr_stacks[key].append(entry)
            pushed.append(("expr", key))

        # 3. Body statements: occurrences, then kills via the target.
        for index, stmt in enumerate(block.body):
            if isinstance(stmt, Assign):
                if is_expr_rhs(stmt.rhs):
                    key = stmt.rhs.class_key()
                    if key in self.frgs:
                        self._visit_occurrence(key, label, stmt, index, pushed)
                self._note_kill(stmt.target.name)
                self.push_var(stmt.target, pushed)
            elif isinstance(stmt, Store):
                self._note_store_kill(stmt, pushed)

        # 3b. DownSafety hint: a Φ-defined version live at a program exit
        # without a real use along this walk path is not down-safe.
        if not block.terminator.successors():
            for key in self.frgs:
                self._note_unused_top(key)

        # 4. Fill Φ operands of successors from the end-of-block state.
        seen_succs: set[str] = set()
        for succ in self.cfg.successors(label):
            if succ in seen_succs:
                continue
            seen_succs.add(succ)
            for key, node in self.phis_by_label.get(succ, ()):
                self._fill_phi_operand(key, self.frgs[key], node, label)
            # DownSafety hint: versions flowing into a pruned merge point
            # die there (no occurrence is reachable beyond it).
            for key in self.pruned_merges.get(succ, ()):
                self._note_unused_top(key)
        return pushed

    def _note_kill(self, base_name: str) -> None:
        """DownSafety hint: redefining an operand kills the current
        version of every class using it; if that version came from a Φ
        and was never used by a real occurrence on this path, the Φ is
        not down-safe."""
        for key in self.classes_by_var.get(base_name, ()):
            self._note_unused_top(key)

    def _note_store_kill(self, stmt: Store, pushed: list) -> None:
        """A may-aliasing store ends the current version of a load class.

        Unlike an operand redefinition — where the next occurrence's
        *operand values* necessarily differ, so the version-matching test
        separates versions automatically — a store changes memory while
        leaving every SSA operand untouched.  Renaming must therefore
        break the version explicitly: a sentinel stack entry with operand
        values no real occurrence can match forces the next occurrence
        (and any Φ operand filled downstream on this walk path) to start
        a new version / resolve to ⊥.  The DownSafety hint fires first,
        exactly as for operand kills.
        """
        for key in self.loads_by_array.get(stmt.array, ()):
            if not store_kills_key(stmt.array, stmt.index, key):
                continue
            self._note_unused_top(key)
            self._kill_serial += 1
            self.expr_stacks[key].append(
                _StackEntry(
                    version=-1,
                    def_node=None,
                    operand_values=(("__store_kill__", self._kill_serial),),
                    real_seen=None,
                )
            )
            pushed.append(("expr", key))

    def _note_unused_top(self, key: ExprKey) -> None:
        stack = self.expr_stacks[key]
        if stack:
            top = stack[-1]
            if top.real_seen is None and isinstance(top.def_node, PhiNode):
                top.def_node.rename_down_safe = False

    def _visit_occurrence(
        self, key: ExprKey, label: str, stmt: Assign, index: int, pushed: list
    ) -> None:
        frg = self.frgs[key]
        rhs = stmt.rhs
        assert is_expr_rhs(rhs)
        occ = RealOcc(
            label=label,
            stmt=stmt,
            stmt_index=index,
            operand_values=tuple(rhs.operands),
        )
        frg.real_occs.append(occ)
        stack = self.expr_stacks[key]
        top = stack[-1] if stack else None
        if top is not None and top.operand_values == occ.operand_values:
            # Same version as the definition on top of the stack.
            occ.version = top.version
            occ.def_node = top.def_node
            occ.crossing_real = top.real_seen
            if top.real_seen is not None:
                # Dominated by a real occurrence of its own version:
                # trivially fully redundant (MC-SSAPRE step 2).
                occ.rg_excluded = True
                # Not pushed — the existing entry already records a real.
            else:
                # First real use of a Φ-defined version: push it so later
                # occurrences see the crossing real occurrence.
                stack.append(
                    _StackEntry(
                        version=top.version,
                        def_node=top.def_node,
                        operand_values=top.operand_values,
                        real_seen=occ,
                    )
                )
                pushed.append(("expr", key))
        else:
            # New version, defined by this real occurrence.
            frg.next_version += 1
            occ.version = frg.next_version
            occ.def_node = None
            stack.append(
                _StackEntry(
                    version=occ.version,
                    def_node=occ,
                    operand_values=occ.operand_values,
                    real_seen=occ,
                )
            )
            pushed.append(("expr", key))

    def _fill_phi_operand(
        self, key: ExprKey, frg: FRG, node: PhiNode, pred: str
    ) -> None:
        operand = PhiOperand(pred=pred, phi=node)
        node.operands.append(operand)
        current = self.current_operand_values(frg.expr)
        operand.operand_values = current
        stack = self.expr_stacks[key]
        top = stack[-1] if stack else None
        if (
            top is not None
            and None not in current
            and top.operand_values == current
        ):
            operand.version = top.version
            operand.def_node = top.def_node
            operand.crossing_real = top.real_seen
            operand.has_real_use = top.real_seen is not None
        else:
            # Stays ⊥ — and whatever version was current at this pred dies
            # on the edge without flowing into the merge (DownSafety hint).
            self._note_unused_top(key)


def build_frgs(
    func: Function,
    classes: list[ExprClass] | None = None,
    cache: "AnalysisCache | None" = None,
) -> dict[ExprKey, FRG]:
    """Run Φ-Insertion and Rename for every class; return the FRGs.

    All classes are renamed in a single dominator-tree walk (the per-class
    work is sparse), mirroring how a production SSAPRE keeps one worklist
    per expression.  CFG-derived analyses come from *cache* when given
    (SSA construction just computed them; they are still valid).
    """
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    cfg = cfg_of(func, cache)
    domtree = dominator_tree_of(func, cache)
    frontiers = dominance_frontiers_of(func, cache)
    if classes is None:
        classes = collect_expr_classes(func)

    reachable = set(domtree.rpo)
    wanted = {expr.key for expr in classes}

    # One pass over the program: occurrence blocks per class, variable-phi
    # blocks per base name (a version change of an operand changes the
    # value of h there), and store blocks per array symbol (a may-aliasing
    # store is a *definition of memory* for a load class — merge points
    # downstream of it need Φs, or a one-sided store would leave a
    # post-merge load looking fully redundant).
    occ_blocks: dict[ExprKey, set[str]] = {key: set() for key in wanted}
    phi_blocks_by_name: dict[str, set[str]] = {}
    stores_by_array: dict[str, list[tuple[str, Store]]] = {}
    for label in reachable:
        block = func.blocks[label]
        for phi in block.phis:
            phi_blocks_by_name.setdefault(phi.target.name, set()).add(label)
        for stmt in block.body:
            if isinstance(stmt, Assign) and is_expr_rhs(stmt.rhs):
                key = stmt.rhs.class_key()
                if key in wanted:
                    occ_blocks[key].add(label)
            elif isinstance(stmt, Store):
                stores_by_array.setdefault(stmt.array, []).append((label, stmt))

    preds_of = {label: cfg.predecessors(label) for label in reachable}

    def reaches_an_occurrence(key: ExprKey) -> set[str]:
        """Blocks from which some occurrence of *key* is CFG-reachable.

        An h-Φ placed outside this set can never be partially
        anticipated, so it would be dead weight in every later step;
        pruning here keeps FRGs sparse on large functions.
        """
        seen = set(occ_blocks[key])
        stack = list(seen)
        while stack:
            label = stack.pop()
            for pred in preds_of[label]:
                if pred not in seen and pred in reachable:
                    seen.add(pred)
                    stack.append(pred)
        return seen

    frgs: dict[ExprKey, FRG] = {}
    phi_blocks: dict[ExprKey, set[str]] = {}
    pruned_merges: dict[str, set[ExprKey]] = {}
    for expr in classes:
        frgs[expr.key] = FRG(expr=expr, func=func, cfg=cfg, domtree=domtree)
        useful = reaches_an_occurrence(expr.key)
        operand_phi_blocks: set[str] = set()
        for name in expr.var_names:
            operand_phi_blocks |= phi_blocks_by_name.get(name, set())
        kill_blocks: set[str] = set()
        if expr.is_load:
            for label, stmt in stores_by_array.get(expr.array, ()):
                if store_kills_key(stmt.array, stmt.index, expr.key):
                    kill_blocks.add(label)
        seeds = (
            occ_blocks[expr.key]
            | (operand_phi_blocks & useful)
            | (kill_blocks & useful)
        )
        placed = iterated_dominance_frontier(frontiers, seeds) | operand_phi_blocks
        placed &= reachable
        phi_blocks[expr.key] = {label for label in placed if label in useful}
        # Merge points dropped by the usefulness prune still end the
        # lifetime of any version flowing into them; Rename fires the
        # DownSafety "dies unused" hint on edges into these blocks.
        for label in placed - phi_blocks[expr.key]:
            pruned_merges.setdefault(label, set()).add(expr.key)

    renamer = _Renamer(func, cfg, domtree, frgs, phi_blocks, pruned_merges)
    renamer.run()

    for frg in frgs.values():
        _check_frg(frg)
    return frgs


def build_frg(func: Function, expr: ExprClass) -> FRG:
    """Build the FRG of a single expression class."""
    return build_frgs(func, [expr])[expr.key]


def _check_frg(frg: FRG) -> None:
    """Internal consistency assertions (cheap; always on)."""
    versions: dict[int, DefNode] = {}
    for phi in frg.phis:
        assert phi.version > 0, f"unrenamed phi {phi!r}"
        assert phi.version not in versions
        versions[phi.version] = phi
        preds = []
        seen = set()
        for pred in frg.cfg.predecessors(phi.label):
            if pred not in seen:
                seen.add(pred)
                preds.append(pred)
        assert len(phi.operands) == len(preds), (
            f"{phi!r} has {len(phi.operands)} operands for preds {preds}"
        )
    for occ in frg.real_occs:
        assert occ.version > 0
        if occ.def_node is None:
            assert occ.version not in versions or versions[occ.version] is occ
            versions.setdefault(occ.version, occ)
