"""Core contracts of the pass subsystem.

Two kinds of unit exist:

* an :class:`AnalysisPass` *derives* information from a function without
  mutating it.  Results are memoised in an
  :class:`~repro.passes.cache.AnalysisCache` and invalidated by the
  generation counters on :class:`~repro.ir.function.Function`;
* a :class:`Pass` *transforms* a function in place and declares, via
  :meth:`Pass.preserves`, which cached analyses survive it.

Invalidation vocabulary (the strings returned by ``preserves()``):

* ``"cfg"`` — the CFG shape (blocks and edges) is untouched, so every
  CFG-derived analysis (``cfg``, ``domtree``, ``domfrontier``, ``loops``)
  stays valid;
* an analysis name (``"liveness"``, …) — that specific analysis is still
  valid even though instructions changed;
* :data:`PRESERVE_ALL` — the pass mutated nothing at all.

The default is the conservative empty set: everything is invalidated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.passes.cache import AnalysisCache
    from repro.passes.manager import PassContext


class PassError(Exception):
    """A pass could not run (bad input, missing profile, …)."""


class PassVerificationError(PassError):
    """The verify-between-passes mode caught a broken invariant.

    The message always names the offending pass.
    """


class StaleAnalysisError(PassError):
    """A cached analysis was used after its function mutated past it."""


#: Sentinel for :meth:`Pass.preserves`: "I mutated nothing".
PRESERVE_ALL = frozenset({"__all__"})

#: The preservation token meaning "CFG shape untouched".
PRESERVE_CFG = "cfg"


class AnalysisPass:
    """A derived, cacheable view of a function.

    Subclasses set :attr:`name` (the cache key) and :attr:`depends`
    (``"cfg"`` when only the CFG shape matters, ``"code"`` when any
    instruction change invalidates the result) and implement
    :meth:`compute`.  Instances are stateless descriptors — the module
    :mod:`repro.passes.analyses` exposes one shared instance per
    analysis.
    """

    name: str = "?"
    #: Which generation counter gates this result: "cfg" or "code".
    depends: str = "cfg"

    def compute(self, func: Function, cache: "AnalysisCache") -> object:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AnalysisPass {self.name}>"


class Pass:
    """A function transformation with a declared preservation contract."""

    name: str = "?"

    def preserves(self) -> frozenset[str]:
        """Analyses (or the ``"cfg"`` token) still valid after this pass."""
        return frozenset()

    def mutated(self, payload: object | None) -> bool:
        """Did this run actually change the function?

        Called by the manager after :meth:`run` with the pass's payload.
        When False, no generation counter is bumped at all — even
        code-keyed cached analyses (liveness, the compiled-interpreter
        lowering) stay warm.  The conservative default is True;
        override it in passes whose payload says whether anything
        changed (a PRE pass that moved nothing, a copy-propagation pass
        that found no copies).
        """
        return True

    def run(self, func: Function, ctx: "PassContext") -> object | None:
        """Transform *func* in place; the return value becomes the
        pass's payload in the :class:`~repro.passes.manager.PassReport`."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name}>"
