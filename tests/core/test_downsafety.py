"""Tests for DownSafety and the safe WillBeAvail step."""

from repro.core.ssapre.downsafety import compute_down_safety
from repro.core.ssapre.frg import ExprClass, build_frg
from repro.core.ssapre.speculation import apply_loop_speculation
from repro.core.ssapre.willbeavail import compute_will_be_avail
from repro.ir.builder import FunctionBuilder
from tests.conftest import as_ssa

AB = ExprClass(("add", ("var", "a"), ("var", "b")))


class TestDownSafety:
    def test_diamond_join_phi_is_down_safe(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        compute_down_safety(frg)
        assert frg.phis[0].down_safe

    def test_while_header_phi_not_down_safe(self, while_loop):
        frg = build_frg(as_ssa(while_loop), AB)
        compute_down_safety(frg)
        head_phi = frg.phi_at("head")
        assert not head_phi.down_safe  # loop may run zero times

    def test_phi_before_conditional_use_not_down_safe(self):
        b = FunctionBuilder("f", params=["a", "b", "c", "d"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.branch("d", "use", "skip")
        b.block("use")
        b.assign("y", "add", "a", "b")
        b.ret("y")
        b.block("skip")
        b.ret(0)
        func = b.build()
        frg = build_frg(as_ssa(func), AB)
        compute_down_safety(frg)
        # j's phi: a path j -> skip never computes a+b.
        j_phi = frg.phi_at("j")
        assert j_phi is not None and not j_phi.down_safe

    def test_kill_after_phi_blocks_down_safety(self):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.assign("a", "add", "a", 1)   # kill before the use
        b.assign("y", "add", "a", "b")
        b.ret("y")
        frg = build_frg(as_ssa(b.build()), AB)
        compute_down_safety(frg)
        j_phi = frg.phi_at("j")
        assert j_phi is not None and not j_phi.down_safe


class TestSafeWillBeAvail:
    def test_diamond_insert_on_bottom_operand(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        compute_down_safety(frg)
        compute_will_be_avail(frg)
        phi = frg.phis[0]
        assert phi.can_be_avail and not phi.later and phi.will_be_avail
        by_pred = {op.pred: op for op in phi.operands}
        assert by_pred["right"].insert
        assert not by_pred["left"].insert

    def test_loop_header_no_insert_without_speculation(self, while_loop):
        frg = build_frg(as_ssa(while_loop), AB)
        compute_down_safety(frg)
        compute_will_be_avail(frg)
        head_phi = frg.phi_at("head")
        assert not head_phi.will_be_avail
        assert all(not op.insert for op in head_phi.operands)

    def test_later_blocks_useless_hoisting(self):
        """No operand has a real use: availability would arrive 'later'
        than needed, so no phi materialises and nothing is inserted."""
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.assign("x", "add", "a", "b")  # first and only computation
        b.ret("x")
        func = b.build()
        frg = build_frg(as_ssa(func), AB)
        compute_down_safety(frg)
        compute_will_be_avail(frg)
        for phi in frg.phis:
            assert phi.later, "no path computes a+b before the phi"
            assert not phi.will_be_avail


class TestLoopSpeculation:
    def test_header_phi_upgraded(self, while_loop):
        frg = build_frg(as_ssa(while_loop), AB)
        compute_down_safety(frg)
        upgraded = apply_loop_speculation(frg)
        assert upgraded == 1
        assert frg.phi_at("head").down_safe

    def test_insert_happens_after_speculation(self, while_loop):
        frg = build_frg(as_ssa(while_loop), AB)
        compute_down_safety(frg)
        apply_loop_speculation(frg)
        compute_will_be_avail(frg)
        head_phi = frg.phi_at("head")
        assert head_phi.will_be_avail
        by_pred = {op.pred: op for op in head_phi.operands}
        assert by_pred["entry"].insert

    def test_trapping_never_speculated(self):
        b = FunctionBuilder("f", params=["a", "b", "n"])
        b.block("entry")
        b.copy("i", 0)
        b.copy("acc", 0)
        b.jump("head")
        b.block("head")
        b.assign("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.assign("v", "div", "a", "b")   # trapping
        b.assign("acc", "add", "acc", "v")
        b.assign("i", "add", "i", 1)
        b.jump("head")
        b.block("done")
        b.ret("acc")
        func = as_ssa(b.build())
        expr = ExprClass(("div", ("var", "a"), ("var", "b")))
        frg = build_frg(func, expr)
        compute_down_safety(frg)
        assert apply_loop_speculation(frg) == 0

    def test_non_loop_phi_not_upgraded(self, diamond):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.assign("x", "add", "a", "b")
        b.ret("x")
        frg = build_frg(as_ssa(b.build()), AB)
        compute_down_safety(frg)
        before = [phi.down_safe for phi in frg.phis]
        apply_loop_speculation(frg)
        assert [phi.down_safe for phi in frg.phis] == before
