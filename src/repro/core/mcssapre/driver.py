"""The MC-SSAPRE driver — the ten steps of paper Figure 4.

    1.  Φ-Insertion          (shared with SSAPRE)
    2.  Rename               (shared, plus rg_excluded marking)
    3.  Data flow            sparse full availability / partial anticipability
    4.  Graph reduction      reduced SSA graph
    5.  Single source        artificial source, edges to ⊥ operands
    6.  Single sink          artificial sink, infinite edges from SPR occs
    7.  Min-cut              reverse-labeling minimum cut → insert flags
    8.  WillBeAvail          forward propagation from the insert flags
    9.  Finalize             (shared with SSAPRE)
    10. CodeMotion           (shared with SSAPRE)

Speculation requires an execution profile with **node frequencies only**;
the driver deliberately accepts a profile whose edge map is empty.
Trapping expressions (div/mod/…) are never speculated: for those classes
the driver runs the safe SSAPRE steps 3–4 instead, mirroring how the
paper's compiler excludes exception-throwing computations (Section 2).

Even when an expression has no strictly-partially-redundant occurrence
(empty EFG), steps 8–10 still run so fully redundant occurrences are
deleted — MC-SSAPRE handles local and global redundancy uniformly
(Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.mcssapre.cut import CutDecision, solve_min_cut

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.efg import build_efg
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.mcssapre.willbeavail import compute_will_be_avail_from_cut
from repro.core.ssapre.codemotion import CodeMotionReport, apply_code_motion
from repro.core.ssapre.driver import PREResult, run_safe_steps
from repro.core.ssapre.finalize import finalize
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.core.worklist import run_rounds
from repro.ir.function import Function
from repro.ir.verifier import has_critical_edges
from repro.profiles.profile import ExecutionProfile
from repro.ssa.ssa_verifier import verify_ssa


@dataclass
class EFGStats:
    """Per-class flow-network statistics (feeds Figure 11 / Section 4)."""

    expr: str
    nodes: int
    edges: int
    cut_value: int
    insertions: int


@dataclass
class MCPREResult(PREResult):
    """PRE result extended with MC-specific statistics."""

    efg_stats: list[EFGStats] = field(default_factory=list)
    trapping_fallbacks: int = 0

    def efg_sizes(self) -> list[int]:
        return [s.nodes for s in self.efg_stats]


def run_mc_ssapre(
    func: Function,
    profile: ExecutionProfile,
    validate: bool = False,
    classes: list[ExprClass] | None = None,
    sink_closest: bool = True,
    cache: "AnalysisCache | None" = None,
    rounds: int = 1,
) -> MCPREResult:
    """Run MC-SSAPRE over every candidate class of *func*, in place.

    ``sink_closest=False`` selects the source-side min cut instead of the
    reverse-labeling cut; it exists only for the lifetime ablation
    benchmark and forfeits lifetime optimality (never computational
    optimality).  ``rounds`` bounds the iterative worklist exactly as in
    :func:`repro.core.ssapre.driver.run_ssapre`: 1 is the classic
    one-shot driver, more rounds chase second-order redundancy through
    the occurrence index.
    """
    if has_critical_edges(func):
        raise ValueError(
            "MC-SSAPRE requires critical edges to be split first "
            "(use repro.ir.transforms.split_critical_edges)"
        )
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    result = MCPREResult(algorithm="MC-SSAPRE")

    def process_round(
        fn: Function, work: list[ExprClass]
    ) -> list[CodeMotionReport]:
        # Steps 1 and 2 for every class of the round in one shared
        # rename walk, and one shared bit-vector solve for the
        # trapping-class safe fallback (see the comment in run_ssapre
        # for why later CodeMotion cannot invalidate these).
        frgs = build_frgs(fn, work, cache=cache)
        dataflow = None

        reports = []
        for expr in work:
            frg = frgs[expr.key]
            if not frg.real_occs:
                continue
            if expr.trapping:
                # Unspeculatable: fall back to the safe placement for
                # this class (SSAPRE steps 3-4, via the shared step
                # runner), still deleting full redundancies.
                if dataflow is None:
                    from repro.analysis.dataflow import solve_pre_dataflow

                    dataflow = solve_pre_dataflow(
                        fn, [e.key for e in work]
                    )
                run_safe_steps(frg, dataflow=dataflow)
                result.trapping_fallbacks += 1
            else:
                solve_step3(frg)  # step 3
                reduced = build_reduced_graph(frg)  # step 4
                efg = build_efg(reduced, profile)  # steps 5 and 6
                decision: CutDecision | None = None
                if efg is not None:
                    decision = solve_min_cut(efg, sink_closest=sink_closest)  # step 7
                    result.efg_stats.append(
                        EFGStats(
                            expr=str(expr),
                            nodes=efg.node_count,
                            edges=efg.edge_count,
                            cut_value=decision.cut.value,
                            insertions=len(decision.insert_operands),
                        )
                    )
                compute_will_be_avail_from_cut(frg)  # step 8
            plan = finalize(frg)  # step 9
            report = apply_code_motion(fn, plan)  # step 10
            reports.append(report)
            if validate and report.changed:
                verify_ssa(fn)
        return reports

    run_rounds(
        func, result, process_round,
        classes=classes, rounds=rounds, validate=validate,
    )
    return result
