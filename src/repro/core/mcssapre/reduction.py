"""MC-SSAPRE step 4 — the reduced SSA graph.

Starting from an empty graph, include only (paper, Figure 4):

* Φ nodes that are **not fully available** and **partially anticipated**
  (anything else is a useless insertion point — Definition 2);
* their real-occurrence use nodes that are not ``rg_excluded`` (these are
  the strictly-partially-redundant occurrences, the future sinks);
* the def-use edges between the included nodes.

Edges are classified per Section 3.1.5:

* **type 1** — Φ → Φ-operand of another included Φ.  An insertion on it
  goes at the exit of the operand's predecessor block, so it costs the
  *node frequency of that predecessor*.
* **type 2** — Φ → included real occurrence.  "Cutting" it means leaving
  the occurrence to compute in place, costing the *node frequency of the
  occurrence's block*.

An operand edge whose path crosses a real occurrence (``has_real_use``)
carries an already-computed value, so it is never an insertion point and
is excluded, as are edges out of excluded Φs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.ssapre.frg import FRG, PhiNode, PhiOperand, RealOcc


@dataclass(frozen=True, slots=True)
class Type1Edge:
    """Def Φ (or ⊥/source) → operand of an included Φ."""

    operand: PhiOperand

    @property
    def target_phi(self) -> PhiNode:
        return self.operand.phi

    @property
    def source_phi(self) -> PhiNode | None:
        definer = self.operand.def_node
        return definer if isinstance(definer, PhiNode) else None


@dataclass(frozen=True, slots=True)
class Type2Edge:
    """Def Φ → strictly-partially-redundant real occurrence."""

    source_phi: PhiNode
    occ: RealOcc


ReducedEdge = Union[Type1Edge, Type2Edge]


@dataclass
class ReducedGraph:
    """The reduced SSA graph of MC-SSAPRE step 4."""

    frg: FRG
    phis: list[PhiNode] = field(default_factory=list)
    spr_occs: list[RealOcc] = field(default_factory=list)
    type1_edges: list[Type1Edge] = field(default_factory=list)
    type2_edges: list[Type2Edge] = field(default_factory=list)
    #: operands of included Φs that are ⊥ — future source edges.
    bottom_operands: list[PhiOperand] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.spr_occs

    def node_count(self) -> int:
        return len(self.phis) + len(self.spr_occs)


def build_reduced_graph(frg: FRG) -> ReducedGraph:
    """Form the reduced SSA graph from a step-3-annotated FRG."""
    reduced = ReducedGraph(frg=frg)
    included: set[int] = set()
    for phi in frg.phis:
        phi.in_reduced = not phi.fully_avail and phi.part_anticipated
        if phi.in_reduced:
            reduced.phis.append(phi)
            included.add(id(phi))

    for phi in reduced.phis:
        for operand in phi.operands:
            if operand.is_bottom:
                reduced.bottom_operands.append(operand)
            elif operand.has_real_use:
                # Value arrives computed along this edge: excluded.
                continue
            elif (
                isinstance(operand.def_node, PhiNode)
                and id(operand.def_node) in included
            ):
                reduced.type1_edges.append(Type1Edge(operand=operand))
            # Operands defined by available-but-excluded Φs carry the
            # value already; no edge, no insertion point.

    for occ in frg.real_occs:
        if occ.rg_excluded:
            continue
        definer = occ.def_node
        if isinstance(definer, PhiNode) and id(definer) in included:
            reduced.spr_occs.append(occ)
            reduced.type2_edges.append(Type2Edge(source_phi=definer, occ=occ))

    return reduced
