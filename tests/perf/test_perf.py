"""``python -m repro.perf``: BENCH.json schema, equivalence gate, CLI."""

import json

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    bench_compile,
    bench_maxflow,
    runresult_mismatches,
    scaling_network,
    solver_scaling_text,
)
from repro.perf.cli import main
from repro.profiles.compiled import run_compiled
from repro.profiles.interp import run_function

import pytest

#: The documented BENCH.json schema (docs/PERF.md).  v2 added the
#: "iterative" section; v3 added "serving"; v4 added "solver_scaling",
#: the top-level "solver" knob and the serving solver=auto pin; v5
#: added the serving "adaptation" block; v6 added the serving
#: "cluster" block (sharded multi-process cluster, open-loop); v7
#: added the "memory" section (array-workload suite + the pinned
#: speculative-hoist/aliased-blocked pair); v8 added the "profiling"
#: section (minimum-coverage probe placement + the profile-quality
#: study) and the ``--only`` section filter.
BENCH_KEYS = {
    "schema", "quick", "repeat", "solver", "python", "platform",
    "execution", "compile", "memory", "iterative", "solver_scaling",
    "serving", "maxflow", "profiling", "ok", "wall_time_s",
}
PROFILING_KEYS = {
    "workloads", "fallbacks", "total_full_events", "total_probe_events",
    "event_ratio", "min_event_ratio", "bounds_ok", "equivalent",
    "sample_period", "quality", "quality_ok", "ok",
}
PROFILING_ROW_KEYS = {
    "name", "blocks", "edges", "probes", "bound", "bound_ok",
    "full_events", "probe_events", "event_ratio", "reference_full_s",
    "reference_probed_s", "compiled_full_s", "compiled_probed_s",
    "mismatches",
}
PROFILING_QUALITY_KEYS = {
    "name", "cost_exact", "delta_reconstructed", "delta_sampled",
    "delta_stale", "fallback", "ok",
}
MEMORY_KEYS = {
    "workloads", "total_reference_s", "total_compiled_s", "speedup",
    "min_speedup", "equivalent", "speculation", "ok",
}
MEMORY_WORKLOAD_KEYS = {
    "name", "steps", "dynamic_cost", "loads", "reference_s",
    "compiled_s", "speedup", "mismatches",
}
SPECULATION_PIN_KEYS = {
    "control_cost", "safe_cost", "mc_cost", "control_loads",
    "safe_loads", "mc_loads", "observables_match", "ok",
}
SERVING_KEYS = {
    "requests", "unique", "cold_s", "warm_s", "cold_auto_s", "auto_ok",
    "speedup", "min_speedup", "equivalent", "hit_rate",
    "expected_hit_rate", "mismatches", "load_rps", "coalescing",
    "adaptation", "cluster", "ok",
}
CLUSTER_KEYS = {
    "workers", "requests", "unique", "single_rps", "offered_rps",
    "achieved_rps", "rps_ratio", "min_rps_ratio", "p99_s", "p99_max_s",
    "mean_s", "max_in_flight", "mismatches", "errors", "timeouts",
    "compiles", "plan_hits", "lock_rehydrates", "race", "ok",
}
RACE_KEYS = {"clients", "compiles", "rehydrates", "agreed", "all_ok", "ok"}
ADAPTATION_KEYS = {
    "warmup", "threshold", "min_samples", "promotions", "drift_events",
    "recompiles", "hot_swaps", "generation", "requests_during_recompile",
    "blocked_request_max_s", "promoted", "non_blocking_ok", "swapped",
    "swap_identical", "wall_s", "ok",
}
SOLVER_SCALING_ROW_KEYS = {
    "kills", "blocks", "classes_solved", "largest_phis",
    "mincut_solve_s", "lospre_solve_s", "solver_speedup",
    "mincut_compile_s", "lospre_compile_s", "max_width", "refusals",
    "mincut_dynamic_cost", "lospre_dynamic_cost", "mismatches",
}
WORKLOAD_KEYS = {
    "name", "family", "steps", "dynamic_cost", "reference_s",
    "compiled_s", "lowering_s", "speedup", "mismatches",
}
ITERATIVE_ROW_KEYS = {
    "name", "family", "oneshot_compile_s", "iterative_compile_s",
    "compile_overhead", "rounds_run", "fixpoint",
    "oneshot_dynamic_cost", "iterative_dynamic_cost", "cost_delta",
    "observables_match",
}


class TestCli:
    @pytest.fixture(scope="class")
    def bench(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("perf") / "BENCH.json"
        rc = main(["--quick", "--out", str(out)])
        return rc, json.loads(out.read_text())

    def test_exit_clean_and_schema(self, bench):
        rc, data = bench
        assert rc == 0
        assert set(data) == BENCH_KEYS
        assert data["schema"] == BENCH_SCHEMA_VERSION
        assert data["quick"] is True
        assert data["ok"] is True

    def test_execution_section(self, bench):
        _, data = bench
        execution = data["execution"]
        assert execution["equivalent"] is True
        assert len(execution["workloads"]) == 2
        for row in execution["workloads"]:
            assert set(row) == WORKLOAD_KEYS
            assert row["mismatches"] == []
            assert row["steps"] > 0
        assert {r["family"] for r in execution["workloads"]} == {
            "CINT", "CFP",
        }

    def test_compile_section_names_pipeline_stages(self, bench):
        _, data = bench
        stages = data["compile"]["per_stage"]
        assert "mc-ssapre" in stages
        for stage in stages.values():
            assert stage["calls"] == data["compile"]["functions"]

    def test_per_stage_sums_do_not_exceed_total(self, bench):
        # Regression: _best_of used to pair the fastest wall time with
        # the *last* repeat's per-stage report, so stage sums could
        # exceed the reported total (3.188s of mc-ssapre inside a
        # 2.968s compile).  Stages must now come from the same repeat
        # that produced the total.
        _, data = bench
        compile_section = data["compile"]
        stage_sum = sum(
            stage["total_s"] for stage in compile_section["per_stage"].values()
        )
        # Small tolerance: per-stage and total are rounded independently.
        assert stage_sum <= compile_section["total_s"] + 0.01

    def test_solver_scaling_section(self, bench):
        _, data = bench
        scaling = data["solver_scaling"]
        assert scaling["ok"] is True
        assert scaling["equivalent"] is True
        assert scaling["accepted"] is True
        assert scaling["speedup_at_largest"] >= scaling["min_speedup"]
        sizes = [row["kills"] for row in scaling["sizes"]]
        assert sizes == sorted(sizes) and len(sizes) >= 2
        for row in scaling["sizes"]:
            assert set(row) == SOLVER_SCALING_ROW_KEYS
            assert row["mismatches"] == []
            assert row["refusals"] == 0
            # Exact-cost gate: lospre placement matches min-cut.
            assert row["lospre_dynamic_cost"] == row["mincut_dynamic_cost"]
            assert row["blocks"] > row["kills"]
            assert row["max_width"] >= 1

    def test_memory_section(self, bench):
        # Schema v7: array workloads under the alias model, plus the
        # pinned speculative-hoist / aliased-blocked pair.
        _, data = bench
        memory = data["memory"]
        assert set(memory) == MEMORY_KEYS
        assert memory["ok"] is True
        assert memory["equivalent"] is True
        assert memory["speedup"] >= memory["min_speedup"]
        assert len(memory["workloads"]) >= 1
        for row in memory["workloads"]:
            assert set(row) == MEMORY_WORKLOAD_KEYS
            assert row["mismatches"] == []
            assert row["loads"] > 0
        speculation = memory["speculation"]
        assert set(speculation) == {"hoist", "blocked"}
        hoist = speculation["hoist"]
        blocked = speculation["blocked"]
        assert set(hoist) == set(blocked) == SPECULATION_PIN_KEYS
        assert hoist["ok"] is True and blocked["ok"] is True
        # Strict win on the hoistable program: safe PRE is pinned to the
        # control, MC-SSAPRE speculates the load down to one evaluation.
        assert hoist["mc_cost"] < hoist["safe_cost"]
        assert hoist["mc_loads"] < hoist["safe_loads"]
        assert hoist["safe_loads"] == hoist["control_loads"]
        # The every-iteration aliasing store freezes everything.
        assert blocked["mc_cost"] == blocked["control_cost"]
        assert blocked["safe_cost"] == blocked["control_cost"]
        assert blocked["mc_loads"] == blocked["control_loads"]

    def test_iterative_section(self, bench):
        _, data = bench
        iterative = data["iterative"]
        assert iterative["ok"] is True
        assert iterative["never_higher"] is True
        assert iterative["strict_win"] is True
        assert iterative["equivalent"] is True
        families = set()
        for row in iterative["workloads"]:
            assert set(row) == ITERATIVE_ROW_KEYS
            assert row["observables_match"] is True
            assert row["cost_delta"] >= 0
            assert 1 <= row["rounds_run"] <= iterative["rounds"]
            families.add(row["family"])
        # The strict win must come from the composite-chain suite.
        assert "COMPOSITE" in families
        assert any(
            row["cost_delta"] > 0
            for row in iterative["workloads"]
            if row["family"] == "COMPOSITE"
        )

    def test_serving_section(self, bench):
        _, data = bench
        serving = data["serving"]
        assert set(serving) == SERVING_KEYS
        assert serving["ok"] is True
        assert serving["equivalent"] is True
        assert serving["mismatches"] == 0
        assert serving["speedup"] >= serving["min_speedup"]
        assert serving["hit_rate"] >= serving["expected_hit_rate"]
        coalescing = serving["coalescing"]
        assert coalescing["ok"] is True
        assert coalescing["compiles"] == 1
        assert coalescing["clients"] > 1
        # The solver=auto cold-request pin (schema v4).
        assert serving["auto_ok"] is True
        assert serving["cold_auto_s"] > 0
        # The adaptation block (schema v5): interpreter warmup must
        # promote, the stalled drift recompile must block no requests,
        # and the hot-swapped artifact must be bit-identical to a
        # from-scratch build under the recorded live profile.
        adaptation = serving["adaptation"]
        assert set(adaptation) == ADAPTATION_KEYS
        assert adaptation["ok"] is True
        assert adaptation["promoted"] is True
        assert adaptation["non_blocking_ok"] is True
        assert adaptation["swapped"] is True
        assert adaptation["swap_identical"] is True
        assert adaptation["promotions"] >= 1
        assert adaptation["drift_events"] >= 1
        assert adaptation["hot_swaps"] >= 1
        assert adaptation["generation"] >= 2
        assert adaptation["blocked_request_max_s"] < serving["cold_s"]
        # The cluster block (schema v6): four workers behind the
        # consistent-hash front end must beat 3x the single-process
        # closed-loop pin under an open-loop schedule, inside the p99
        # bound, with exactly one compile per unique key cluster-wide
        # and a cold-key race that compiles exactly once.
        cluster = serving["cluster"]
        assert set(cluster) == CLUSTER_KEYS
        assert cluster["ok"] is True
        assert cluster["workers"] >= 2
        assert cluster["rps_ratio"] >= cluster["min_rps_ratio"]
        assert cluster["p99_s"] <= cluster["p99_max_s"]
        assert cluster["mismatches"] == 0
        assert cluster["errors"] == 0
        assert cluster["timeouts"] == 0
        assert cluster["compiles"] == cluster["unique"]
        race = cluster["race"]
        assert set(race) == RACE_KEYS
        assert race["ok"] is True
        assert race["compiles"] == 1
        assert race["clients"] == cluster["workers"]
        assert race["rehydrates"] >= 1

    def test_maxflow_section(self, bench):
        _, data = bench
        assert data["maxflow"]["agreed"] is True
        for row in data["maxflow"]["networks"]:
            assert row["flows_agree"] is True
            assert row["max_flow"] > 0

    def test_profiling_section(self, bench):
        # Schema v8: minimum-coverage probe placement.  Probe counts
        # must sit inside the spanning-tree bound, reconstruction must
        # be bit-identical on both engines, counting events must drop
        # by the gated factor, and exact reconstruction must cost zero
        # dynamic-cost optimality.
        _, data = bench
        profiling = data["profiling"]
        assert set(profiling) == PROFILING_KEYS
        assert profiling["ok"] is True
        assert profiling["bounds_ok"] is True
        assert profiling["equivalent"] is True
        assert profiling["quality_ok"] is True
        assert profiling["event_ratio"] >= profiling["min_event_ratio"]
        assert len(profiling["workloads"]) >= 1
        for row in profiling["workloads"]:
            assert set(row) == PROFILING_ROW_KEYS
            assert row["mismatches"] == []
            assert row["probes"] <= row["bound"]
            assert row["bound"] == max(0, row["edges"] - row["blocks"] + 1)
            assert row["probe_events"] < row["full_events"]
        for row in profiling["quality"]:
            assert set(row) == PROFILING_QUALITY_KEYS
            assert row["delta_reconstructed"] == 0
            assert row["delta_sampled"] >= 0
            assert row["delta_stale"] >= 0

    def test_only_flag_restricts_sections(self, tmp_path):
        out = tmp_path / "BENCH.json"
        rc = main([
            "--quick", "--repeat", "1", "--only", "profiling",
            "--out", str(out),
        ])
        data = json.loads(out.read_text())
        assert rc == 0
        assert "profiling" in data
        assert "execution" not in data and "serving" not in data
        assert data["ok"] is True

    def test_json_flag_prints_payload(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        rc = main(["--quick", "--repeat", "1", "--json", "--out", str(out)])
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(out.read_text())

    def test_solver_flag_rejects_unknown_value(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--quick", "--solver", "bogus"])
        assert excinfo.value.code == 2
        assert "--solver" in capsys.readouterr().err


class TestSolverKnob:
    """``--solver`` plumbing: every accepted value drives the compile
    section (satellite of the pluggable-solver issue)."""

    @pytest.mark.parametrize("solver", ["mincut", "lospre", "auto"])
    def test_bench_compile_accepts_each_solver(self, solver):
        payload = bench_compile(("bwaves",), repeat=1, solver=solver)
        assert payload["solver"] == solver
        assert payload["total_s"] > 0
        assert "mc-ssapre" in payload["per_stage"]


class TestHelpers:
    def test_runresult_mismatches_detects_each_field(self, straightline):
        ref = run_function(straightline, [2, 3])
        same = run_compiled(straightline, [2, 3])
        assert runresult_mismatches(ref, same) == []
        other = run_compiled(straightline, [5, 9])
        diff = runresult_mismatches(ref, other)
        assert "return_value" in diff

    def test_scaling_network_is_deterministic(self):
        a = scaling_network(4, 3)
        b = scaling_network(4, 3)
        assert [e.capacity for e in a.edges] == [
            e.capacity for e in b.edges
        ]
        assert a.node_count() == 4 * 3 + 2

    def test_solvers_agree_on_scaling_networks(self):
        report = bench_maxflow(((3, 3), (5, 4)), repeat=1)
        assert report["agreed"] is True

    def test_solver_scaling_text_is_deterministic(self):
        a = solver_scaling_text(4)
        assert a == solver_scaling_text(4)
        # One kill diamond per iteration index: k `eq` guards.
        assert a.count("= eq i,") == 4
