"""Tests for the textual IR lexer and parser, including round-trips."""

import pytest
from hypothesis import given, settings

from repro.bench.generator import ProgramSpec, generate_program
from repro.ir.printer import format_function
from repro.ir.verifier import verify_function
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_function, parse_program
from hypothesis import strategies as st


SAMPLE = """
func main(n) {
entry:
  i = 0
  jump head
head:
  c = lt i, n
  br c, body, done
body:
  i = add i, 1
  output i
  jump head
done:
  ret i
}
"""


class TestLexer:
    def test_tokens_of_simple_line(self):
        kinds = [t.kind for t in tokenize("x = add a, 1")]
        assert kinds == ["NAME", "=", "NAME", "NAME", ",", "INT", "EOF"]

    def test_versioned_name_is_one_token(self):
        tokens = list(tokenize("x.12"))
        assert tokens[0].text == "x.12"

    def test_comments_are_skipped(self):
        kinds = [t.kind for t in tokenize("x # comment\ny")]
        assert kinds == ["NAME", "NAME", "EOF"]

    def test_line_numbers(self):
        tokens = list(tokenize("a\nb\n  c"))
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_bad_character_raises(self):
        with pytest.raises(LexError):
            list(tokenize("x @ y"))


class TestParser:
    def test_parse_sample(self):
        func = parse_function(SAMPLE)
        verify_function(func)
        assert func.name == "main"
        assert set(func.blocks) == {"entry", "head", "body", "done"}
        assert func.entry == "entry"

    def test_parse_phi(self):
        func = parse_function(
            """
            func f(a) {
            entry:
              x.1 = a.1
              jump join
            mid:
              jump join
            join:
              y.2 = phi(entry: x.1, mid: 3)
              ret y.2
            }
            """
        )
        phi = func.blocks["join"].phis[0]
        assert phi.args["mid"].value == 3

    def test_parse_negative_constants(self):
        func = parse_function("func f() {\nentry:\n  x = add -3, -4\n  ret x\n}")
        rhs = func.blocks["entry"].body[0].rhs
        assert rhs.left.value == -3 and rhs.right.value == -4

    def test_ret_without_value(self):
        func = parse_function("func f() {\nentry:\n  ret\n}")
        assert func.blocks["entry"].terminator.value is None

    def test_ret_without_value_before_next_block(self):
        func = parse_function(
            "func f(c) {\nentry:\n  br c, a, b\na:\n  ret\nb:\n  ret\n}"
        )
        assert func.blocks["a"].terminator.value is None

    def test_multiple_functions(self):
        funcs = parse_program(
            "func f() {\nentry:\n  ret\n}\nfunc g() {\nentry:\n  ret\n}"
        )
        assert [f.name for f in funcs] == ["f", "g"]

    def test_missing_terminator_rejected(self):
        with pytest.raises(ParseError):
            parse_function("func f() {\nentry:\n  x = 1\nnext:\n  ret\n}")

    def test_reserved_word_as_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_function("func f() {\nentry:\n  add = 1\n  ret\n}")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_parse_function_rejects_two(self):
        with pytest.raises(ParseError):
            parse_function(
                "func f() {\nentry:\n  ret\n}\nfunc g() {\nentry:\n  ret\n}"
            )


MEM_SAMPLE = """
func mem(n) arrays(A: 8, B: 4) {
entry:
  m = and n, 7
  t = load A, m
  store B, 0, t
  u = load B, 0
  ret u
}
"""


class TestMemorySyntax:
    def test_arrays_clause_and_instructions(self):
        from repro.ir.instructions import Assign, Load, Store

        func = parse_function(MEM_SAMPLE)
        verify_function(func)
        assert func.arrays == {"A": 8, "B": 4}
        body = func.blocks["entry"].body
        assert isinstance(body[1], Assign) and isinstance(body[1].rhs, Load)
        assert body[1].rhs.array == "A"
        assert isinstance(body[2], Store)
        assert body[2].array == "B" and body[2].index.value == 0

    def test_arrays_clause_prints_sorted(self):
        func = parse_function(
            "func f() arrays(Z: 2, A: 4) {\nentry:\n  ret\n}"
        )
        assert "arrays(A: 4, Z: 2)" in format_function(func)

    def test_duplicate_array_rejected_with_position(self):
        with pytest.raises(ParseError, match="duplicate array"):
            parse_function(
                "func f() arrays(A: 2, A: 4) {\nentry:\n  ret\n}"
            )

    def test_bad_array_length_rejected(self):
        with pytest.raises(ParseError, match="length"):
            parse_function("func f() arrays(A: 0) {\nentry:\n  ret\n}")

    def test_memory_sample_round_trips(self):
        from repro.ir.structural import structural_diff

        func = parse_function(MEM_SAMPLE)
        reparsed = parse_function(format_function(func))
        assert structural_diff(func, reparsed) == []
        assert reparsed.arrays == func.arrays


class TestRobustness:
    """Satellite: parse errors carry line:column; duplicate labels and
    SSA redefinitions are rejected at parse time."""

    def test_parse_error_carries_position(self):
        # Line 3 (1-based), the `=` at column 7 arrives where an operand
        # of `add` is expected.
        with pytest.raises(ParseError) as excinfo:
            parse_function("func f() {\nentry:\n  x = add = 1\n  ret\n}")
        err = excinfo.value
        assert err.line == 3
        assert err.column is not None and err.column > 1
        assert str(err).startswith(f"{err.line}:{err.column}:")

    def test_lex_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            list(tokenize("ok\n  x @ y"))
        assert "2:" in str(excinfo.value)

    def test_duplicate_block_label_rejected(self):
        source = (
            "func f() {\nentry:\n  jump entry\nentry:\n  ret\n}"
        )
        with pytest.raises(ParseError, match="duplicate block label") as excinfo:
            parse_function(source)
        assert excinfo.value.line == 4

    def test_redefined_ssa_name_rejected(self):
        source = (
            "func f(a) {\nentry:\n  x.1 = add a, 1\n  x.1 = add a, 2\n"
            "  ret x.1\n}"
        )
        with pytest.raises(ParseError, match="defined more than once") as excinfo:
            parse_function(source)
        assert excinfo.value.line == 4

    def test_versioned_param_cannot_be_redefined(self):
        with pytest.raises(ParseError, match="defined more than once"):
            parse_function(
                "func f(a.1) {\nentry:\n  a.1 = add a.1, 1\n  ret a.1\n}"
            )

    def test_distinct_versions_of_same_name_are_fine(self):
        func = parse_function(
            "func f(a.1) {\nentry:\n  a.2 = add a.1, 1\n  ret a.2\n}"
        )
        verify_function(func)


class TestRoundTrip:
    def test_sample_round_trips(self):
        func = parse_function(SAMPLE)
        text = format_function(func)
        again = parse_function(text)
        assert format_function(again) == text

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_programs_round_trip(self, seed):
        prog = generate_program(ProgramSpec(name="rt", seed=seed, max_depth=2))
        text = format_function(prog.func)
        reparsed = parse_function(text)
        verify_function(reparsed)
        assert format_function(reparsed) == text

    def test_ssa_round_trips(self, diamond):
        from tests.conftest import as_ssa

        ssa = as_ssa(diamond)
        text = format_function(ssa)
        assert format_function(parse_function(text)) == text

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_memory_programs_round_trip(self, seed):
        """Satellite: printer↔parser round-trip over load/store/arrays."""
        from repro.ir.structural import structural_diff

        prog = generate_program(
            ProgramSpec(
                name="mrt", seed=seed, max_depth=2, arrays=2,
                mem_prob=0.5, store_density=0.4, trapping_hot_prob=0.3,
            )
        )
        text = format_function(prog.func)
        reparsed = parse_function(text)
        verify_function(reparsed)
        assert format_function(reparsed) == text
        assert structural_diff(prog.func, reparsed) == []
        assert reparsed.arrays == prog.func.arrays

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_memory_ssa_normalized_round_trip(self, seed):
        """normalize=True renumbers SSA versions; the printed form must
        still reparse to the same structure — arrays included."""
        from repro.ir.structural import structural_diff
        from repro.ssa.construct import construct_ssa
        from repro.pipeline import prepare

        prog = generate_program(
            ProgramSpec(
                name="mnrt", seed=seed, max_depth=2, arrays=2,
                mem_prob=0.5, store_density=0.4,
            )
        )
        ssa = prepare(prog.func)
        construct_ssa(ssa)
        text = format_function(ssa, normalize=True)
        reparsed = parse_function(text)
        assert format_function(reparsed) == text
        normalized = parse_function(format_function(ssa, normalize=True))
        assert structural_diff(normalized, reparsed) == []
        assert reparsed.arrays == ssa.arrays


class TestStructuralRoundTrip:
    """parse(print(f)) must be *structurally* identical to f — textual
    equality alone is too weak (it cannot tell a versioned parameter
    ``a.1`` from a parameter literally named ``"a.1"``)."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.booleans())
    def test_generated_programs_structural(self, seed, fp):
        from repro.ir.structural import structural_diff

        prog = generate_program(
            ProgramSpec(
                name="srt", seed=seed, max_depth=3, fp_flavor=fp,
                trapping_density=0.1, trapping_hot_prob=0.3,
            )
        )
        reparsed = parse_function(format_function(prog.func))
        assert structural_diff(prog.func, reparsed) == []

    def test_versioned_params_round_trip(self, diamond):
        """SSA functions carry versioned parameters (``func f(a.1)``)."""
        from repro.ir.structural import structural_diff
        from tests.conftest import as_ssa

        ssa = as_ssa(diamond)
        reparsed = parse_function(format_function(ssa))
        assert structural_diff(ssa, reparsed) == []
        assert [(p.name, p.version) for p in reparsed.params] == [
            ("a", 1), ("b", 1), ("c", 1)
        ]

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_compiled_ssa_functions_structural(self, seed):
        """Functions straight out of the PRE pipeline — phis, ``%pre``
        temporaries, versioned params — survive the round-trip."""
        from repro.ir.structural import structural_diff
        from repro.passes.compiler import compile as compile_func
        from repro.pipeline import prepare
        from repro.profiles.interp import run_function
        from repro.bench.generator import random_args
        from repro.ssa.construct import construct_ssa
        from repro.core.mcssapre.driver import run_mc_ssapre

        spec = ProgramSpec(name="crt", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        prepared = prepare(prog.func)
        train = run_function(prepared, args)

        # Destructed (non-SSA) compile output.
        compiled = compile_func(prepared, "mc-ssapre", train.profile)
        reparsed = parse_function(format_function(compiled.func))
        assert structural_diff(compiled.func, reparsed) == []

        # Still-in-SSA function with phis and %pre temps.
        ssa = prepared.clone()
        construct_ssa(ssa)
        run_mc_ssapre(ssa, train.profile.nodes_only())
        reparsed = parse_function(format_function(ssa))
        assert structural_diff(ssa, reparsed) == []
