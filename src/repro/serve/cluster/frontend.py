"""The cluster front end: one asyncio listener, N worker processes.

Clients speak the exact JSON-lines protocol of a single worker — the
cluster is a drop-in replacement for ``python -m repro.serve serve
--port``.  For every request line the front end computes the program's
*structural* artifact key (memoised per distinct request plan; an
unparseable request falls back to a raw content hash so the owning
worker can produce the error response), routes it on the consistent
hash ring, and forwards the line over a pooled connection to the owning
worker.  Structural routing concentrates all of one program's traffic —
every profile variant included — on one worker, which is what makes the
per-worker plan cache and the shared disk tier's write pattern behave.

Supervision: a background task probes each worker (process liveness
plus the in-band ``{"cmd": "ping"}``) and restarts crashed or wedged
workers in place *without* dropping the listener; in-flight requests to
a dying worker are retried against its replacement.  A restarted worker
keeps its ring identity, so no keys move.

``{"cmd": "metrics"}`` answers with the per-worker snapshots merged via
:func:`repro.serve.metrics.merge_metrics_dicts` (schema 3) plus a
``cluster`` block (ring layout, worker states, restart counts).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import socket
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence

from repro.lang.parser import parse_function
from repro.pipeline import PipelineConfig, prepare
from repro.serve.cluster.ring import DEFAULT_VNODES, HashRing
from repro.serve.cluster.worker import WorkerHandle
from repro.serve.keys import structural_key
from repro.serve.metrics import merge_metrics_dicts

#: Per-worker plan-cache capacity (distinct request plans memoised by
#: each worker; see CompileService).
DEFAULT_PLAN_CACHE = 64

#: Longest JSON line accepted on any stream (sources are small).
_LINE_LIMIT = 1 << 20

__all__ = [
    "DEFAULT_PLAN_CACHE",
    "Cluster",
    "ClusterFrontend",
    "race_cold_key",
]


class ClusterFrontend:
    """Asyncio router over a fixed pool of :class:`WorkerHandle`."""

    def __init__(
        self,
        workers: Sequence[WorkerHandle],
        *,
        vnodes: int = DEFAULT_VNODES,
        health_every: float = 0.5,
        unhealthy_after: int = 2,
        route_memo: int = 1024,
    ) -> None:
        self.workers = {w.worker_id: w for w in workers}
        self.ring = HashRing(self.workers, vnodes=vnodes)
        self.health_every = health_every
        self.unhealthy_after = unhealthy_after
        self.requests = 0
        self.routed: dict[str, int] = {wid: 0 for wid in self.workers}
        self.retries = 0
        self._route_memo: OrderedDict[str, str] = OrderedDict()
        self._route_memo_size = route_memo
        self._idle: dict[str, list] = {wid: [] for wid in self.workers}
        self._revive_locks: dict[str, asyncio.Lock] = {}
        self._ping_failures: dict[str, int] = {wid: 0 for wid in self.workers}
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._client_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    async def start(self, host: str, port: int) -> int:
        self._revive_locks = {wid: asyncio.Lock() for wid in self.workers}
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=_LINE_LIMIT
        )
        self._health_task = asyncio.ensure_future(self._health_loop())
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        for conns in self._idle.values():
            for _reader, writer, _port in conns:
                writer.close()
            conns.clear()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        json.dumps(
                            {"status": "error", "error": "request line too long"}
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                response = await self._dispatch(line)
                writer.write(response + b"\n")
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # frontend shutting down
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            writer.close()

    async def _dispatch(self, line: str) -> bytes:
        self.requests += 1
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            return json.dumps(
                {"status": "error", "error": f"bad JSON: {exc}"}
            ).encode()
        if isinstance(data, dict) and data.get("cmd") == "ping":
            return json.dumps(
                {"status": "ok", "pong": True, "role": "frontend"}
            ).encode()
        if isinstance(data, dict) and data.get("cmd") == "metrics":
            return json.dumps(await self.merged_metrics()).encode()
        worker = self.workers[self.ring.route(self._route_key(data))]
        self.routed[worker.worker_id] += 1
        return await self._forward(worker, line)

    # ------------------------------------------------------------------
    def _route_key(self, data) -> str:
        """The routing key: structural artifact key when computable.

        Memoised per request plan (the plan-defining fields minus
        profile inputs), so the parse/prepare cost is paid once per
        distinct program, not per request.  Malformed requests hash
        their raw plan instead — they still route deterministically,
        and the owning worker produces the real error response.
        """
        if not isinstance(data, dict):
            return "raw:" + hashlib.sha256(repr(data).encode()).hexdigest()
        plan = [
            data.get("source"), data.get("variant", "mc-ssapre"),
            data.get("fold_constants", False), data.get("cleanup", False),
            data.get("rounds", 1), data.get("solver", "mincut"),
            data.get("engine", "compiled"),
        ]
        memo_key = json.dumps(plan, default=repr)
        cached = self._route_memo.get(memo_key)
        if cached is not None:
            self._route_memo.move_to_end(memo_key)
            return cached
        try:
            config = PipelineConfig(
                variant=plan[1], fold_constants=bool(plan[2]),
                cleanup=bool(plan[3]), rounds=int(plan[4]), solver=plan[5],
            )
            prepared = prepare(parse_function(plan[0]))
            key = structural_key(prepared, config, engine=plan[6])
        except Exception:  # noqa: BLE001 - malformed request, route on content
            key = "raw:" + hashlib.sha256(memo_key.encode()).hexdigest()
        self._route_memo[memo_key] = key
        self._route_memo.move_to_end(memo_key)
        while len(self._route_memo) > self._route_memo_size:
            self._route_memo.popitem(last=False)
        return key

    # ------------------------------------------------------------------
    async def _forward(self, worker: WorkerHandle, line: str) -> bytes:
        """One exchange with *worker*, retrying across a restart."""
        payload = line.encode()
        for attempt in range(3):
            conn = await self._acquire_conn(worker)
            if conn is None:
                await self._revive(worker)
                continue
            reader, writer, _port = conn
            try:
                writer.write(payload + b"\n")
                await writer.drain()
                raw = await reader.readline()
                if not raw:
                    raise ConnectionError("worker closed the connection")
            except (ConnectionError, OSError):
                writer.close()
                if attempt < 2:
                    self.retries += 1
                    await self._revive(worker)
                continue
            self._idle[worker.worker_id].append(conn)
            return raw.rstrip(b"\n")
        return json.dumps(
            {
                "status": "error",
                "error": f"worker {worker.worker_id} unavailable",
            }
        ).encode()

    async def _acquire_conn(self, worker: WorkerHandle):
        idle = self._idle[worker.worker_id]
        while idle:
            conn = idle.pop()
            if conn[2] == worker.port and not conn[1].is_closing():
                return conn
            conn[1].close()  # stale: worker restarted on a new port
        if worker.port is None:
            return None
        try:
            reader, writer = await asyncio.open_connection(
                worker.host, worker.port, limit=_LINE_LIMIT
            )
        except OSError:
            return None
        return (reader, writer, worker.port)

    async def _revive(self, worker: WorkerHandle) -> None:
        """Restart a dead worker exactly once per incident."""
        async with self._revive_locks[worker.worker_id]:
            if worker.alive():
                return
            loop = asyncio.get_event_loop()
            await loop.run_in_executor(None, worker.restart)
            self._ping_failures[worker.worker_id] = 0
            # Connections to the old incarnation are stale by port.
            for conn in self._idle[worker.worker_id]:
                conn[1].close()
            self._idle[worker.worker_id].clear()

    async def _health_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.health_every)
            for worker in self.workers.values():
                if not worker.alive():
                    await self._revive(worker)
                    continue
                healthy = await loop.run_in_executor(None, worker.healthy)
                if healthy:
                    self._ping_failures[worker.worker_id] = 0
                    continue
                # A loaded worker can miss one ping; only a repeat
                # offender is declared wedged and replaced.
                self._ping_failures[worker.worker_id] += 1
                if self._ping_failures[worker.worker_id] >= self.unhealthy_after:
                    await loop.run_in_executor(None, worker.restart)
                    self._ping_failures[worker.worker_id] = 0
                    for conn in self._idle[worker.worker_id]:
                        conn[1].close()
                    self._idle[worker.worker_id].clear()

    # ------------------------------------------------------------------
    async def merged_metrics(self) -> dict:
        loop = asyncio.get_event_loop()
        snapshots = await asyncio.gather(
            *(
                loop.run_in_executor(None, worker.metrics)
                for worker in self.workers.values()
            )
        )
        merged = merge_metrics_dicts([s for s in snapshots if s])
        merged["cluster"] = self.describe()
        return merged

    def describe(self) -> dict:
        return {
            "workers": [w.describe() for w in self.workers.values()],
            "ring": self.ring.describe(),
            "frontend_requests": self.requests,
            "routed": dict(self.routed),
            "retries": self.retries,
            "restarts": sum(w.restarts for w in self.workers.values()),
        }


class Cluster:
    """Synchronous orchestrator: workers + front end, one call to start.

    Runs the asyncio front end on a dedicated thread so ordinary
    (threaded) code — the CLI, the bench harness, the tests — can treat
    the whole cluster as a context manager with a ``port``.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        cache_dir: str,
        lock_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        plan_cache: int = DEFAULT_PLAN_CACHE,
        worker_threads: int = 2,
        vnodes: int = DEFAULT_VNODES,
        health_every: float = 0.5,
    ) -> None:
        if n_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self.workers = [
            WorkerHandle(
                f"w{i}",
                cache_dir=cache_dir,
                lock_dir=lock_dir,
                plan_cache=plan_cache,
                threads=worker_threads,
                host=host,
            )
            for i in range(n_workers)
        ]
        self.frontend = ClusterFrontend(
            self.workers, vnodes=vnodes, health_every=health_every
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "Cluster":
        # Spawn workers concurrently: each start() blocks on its banner,
        # and the interpreter startups overlap on I/O.
        spawners = [
            threading.Thread(target=w.start, name=f"spawn-{w.worker_id}")
            for w in self.workers
        ]
        for t in spawners:
            t.start()
        for t in spawners:
            t.join(timeout=timeout)
        dead = [w.worker_id for w in self.workers if not w.alive()]
        if dead:
            self.stop()
            raise RuntimeError(f"workers failed to start: {dead}")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster-frontend",
            daemon=True,
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.frontend.start(self.host, self._requested_port), self._loop
        )
        self.port = future.result(timeout=timeout)
        return self

    def stop(self) -> None:
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.frontend.stop(), self._loop
            ).result(timeout=30.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            self._loop.close()
            self._loop = None
            self._thread = None
        for worker in self.workers:
            worker.stop()
        self.port = None

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def merged_metrics(self, timeout: float = 30.0) -> dict:
        assert self._loop is not None, "cluster is not running"
        return asyncio.run_coroutine_threadsafe(
            self.frontend.merged_metrics(), self._loop
        ).result(timeout=timeout)

    def worker_ports(self) -> list[tuple[str, int]]:
        return [(w.host, w.port) for w in self.workers if w.port is not None]


def race_cold_key(
    targets: list[tuple[str, int]],
    request: dict,
    *,
    timeout: float = 60.0,
) -> list[dict]:
    """Fire one identical request at several workers *simultaneously*.

    Connects to each worker's own port — deliberately bypassing the
    ring, which would send every copy to the key's single owner — and
    releases all sends through a barrier.  This is the cross-process
    cold-key race: with a shared lock dir exactly one worker compiles
    and the rest rehydrate from disk, which callers verify by diffing
    merged ``compiles`` counters around the call.
    """
    barrier = threading.Barrier(len(targets))
    results: list[Optional[dict]] = [None] * len(targets)
    errors: list[Optional[Exception]] = [None] * len(targets)
    line = (json.dumps(request) + "\n").encode()

    def shoot(i: int, host: str, port: int) -> None:
        try:
            with socket.create_connection((host, port), timeout=timeout) as sock:
                sock.settimeout(timeout)
                barrier.wait(timeout=timeout)
                sock.sendall(line)
                reader = sock.makefile("r", encoding="utf-8")
                results[i] = json.loads(reader.readline())
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            errors[i] = exc

    threads = [
        threading.Thread(target=shoot, args=(i, host, port))
        for i, (host, port) in enumerate(targets)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 5.0)
    for exc in errors:
        if exc is not None:
            raise RuntimeError(f"race client failed: {exc}") from exc
    if any(r is None for r in results):
        raise RuntimeError(
            f"race did not finish within {time.perf_counter() - start:.1f}s"
        )
    return results  # type: ignore[return-value]
