"""PassManager observability and the verify-between-passes mode."""

import json

import pytest

from repro.ir.instructions import Assign
from repro.passes import (
    Pass,
    PassManager,
    PassReport,
    PassVerificationError,
)
from repro.passes.stages import ConstructSSAPass, DestructSSAPass


class _BreakSSAPass(Pass):
    """Deliberately redefines an SSA version (a broken transform)."""

    name = "break-ssa"

    def run(self, func, ctx):
        block = func.blocks[func.entry]
        target = None
        for stmt in block.body:
            if isinstance(stmt, Assign):
                target = stmt.target
                break
        assert target is not None
        block.body.append(Assign(target, target))


class _CountingPass(Pass):
    name = "counting"

    def run(self, func, ctx):
        return 42


def test_report_records_sizes_times_and_payloads(while_loop):
    report = PassManager().run(
        while_loop,
        [ConstructSSAPass(), _CountingPass(), DestructSSAPass()],
        variant="unit",
    )
    assert isinstance(report, PassReport)
    assert [ex.name for ex in report.executions] == [
        "construct-ssa",
        "counting",
        "destruct-ssa",
    ]
    construct = report.execution("construct-ssa")
    assert construct.wall_time >= 0
    assert construct.blocks_before == construct.blocks_after
    assert construct.stmts_after >= construct.stmts_before
    assert report.execution("counting").payload == 42
    assert report.total_time >= sum(ex.wall_time for ex in report.executions)
    with pytest.raises(KeyError):
        report.execution("nonexistent")


def test_report_serialises_to_json(while_loop):
    report = PassManager().run(
        while_loop, [ConstructSSAPass(), DestructSSAPass()], variant="unit"
    )
    data = json.loads(report.to_json())
    assert data["function"] == while_loop.name
    assert data["variant"] == "unit"
    assert [p["pass"] for p in data["passes"]] == [
        "construct-ssa",
        "destruct-ssa",
    ]
    for entry in data["passes"]:
        assert set(entry) >= {
            "wall_ms", "blocks", "statements", "cache_hits", "cache_misses",
        }
    assert "cfg" in data["cache"]
    rendered = report.render()
    assert "construct-ssa" in rendered
    assert "cache" in rendered


def test_verify_each_names_the_offending_pass(while_loop):
    manager = PassManager(verify_each=True)
    with pytest.raises(PassVerificationError, match="'break-ssa'"):
        manager.run(while_loop, [ConstructSSAPass(), _BreakSSAPass()])


def test_verify_each_passes_clean_pipeline(while_loop):
    report = PassManager(verify_each=True).run(
        while_loop, [ConstructSSAPass(), DestructSSAPass()]
    )
    assert report.verified
