"""Section-4 comparison harness: MC-SSAPRE vs MC-PRE problem sizes.

The paper argues MC-SSAPRE's flow networks (EFGs, built from the sparse
SSA graph) are much smaller than MC-PRE's (built from the CFG), and that
both algorithms reach the same optimum.  This harness compiles every
benchmark with both and reports, per suite:

* number of non-trivial flow networks formed;
* node/edge count distributions of EFGs vs MC-PRE reduced graphs;
* total min-cut work (sum over networks of V²·E as a crude effort proxy);
* measured wall-clock compile time of each algorithm;
* the per-expression dynamic evaluation counts, which must agree.

Also exercised directly by ``tests/bench/test_comparison.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.mcpre import run_mc_pre
from repro.bench.workloads import Workload
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa


@dataclass
class SizeComparison:
    """Problem-size statistics of both algorithms on one workload."""

    name: str
    efg_nodes: list[int] = field(default_factory=list)
    efg_edges: list[int] = field(default_factory=list)
    mcpre_nodes: list[int] = field(default_factory=list)
    mcpre_edges: list[int] = field(default_factory=list)
    mc_ssapre_cost: int = 0
    mc_pre_cost: int = 0
    mc_ssapre_seconds: float = 0.0
    mc_pre_seconds: float = 0.0

    @staticmethod
    def _effort(nodes: list[int], edges: list[int]) -> int:
        return sum(n * n * e for n, e in zip(nodes, edges))

    @property
    def efg_effort(self) -> int:
        return self._effort(self.efg_nodes, self.efg_edges)

    @property
    def mcpre_effort(self) -> int:
        return self._effort(self.mcpre_nodes, self.mcpre_edges)


def compare_workload(workload: Workload, use_train_as_ref: bool = False) -> SizeComparison:
    """Compile one workload with MC-SSAPRE and MC-PRE and compare."""
    prepared = prepare(workload.program.func)
    train = run_function(prepared, workload.train_args)
    ref_args = workload.train_args if use_train_as_ref else workload.ref_args

    ssa_version = prepare(workload.program.func)
    construct_ssa(ssa_version)
    started = time.perf_counter()
    mc_ssa_result = run_mc_ssapre(ssa_version, train.profile.nodes_only())
    mc_ssa_seconds = time.perf_counter() - started
    destruct_ssa(ssa_version)
    mc_ssa_run = run_function(ssa_version, ref_args)

    cfg_version = prepare(workload.program.func)
    started = time.perf_counter()
    mc_pre_result = run_mc_pre(cfg_version, train.profile)
    mc_pre_seconds = time.perf_counter() - started
    mc_pre_run = run_function(cfg_version, ref_args)

    comparison = SizeComparison(name=workload.name)
    for stat in mc_ssa_result.efg_stats:
        comparison.efg_nodes.append(stat.nodes)
        comparison.efg_edges.append(stat.edges)
    for stat in mc_pre_result.stats:
        comparison.mcpre_nodes.append(stat.nodes)
        comparison.mcpre_edges.append(stat.edges)
    comparison.mc_ssapre_cost = mc_ssa_run.dynamic_cost
    comparison.mc_pre_cost = mc_pre_run.dynamic_cost
    comparison.mc_ssapre_seconds = mc_ssa_seconds
    comparison.mc_pre_seconds = mc_pre_seconds
    return comparison


def render_comparison(comparisons: list[SizeComparison]) -> str:
    header = (
        f"{'Benchmark':<12} {'#EFG':>5} {'EFG avg V':>10} {'EFG max V':>10} "
        f"{'#CFGnet':>8} {'CFG avg V':>10} {'CFG max V':>10} "
        f"{'effort ratio':>13} {'compile time':>17}"
    )
    lines = [
        "Section 4: MC-SSAPRE (EFG) vs MC-PRE (CFG) flow-network sizes",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for c in comparisons:
        def avg(xs):
            return sum(xs) / len(xs) if xs else 0.0

        ratio = (c.mcpre_effort / c.efg_effort) if c.efg_effort else float("inf")
        lines.append(
            f"{c.name:<12} {len(c.efg_nodes):>5} {avg(c.efg_nodes):>10.1f} "
            f"{max(c.efg_nodes, default=0):>10} {len(c.mcpre_nodes):>8} "
            f"{avg(c.mcpre_nodes):>10.1f} {max(c.mcpre_nodes, default=0):>10} "
            f"{ratio:>12.1f}x "
            f"{c.mc_ssapre_seconds:>7.2f}s vs {c.mc_pre_seconds:>5.2f}s"
        )
    return "\n".join(lines)
