"""The speculation-solver strategy layer.

MC-SSAPRE's steps 1–6 turn one expression class into a *reduced SSA
graph* (:class:`~repro.core.mcssapre.reduction.ReducedGraph`): the
insertion candidates (Φ operands), the strictly-partially-redundant real
occurrences, and the def-use edges between them, each weighted with a
node frequency from the execution profile.  Step 7 — *where do the
insertions go* — is a pure optimisation problem over that structure, and
this module makes it pluggable:

* a :class:`SpeculationSolver` consumes a reduced graph plus node
  frequencies and produces a :class:`SolverDecision` — which Φ operands
  receive an insertion and which occurrences compute in place — exactly
  the flags steps 8–10 (WillBeAvail, Finalize, CodeMotion) consume;
* :class:`~repro.core.solvers.mincut.MinCutSolver` is the paper's
  flow-network reduction (the machinery in :mod:`repro.flownet` is its
  private detail);
* :class:`~repro.core.solvers.lospre.LospreSolver` solves the same
  problem by dynamic programming over a width-bounded tree decomposition
  — linear time on the low-treewidth graphs structured programs produce
  — and *refuses* (returns ``None``) when the width bound is exceeded;
* :func:`~repro.core.solvers.shape.select_solver` is the ``auto``
  policy: classify the CFG shape, try lospre where it applies, fall back
  to the min cut everywhere else.

Every solver must produce the **same** placement: the lifetime-optimal
minimum cut (the unique one closest to the sink, Theorem 9).  The
``repro.check`` optimality oracle enforces this exactly on every fuzz
seed, and the solver-scaling section of ``BENCH.json`` pins it alongside
the compile-time win.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mcssapre.reduction import ReducedGraph
    from repro.core.ssapre.frg import PhiOperand, RealOcc
    from repro.profiles.profile import ExecutionProfile

#: The solver knob's accepted spellings, everywhere it is plumbed
#: (PipelineConfig, pass stages, the check/bench/perf CLIs, serve).
SOLVER_NAMES = ("mincut", "lospre", "auto")

#: The knob's default: the paper's flow-network reduction.
DEFAULT_SOLVER = "mincut"


@dataclass
class SolverDecision:
    """An interpreted placement decision for one expression class.

    ``insert_operands`` have had their ``insert`` flag set (and every
    other candidate operand's flag cleared); ``in_place_occs`` are the
    SPR occurrences the solver chose to leave computing in place.
    ``cut_value`` is the predicted dynamic evaluation count chargeable
    to the placement — identical across solvers by the exactness
    contract.
    """

    solver: str
    cut_value: int
    insert_operands: "list[PhiOperand]" = field(default_factory=list)
    in_place_occs: "list[RealOcc]" = field(default_factory=list)
    nodes: int = 0
    edges: int = 0
    #: Tree-decomposition width achieved (lospre only; None for min cut).
    width: int | None = None

    @property
    def predicted_dynamic_count(self) -> int:
        return self.cut_value


class SpeculationSolver(ABC):
    """Strategy interface for MC-SSAPRE's placement decision (step 7).

    A solver is stateless and reusable across classes, rounds and
    functions.  ``solve`` receives a *non-empty* reduced graph (at least
    one SPR occurrence) and the training profile (node frequencies
    only), and either returns a :class:`SolverDecision` — having set the
    ``insert`` flag on exactly the chosen operands — or ``None`` to
    refuse the instance (only :class:`LospreSolver` does, when the
    width bound is exceeded; the driver then falls back to the min cut).
    """

    #: Registry name; also what PassReports and BENCH.json record.
    name: str

    @abstractmethod
    def solve(
        self, reduced: "ReducedGraph", profile: "ExecutionProfile"
    ) -> SolverDecision | None:
        """Decide insertions for one reduced graph, in place."""


def resolve_solver(solver: "str | SpeculationSolver") -> "SpeculationSolver":
    """A :class:`SpeculationSolver` instance from a name or instance.

    ``"auto"`` is a *policy*, not a solver: it must be resolved against a
    concrete function first (:func:`repro.core.solvers.shape.select_solver`),
    so asking for it here is an error.
    """
    if isinstance(solver, SpeculationSolver):
        return solver
    if solver == "mincut":
        from repro.core.solvers.mincut import MinCutSolver

        return MinCutSolver()
    if solver == "lospre":
        from repro.core.solvers.lospre import LospreSolver

        return LospreSolver()
    if solver == "auto":
        raise ValueError(
            "'auto' is a selection policy; resolve it per function with "
            "repro.core.solvers.shape.select_solver"
        )
    raise ValueError(
        f"unknown solver {solver!r}; expected one of {SOLVER_NAMES}"
    )
