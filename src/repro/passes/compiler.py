"""The single compilation entry point: :func:`compile`.

One call takes a *prepared* function (see :func:`repro.pipeline.prepare`)
plus a variant name, clones the input with the fast
:meth:`Function.clone` (never mutating the caller's copy), runs the
variant's pipeline spec through a :class:`PassManager`, and returns the
transformed function together with the PRE driver's result object and a
structured :class:`PassReport`.

A *pipeline spec* is an ordered list of stages; each stage is either a
:class:`~repro.passes.base.Pass` instance or the registered name of one
(see :data:`STAGES`).  The optional SCCP / cleanup neighbours of PRE are
ordinary stages in the spec — there is no out-of-band post-processing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.worklist import DEFAULT_ITERATIVE_ROUNDS
from repro.ir.function import Function
from repro.passes.base import Pass, PassError
from repro.passes.manager import PassManager, PassReport
from repro.passes.stages import (
    ConstructSSAPass,
    CopyPropagationPass,
    DCEPass,
    DestructSSAPass,
    GVNPass,
    ISPREBaselinePass,
    LCMBaselinePass,
    MCPREBaselinePass,
    MCSSAPREPass,
    SCCPPass,
    SSAPREPass,
    VerifyPass,
)
from repro.profiles.profile import ExecutionProfile

#: All PRE variants the compiler can drive (paper Section 5.1 protocol).
VARIANTS = ("none", "ssapre", "ssapre-sp", "mc-ssapre", "mc-pre", "ispre", "lcm")

#: Stage-name registry for textual pipeline specs.
STAGES: dict[str, type[Pass] | object] = {
    "construct-ssa": ConstructSSAPass,
    "destruct-ssa": DestructSSAPass,
    "sccp": SCCPPass,
    "copyprop": CopyPropagationPass,
    "dce": DCEPass,
    "gvn": GVNPass,
    "ssapre": lambda: SSAPREPass(speculate_loops=False),
    "ssapre-sp": lambda: SSAPREPass(speculate_loops=True),
    "mc-ssapre": MCSSAPREPass,
    "mc-pre": MCPREBaselinePass,
    "ispre": ISPREBaselinePass,
    "lcm": LCMBaselinePass,
    "verify": VerifyPass,
    # Iterative (rank-ordered worklist) twins of the SSA-based variants.
    "ssapre-iter": lambda: SSAPREPass(rounds=DEFAULT_ITERATIVE_ROUNDS),
    "ssapre-sp-iter": lambda: SSAPREPass(
        speculate_loops=True, rounds=DEFAULT_ITERATIVE_ROUNDS
    ),
    "mc-ssapre-iter": lambda: MCSSAPREPass(rounds=DEFAULT_ITERATIVE_ROUNDS),
}

#: Pass names whose payload is the variant's primary PRE result.
_PRE_STAGE_NAMES = (
    "ssapre", "ssapre-sp", "mc-ssapre", "mc-pre", "ispre", "lcm",
    "ssapre-iter", "ssapre-sp-iter", "mc-ssapre-iter",
)


def resolve_stage(stage: str | Pass) -> Pass:
    """A :class:`Pass` instance from a spec entry (name or instance)."""
    if isinstance(stage, Pass):
        return stage
    factory = STAGES.get(stage)
    if factory is None:
        raise PassError(
            f"unknown pipeline stage {stage!r}; known: {sorted(STAGES)}"
        )
    return factory()


def build_pipeline(
    variant: str,
    *,
    fold_constants: bool = False,
    cleanup: bool = False,
    rounds: int = 1,
    solver: str = "mincut",
) -> list[Pass]:
    """The default pipeline spec of one PRE variant.

    SSA-based variants bracket their PRE stage with SSA construction and
    destruction; ``fold_constants`` slots SCCP before PRE and ``cleanup``
    slots copy propagation + DCE after it, exactly where a production
    middle-end puts the neighbours of PRE.  ``rounds > 1`` selects the
    iterative worklist form of the SSA-based PRE stage (the CFG
    baselines are inherently one-shot and reject it).  ``solver`` picks
    the mc-ssapre speculation back end ("mincut"/"lospre"/"auto"); the
    other variants accept only the default.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if solver != "mincut" and variant != "mc-ssapre":
        raise ValueError(
            f"solver={solver!r} applies only to the mc-ssapre variant, "
            f"not {variant!r}"
        )
    if variant == "none":
        return []
    if variant in ("mc-pre", "ispre", "lcm"):
        if rounds > 1:
            raise ValueError(
                f"variant {variant!r} is a one-shot CFG baseline; "
                "iterative rounds apply only to the SSA-based variants"
            )
        return [resolve_stage(variant)]
    spec: list[Pass] = [ConstructSSAPass()]
    if fold_constants:
        spec.append(SCCPPass())
    if variant == "mc-ssapre":
        spec.append(MCSSAPREPass(rounds=rounds, solver=solver))
    else:
        spec.append(SSAPREPass(
            speculate_loops=(variant == "ssapre-sp"), rounds=rounds
        ))
    if cleanup:
        spec.append(CopyPropagationPass())
        spec.append(DCEPass())
    spec.append(DestructSSAPass())
    return spec


@dataclass
class CompiledFunction:
    """A compiled variant plus the optimisation result and pass report."""

    variant: str
    func: Function
    pre_result: object | None = None
    report: PassReport | None = None
    #: The pipeline's analysis cache, still bound to :attr:`func`.  Kept
    #: so downstream consumers (the check driver, ``repro.perf``) can run
    #: the function through the compiled execution back end without
    #: re-lowering it on every input (see
    #: :data:`repro.passes.analyses.COMPILED_ANALYSIS`).
    cache: object | None = None


def compile(  # noqa: A001 - deliberate: the entry point is *the* compile
    func: Function,
    variant: str = "ssapre",
    profile: ExecutionProfile | None = None,
    *,
    pipeline_spec: list[str | Pass] | None = None,
    validate: bool = False,
    verify_each: bool = False,
    clone: bool = True,
    rounds: int = 1,
    solver: str = "mincut",
) -> CompiledFunction:
    """Compile one variant of an already-prepared function.

    The input is never mutated (unless ``clone=False`` is requested by a
    caller that owns the function).  ``pipeline_spec`` overrides the
    variant's default stage list; ``validate`` runs the drivers' internal
    verifiers; ``verify_each`` additionally re-verifies the whole
    function between passes, naming the pass that broke an invariant.
    ``rounds > 1`` compiles the SSA-based variants with the iterative
    rank-ordered worklist and ``solver`` picks the mc-ssapre speculation
    back end (both ignored when ``pipeline_spec`` is given).

    The profiled variants (``mc-ssapre``, ``mc-pre``, ``ispre``) raise
    :class:`ValueError` when *profile* is missing, matching the
    historical ``compile_variant`` contract.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if profile is None and variant in ("mc-ssapre", "mc-pre", "ispre"):
        raise ValueError(f"{variant} requires an execution profile")

    report = PassReport(function=func.name, variant=variant)
    t0 = time.perf_counter()
    work = func.clone() if clone else func
    report.clone_time = time.perf_counter() - t0
    report.total_time += report.clone_time

    if pipeline_spec is None:
        passes = build_pipeline(variant, rounds=rounds, solver=solver)
    else:
        passes = [resolve_stage(stage) for stage in pipeline_spec]

    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache(work)
    manager = PassManager(verify_each=verify_each)
    manager.run(
        work,
        passes,
        profile=profile,
        validate=validate,
        variant=variant,
        cache=cache,
        report=report,
    )
    if validate:
        from repro.ir.verifier import verify_function

        verify_function(work)

    pre_result = None
    for ex in report.executions:
        if ex.name in _PRE_STAGE_NAMES:
            pre_result = ex.payload
    return CompiledFunction(
        variant=variant,
        func=work,
        pre_result=pre_result,
        report=report,
        cache=cache,
    )
