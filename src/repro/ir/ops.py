"""Operator definitions, semantics and cost model for the IR.

Every binary/unary operator the IR supports is described here in one table
so the interpreter, the verifier, the random program generator and the PRE
cost model all agree.

Semantics are *total* over Python integers: division and modulo by zero are
defined to yield 0 so the interpreter never traps.  Operators that would
fault on real hardware are still flagged ``trapping`` because the paper
(Section 2) forbids speculating computations that can cause runtime
exceptions; the speculative PRE drivers honour that flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    # Truncating division, like C.
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _smod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _sdiv(a, b) * b


_MASK = (1 << 64) - 1


def _shl(a: int, b: int) -> int:
    return (a << (b & 63)) & _MASK


def _shr(a: int, b: int) -> int:
    return (a & _MASK) >> (b & 63)


@dataclass(frozen=True, slots=True)
class OpInfo:
    """Static description of one operator."""

    name: str
    arity: int
    func: Callable[..., int]
    cost: int
    trapping: bool = False
    commutative: bool = False


#: All binary operators, keyed by mnemonic.
BINARY_OPS: Mapping[str, OpInfo] = {
    op.name: op
    for op in (
        OpInfo("add", 2, lambda a, b: a + b, cost=1, commutative=True),
        OpInfo("sub", 2, lambda a, b: a - b, cost=1),
        OpInfo("mul", 2, lambda a, b: a * b, cost=4, commutative=True),
        OpInfo("div", 2, _sdiv, cost=16, trapping=True),
        OpInfo("mod", 2, _smod, cost=16, trapping=True),
        OpInfo("and", 2, lambda a, b: a & b, cost=1, commutative=True),
        OpInfo("or", 2, lambda a, b: a | b, cost=1, commutative=True),
        OpInfo("xor", 2, lambda a, b: a ^ b, cost=1, commutative=True),
        OpInfo("shl", 2, _shl, cost=1),
        OpInfo("shr", 2, _shr, cost=1),
        OpInfo("min", 2, min, cost=1, commutative=True),
        OpInfo("max", 2, max, cost=1, commutative=True),
        OpInfo("eq", 2, lambda a, b: int(a == b), cost=1, commutative=True),
        OpInfo("ne", 2, lambda a, b: int(a != b), cost=1, commutative=True),
        OpInfo("lt", 2, lambda a, b: int(a < b), cost=1),
        OpInfo("le", 2, lambda a, b: int(a <= b), cost=1),
        OpInfo("gt", 2, lambda a, b: int(a > b), cost=1),
        OpInfo("ge", 2, lambda a, b: int(a >= b), cost=1),
        # "Floating-point flavoured" operators used by the CFP-like synthetic
        # workloads.  Semantically integer, but costed like FP pipelines.
        OpInfo("fadd", 2, lambda a, b: a + b, cost=3, commutative=True),
        OpInfo("fmul", 2, lambda a, b: a * b, cost=5, commutative=True),
        OpInfo("fdiv", 2, _sdiv, cost=24, trapping=True),
    )
}

def _isqrt(a: int) -> int:
    import math

    return math.isqrt(abs(a))


#: All unary operators, keyed by mnemonic.
UNARY_OPS: Mapping[str, OpInfo] = {
    op.name: op
    for op in (
        OpInfo("neg", 1, lambda a: -a, cost=1),
        OpInfo("not", 1, lambda a: ~a, cost=1),
        OpInfo("abs", 1, abs, cost=1),
        OpInfo("sqrti", 1, _isqrt, cost=20),
    )
}


def _no_direct_eval(*_args: int) -> int:  # pragma: no cover - never called
    raise RuntimeError("memory operators are evaluated against the array "
                       "environment, not through OpInfo.func")


#: Memory operators.  They are not ordinary expression operators — a load
#: names an array symbol plus an index operand, a store additionally takes
#: a value — but they share the OpInfo cost/trapping vocabulary so the
#: interpreter, the cost model and the speculation-safety machinery treat
#: them uniformly.  ``load`` is *genuinely* trapping: an out-of-bounds
#: index raises at run time (unlike div/mod, whose semantics are total),
#: so speculating a load can introduce a fault that the original program
#: never had.  ``store`` is never a speculation candidate (it is not an
#: expression), but it carries a cost.
MEMORY_OPS: Mapping[str, OpInfo] = {
    op.name: op
    for op in (
        OpInfo("load", 1, _no_direct_eval, cost=8, trapping=True),
        OpInfo("store", 2, _no_direct_eval, cost=8),
    )
}

LOAD_COST = MEMORY_OPS["load"].cost
STORE_COST = MEMORY_OPS["store"].cost


def op_info(name: str) -> OpInfo:
    """Look up an operator by mnemonic, searching all operator tables."""
    info = BINARY_OPS.get(name) or UNARY_OPS.get(name) or MEMORY_OPS.get(name)
    if info is None:
        raise KeyError(f"unknown operator: {name!r}")
    return info


def is_trapping(name: str) -> bool:
    """True when the operator may fault on real hardware (unspeculatable)."""
    return op_info(name).trapping


#: Cost charged for instructions that are not operator applications.
COPY_COST = 0  # register moves are assumed coalesced away
PHI_COST = 0  # phis are not real instructions
BRANCH_COST = 1
OUTPUT_COST = 0
