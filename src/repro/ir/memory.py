"""Array memory model: initial contents and the conservative alias lattice.

Arrays are function-level symbols (``Function.arrays`` maps name →
length) living outside the SSA value namespace.  Their initial contents
are a *deterministic pure function of (name, length)* — both execution
engines, the serving layer and every pickled artifact must agree on the
bytes in memory at entry, so the fill below is a tiny explicit LCG seeded
from the array name (no ``hash()``, which varies with PYTHONHASHSEED).

The alias model is a three-point lattice, deliberately conservative:

* **no-alias** — distinct array symbols never alias (arrays are disjoint
  objects), and the same array at two *unequal constant* indices never
  aliases;
* **may-alias** — everything else (any symbolic index against anything
  in the same array, equal constants trivially alias).

"May-alias" is all the redundancy machinery needs: a store to a location
that may alias a load's location kills the load's availability /
anticipability downstream.  Refining the lattice (e.g. value-based index
comparison) only ever *removes* kills, so every layer that consumes
:func:`may_alias` / :func:`store_kills_key` stays sound under refinement.
"""

from __future__ import annotations

from repro.ir.values import Const, Operand

#: Upper bound accepted for a declared array length (keeps generated
#: programs and the serving layer's memory footprint bounded).
MAX_ARRAY_LENGTH = 1 << 16


def initial_array(name: str, length: int) -> list[int]:
    """The deterministic initial contents of array *name* of *length*.

    Small signed values in [-128, 128] from an LCG seeded by the name's
    bytes — stable across processes, platforms and hash seeds.
    """
    seed = 0
    for byte in name.encode("utf-8"):
        seed = (seed * 131 + byte) & 0xFFFFFFFF
    x = seed | 1
    values = []
    for _ in range(length):
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        values.append(x % 257 - 128)
    return values


def may_alias(
    array_a: str, index_a: Operand, array_b: str, index_b: Operand
) -> bool:
    """Whether two (array, index) locations may refer to the same cell."""
    if array_a != array_b:
        return False
    if (
        isinstance(index_a, Const)
        and isinstance(index_b, Const)
        and index_a.value != index_b.value
    ):
        return False
    return True


def store_kills_key(store_array: str, store_index: Operand, key: tuple) -> bool:
    """Whether a store to ``(store_array, store_index)`` kills *key*.

    *key* is an expression-class key; only load keys
    ``("load", ("arr", name), index_base_key)`` can be killed by memory
    writes — scalar expression classes are never affected.  The index in
    the key is a *base* key (versions stripped), so a symbolic index
    matches any store index into the same array: base-name equality tells
    us nothing about runtime values, which is exactly the conservative
    answer.
    """
    if key[0] != "load":
        return False
    if key[1][1] != store_array:
        return False
    idx_key = key[2]
    if (
        isinstance(store_index, Const)
        and idx_key[0] == "const"
        and idx_key[1] != store_index.value
    ):
        return False
    return True


def is_load_key(key: tuple) -> bool:
    """True for the expression-class key of a load."""
    return key[0] == "load"


def load_in_bounds(key: tuple, arrays: dict[str, int]) -> bool:
    """A load class that provably never traps: constant index within the
    declared bounds of its array.  Symbolic indices may hold any runtime
    value, so they can never be proven safe here."""
    if key[0] != "load":
        return False
    kind, payload = key[2]
    if kind != "const":
        return False
    length = arrays.get(key[1][1])
    return (
        length is not None
        and isinstance(payload, int)
        and not isinstance(payload, bool)
        and 0 <= payload < length
    )


def key_may_trap(key: tuple, arrays: dict[str, int]) -> bool:
    """May evaluating this expression class raise at runtime?

    This is the predicate speculation decisions are made over (paper
    Section 2 excludes exception-throwing computations from speculation).
    Ops flagged trapping in the ops table generally may trap — with one
    refinement: a ``load`` whose index is a constant inside the declared
    array bounds *provably cannot* fault, so hoisting it past a branch
    cannot introduce an exception the original program lacked.  That
    refinement is what lets MC-SSAPRE speculate loop-invariant loads
    under the profile while variable-index loads keep the safe fallback.
    The MC-SSAPRE driver, the MC-PRE baseline and the speculation-safety
    oracle all share this predicate, so "what the optimizers may
    speculate" and "what the checker flags" never drift apart.
    """
    from repro.ir.ops import is_trapping

    if not is_trapping(key[0]):
        return False
    if key[0] == "load":
        return not load_in_bounds(key, arrays)
    return True
