"""CFG-normalising transforms required by the PRE algorithms.

* :func:`split_critical_edges` — both SSAPRE and MC-SSAPRE assume all
  critical edges have been removed by inserting empty blocks (paper,
  Section 3.1.2), so that insertions at a Φ operand can always be placed at
  the exit of the corresponding predecessor block.
* :func:`restructure_while_loops` — the traditional while→do-while
  rotation of paper Figure 1.  The paper's compiler "always restructures
  while loops" so that loop-invariant code motion inside safe SSAPRE needs
  no speculation; our pipeline applies the same normalisation before SSA
  construction.
"""

from __future__ import annotations

import copy

from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import LoopForest
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import CondJump, Jump, retarget


def split_critical_edges(func: Function) -> list[str]:
    """Insert an empty block on every critical edge.

    Returns the labels of the inserted blocks.  Phi arguments in the edge
    target are re-keyed to the new block.  Safe on SSA and non-SSA input.
    """
    cfg = CFG(func)
    critical = [
        (src, dst) for src, dst in cfg.edges() if cfg.is_critical_edge(src, dst)
    ]
    inserted: list[str] = []
    for src, dst in critical:
        mid = func.add_block(func.fresh_label("split"))
        mid.terminator = Jump(dst)
        retarget(func.blocks[src].terminator, dst, mid.label)
        for phi in func.blocks[dst].phis:
            if src in phi.args:
                phi.args[mid.label] = phi.args.pop(src)
        inserted.append(mid.label)
    return inserted


def restructure_while_loops(func: Function) -> list[str]:
    """Rotate while loops into do-while form (paper Figure 1).

    For each natural loop whose header both tests the exit condition and is
    entered from outside, the header is cloned into an *entry test* block;
    outside predecessors are redirected to the clone.  After the transform
    the original header is only reached from inside the loop, i.e. the body
    executes at least once per entry that passes the test — exactly the
    do-while shape that lets safe PRE hoist invariants without speculation.

    Must run **before** SSA construction (cloned blocks duplicate plain
    assignments; phis cannot be naively cloned).  Returns the clone labels.
    """
    for block in func:
        if block.phis:
            raise ValueError("restructure_while_loops requires non-SSA input")

    clones: list[str] = []
    done: set[str] = set()  # headers already rotated once
    while True:
        cfg = CFG(func)
        domtree = DominatorTree(cfg)
        forest = LoopForest(cfg, domtree)
        rotated = False
        for loop in sorted(forest, key=lambda l: l.header):
            if loop.header in done:
                continue
            header = func.blocks[loop.header]
            if not isinstance(header.terminator, CondJump):
                continue
            succs = set(header.successors())
            exits = succs - loop.blocks
            insides = succs & loop.blocks
            if len(exits) != 1 or len(insides) != 1:
                continue
            outside_preds = loop.entry_preds(cfg)
            if not outside_preds and loop.header != func.entry:
                continue
            clone = func.add_block(func.fresh_label(f"{loop.header}_test"))
            clone.body = copy.deepcopy(header.body)
            clone.terminator = copy.deepcopy(header.terminator)
            for pred in outside_preds:
                retarget(func.blocks[pred].terminator, loop.header, clone.label)
            if loop.header == func.entry:
                func.entry = clone.label
            done.add(loop.header)
            clones.append(clone.label)
            rotated = True
            break  # recompute loop structure after each rotation
        if not rotated:
            return clones
