"""Loop-based conservative speculation (the SSAPREsp baseline).

Lo et al. [18] extended SSAPRE with a profile-independent form of
speculation: computations that are invariant in a loop are hoisted to the
loop header even when the loop may execute zero iterations, because the
expected win inside the loop outweighs one evaluation at the header.  The
paper benchmarks this variant as **SSAPREsp** (compile B).

In FRG terms the extension is a single relaxation: a Φ at a loop header is
treated as down-safe when the expression is computed inside that loop with
the Φ's own version — i.e. the value the header Φ would carry is exactly
the value the loop keeps recomputing.  Trapping expressions are never
speculated (paper Section 2).
"""

from __future__ import annotations

from repro.analysis.loops import LoopForest
from repro.core.ssapre.frg import FRG
from repro.ir.memory import key_may_trap


def apply_loop_speculation(frg: FRG, forest: LoopForest | None = None) -> int:
    """Upgrade ``down_safe`` at qualifying loop-header Φs.

    Returns the number of Φs whose down-safety was speculatively granted.
    Must run after :func:`~repro.core.ssapre.downsafety.compute_down_safety`
    and before WillBeAvail.
    """
    if key_may_trap(frg.expr.key, frg.func.arrays):
        return 0
    if forest is None:
        forest = LoopForest(frg.cfg, frg.domtree)
    if not len(forest):
        return 0

    upgraded = 0
    for phi in frg.phis:
        if phi.down_safe:
            continue
        loop = forest.loop_of_header(phi.label)
        if loop is None:
            continue
        if _used_inside_loop(frg, phi, loop.blocks):
            phi.down_safe = True
            upgraded += 1
    return upgraded


def _used_inside_loop(frg: FRG, phi, loop_blocks: set[str]) -> bool:
    """Is the Φ's version computed by a real occurrence inside the loop?"""
    for occ in frg.real_occs:
        if occ.label in loop_blocks and occ.def_node is phi:
            return True
    # The version may also flow through an inner-loop Φ before being
    # computed; chase operand uses within the loop.
    seen = {id(phi)}
    worklist = [phi]
    while worklist:
        current = worklist.pop()
        operand_uses, real_uses = frg.phi_uses(current)
        for occ in real_uses:
            if occ.label in loop_blocks:
                return True
        for operand in operand_uses:
            user = operand.phi
            if user.label in loop_blocks and id(user) not in seen:
                seen.add(id(user))
                worklist.append(user)
    return False
