"""Tests for the MC-PRE baseline."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mcpre import run_mc_pre
from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.profiles.interp import run_function
from tests.core.test_optimality import normalize_counts


class TestBasics:
    def test_rejects_ssa_input(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        with pytest.raises(ValueError):
            run_mc_pre(diamond, None)

    def test_hoists_loop_invariant(self, while_loop):
        from repro.ir.transforms import split_critical_edges

        split_critical_edges(while_loop)
        run = run_function(copy.deepcopy(while_loop), [2, 3, 40])
        result = run_mc_pre(while_loop, run.profile, validate=True)
        after = run_function(while_loop, [2, 3, 40])
        ab = ("add", ("var", "a"), ("var", "b"))
        assert after.expr_counts[ab] == 1
        assert after.observable() == run.observable()
        assert result.insertions >= 1

    def test_local_cse(self, straightline):
        run = run_function(copy.deepcopy(straightline), [2, 3])
        run_mc_pre(straightline, run.profile)
        after = run_function(straightline, [2, 3])
        ab = ("add", ("var", "a"), ("var", "b"))
        assert after.expr_counts[ab] == 1
        assert after.return_value == 25

    def test_network_stats_have_split_nodes(self, while_loop):
        from repro.ir.transforms import split_critical_edges

        split_critical_edges(while_loop)
        run = run_function(copy.deepcopy(while_loop), [2, 3, 5])
        result = run_mc_pre(while_loop, run.profile)
        assert result.stats
        # CFG-based networks are strictly larger than the 4-node minimum
        # EFG for the same redundancy (Section 4's size argument).
        assert max(result.network_sizes()) > 4

    def test_trapping_gets_safe_optimal_placement(self):
        from repro.ir.builder import FunctionBuilder

        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "div", "a", "b")
        b.assign("y", "div", "a", "b")  # fully redundant: safe to delete
        b.assign("z", "add", "x", "y")
        b.ret("z")
        func = b.build()
        run = run_function(copy.deepcopy(func), [8, 2])
        result = run_mc_pre(func, run.profile)
        assert result.skipped_trapping == 1
        after = run_function(func, [8, 2])
        key = ("div", ("var", "a"), ("var", "b"))
        assert after.expr_counts[key] == 1  # local CSE still applies
        assert after.return_value == 8


class TestOptimalityAgreement:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=10_000, max_value=20_000))
    def test_equal_counts_with_mc_ssapre(self, seed):
        """Both algorithms are computationally optimal: per-class dynamic
        counts must agree under the same profile (the strongest
        cross-check in the suite)."""
        from repro.pipeline import run_experiment

        spec = ProgramSpec(name="agree", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        experiment = run_experiment(
            prog.func, args, args, variants=("mc-ssapre", "mc-pre")
        )
        a = normalize_counts(experiment.measurements["mc-ssapre"].expr_counts)
        b = normalize_counts(experiment.measurements["mc-pre"].expr_counts)
        for key in set(a) | set(b):
            assert a.get(key, 0) == b.get(key, 0), key

    def test_edge_profile_needed(self, while_loop):
        """MC-PRE genuinely consumes edge frequencies: zeroing them
        changes its view of the world (documented asymmetry with
        MC-SSAPRE, which runs off nodes alone)."""
        from repro.ir.transforms import split_critical_edges

        split_critical_edges(while_loop)
        run = run_function(copy.deepcopy(while_loop), [2, 3, 40])
        nodes_only = run.profile.nodes_only()
        # All edge weights read as 0: every insertion edge looks free, so
        # the algorithm still terminates and stays correct (it may just
        # pick arbitrary placements among the zero-cost ones).
        work = copy.deepcopy(while_loop)
        run_mc_pre(work, nodes_only)
        after = run_function(work, [2, 3, 40])
        assert after.observable() == run.observable()
