"""The Section-6 extension: MC-SSAPRE as a code-size optimiser.

Feeding a unit profile (every block frequency 1) makes the min cut count
*static occurrences*, so the chosen placement minimises the number of
instructions computing each expression — the Scholz-et-al. objective the
paper's conclusion proposes for the SSA framework.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Assign, BinOp, UnaryOp
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.profiles.profile import ExecutionProfile
from repro.ssa.construct import construct_ssa


def static_occurrences(func, key) -> int:
    return sum(
        1
        for block in func
        for stmt in block.body
        if isinstance(stmt, Assign)
        and isinstance(stmt.rhs, (BinOp, UnaryOp))
        and stmt.rhs.class_key() == key
    )


def test_unit_profile_counts_blocks():
    b = FunctionBuilder("f")
    b.block("x")
    b.ret()
    profile = ExecutionProfile.unit(b.build())
    assert profile.node("x") == 1
    assert profile.edge_freq == {}


def test_size_mode_merges_duplicated_arms():
    """Both arms compute a+b and the join uses it again: size mode keeps
    the two arm computations (sinks of weight 1 each?) — no: it can cover
    all three occurrences with the two arm computations, deleting the
    join's (3 static -> 2 static)."""
    b = FunctionBuilder("f", params=["a", "b", "c"])
    b.block("entry")
    b.branch("c", "l", "r")
    b.block("l")
    b.assign("x", "add", "a", "b")
    b.jump("j")
    b.block("r")
    b.assign("y", "add", "a", "b")
    b.jump("j")
    b.block("j")
    b.assign("z", "add", "a", "b")
    b.ret("z")
    func = b.build()
    prepared = prepare(func)
    construct_ssa(prepared)
    run_mc_ssapre(prepared, ExecutionProfile.unit(prepared), validate=True)
    ab = ("add", ("var", "a"), ("var", "b"))
    assert static_occurrences(prepared, ab) == 2


def test_size_mode_prefers_one_insertion_over_two_occurrences():
    """a+b computed in two sibling arms but nowhere else: hoisting to the
    shared predecessor costs 1 static instruction instead of 2.
    (Speed mode would refuse: freq(entry) >= freq(l)+freq(r).)"""
    b = FunctionBuilder("f", params=["a", "b", "c"])
    b.block("entry")
    b.branch("c", "l", "r")
    b.block("l")
    b.assign("x", "add", "a", "b")
    b.output("x")
    b.jump("j")
    b.block("r")
    b.assign("y", "add", "a", "b")
    b.output("y")
    b.jump("j")
    b.block("j")
    b.assign("z", "add", "a", "b")
    b.ret("z")
    func = b.build()
    prepared = prepare(func)
    ab = ("add", ("var", "a"), ("var", "b"))

    size = copy.deepcopy(prepared)
    construct_ssa(size)
    run_mc_ssapre(size, ExecutionProfile.unit(size), validate=True)
    # All three collapse onto the two arm computations (the entry is not
    # an insertion point for an FRG that starts at the arms), or better.
    assert static_occurrences(size, ab) <= 2


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_size_mode_never_increases_static_occurrences(seed):
    spec = ProgramSpec(name="size", seed=seed, max_depth=2)
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    before = copy.deepcopy(prepared)
    construct_ssa(prepared)
    run_mc_ssapre(prepared, ExecutionProfile.unit(prepared), validate=True)

    from repro.analysis.dataflow import expression_keys

    for key in expression_keys(before):
        assert static_occurrences(prepared, key) <= static_occurrences(
            before, key
        ), key


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_size_mode_preserves_semantics(seed):
    from repro.ssa.destruct import destruct_ssa

    spec = ProgramSpec(name="sizes", seed=seed, max_depth=2)
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    args = random_args(spec, 1)
    expected = run_function(prepared, args).observable()
    work = copy.deepcopy(prepared)
    construct_ssa(work)
    run_mc_ssapre(work, ExecutionProfile.unit(work), validate=True)
    destruct_ssa(work)
    assert run_function(work, args).observable() == expected
