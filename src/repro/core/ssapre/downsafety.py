"""SSAPRE step 3 — DownSafety.

A Φ is *down-safe* iff the expression is fully anticipated at the Φ: along
every control-flow path leaving it, the expression is computed before any
of its operands is redefined and before program exit.  Safe PRE may only
insert at down-safe points (Kennedy's safety criterion [13]); speculative
PRE exists precisely to go beyond this predicate.

Down-safety is, by definition, CFG anticipability at the Φ's program point
(immediately after the block's variable phis), so we compute it from the
bit-vector anticipability solution of
:func:`repro.analysis.dataflow.solve_pre_dataflow`.  That formulation is
exact on SSA input for this downward problem (see the module docstring of
``repro.analysis.dataflow``) and doubles as the oracle against which the
property-based tests check the rest of the pipeline.
"""

from __future__ import annotations

from repro.analysis.dataflow import PREDataflow, solve_pre_dataflow
from repro.core.ssapre.frg import FRG


def compute_down_safety(frg: FRG, dataflow: PREDataflow | None = None) -> None:
    """Set ``down_safe`` on every Φ of *frg*."""
    if dataflow is None:
        dataflow = solve_pre_dataflow(frg.func, [frg.expr.key])
    key = frg.expr.key
    for phi in frg.phis:
        # ant_postphi is anticipability at the point immediately after the
        # block's variable phis — exactly where the hypothetical Φ lives.
        phi.down_safe = key in dataflow.ant_postphi[phi.label]


def compute_down_safety_sparse(frg: FRG) -> None:
    """The rename-driven DownSafety of Kennedy et al. [14].

    Initialisation comes from hints recorded during Rename: a Φ whose
    version was observed dying unused along some dominator-walk path
    (killed by an operand redefinition, or live at a program exit) starts
    as not down-safe.  Unsafety then propagates backward through Φ
    operands that carry no real use.

    The two DownSafety variants are *incomparable* approximations of true
    (value-level) anticipability, and both err only toward False:

    * the bit-vector oracle reasons lexically, so it misses values that
      survive a renaming variable-phi (where this sparse variant, working
      on h-versions, is exact);
    * the rename walk records version deaths along dominator paths, so a
      version kept alive only by uses in sibling branches can be flagged
      although the expression is anticipated (where the oracle is exact).

    Under-approximating down-safety only costs optimisation opportunities,
    never safety; ``tests/core/test_downsafety_sparse.py`` demonstrates
    the incomparability on concrete seeds and checks the behavioural
    safety property for both.
    """
    from collections import deque

    from repro.core.ssapre.frg import PhiNode

    for phi in frg.phis:
        phi.down_safe = phi.rename_down_safe

    worklist = deque(phi for phi in frg.phis if not phi.down_safe)
    dependents: dict[int, list[PhiNode]] = {}
    for phi in frg.phis:
        for operand in phi.operands:
            if (
                isinstance(operand.def_node, PhiNode)
                and not operand.has_real_use
            ):
                dependents.setdefault(id(phi), []).append(operand.def_node)
    while worklist:
        unsafe = worklist.popleft()
        for feeder in dependents.get(id(unsafe), ()):
            if feeder.down_safe:
                feeder.down_safe = False
                worklist.append(feeder)
