"""``python -m repro.perf`` dispatches to :mod:`repro.perf.cli`."""

from repro.perf.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
