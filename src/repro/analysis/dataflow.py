"""Bit-vector data-flow framework and the PRE-related instances.

The framework solves forward/backward union/intersection problems over sets
of *expression keys* (the lexical identity of first-order expressions, see
:meth:`BinOp.class_key`).  MC-PRE uses it exactly as the paper describes —
classical bit-vector analyses solving all expressions of the program at
once — and the per-expression scalar wrappers below serve as oracles for
the sparse FRG propagations of MC-SSAPRE.

Semantics of the local predicates for a lexical expression ``e`` in block
``B`` (phis execute at block entry, before the "post-phi point" where
SSAPRE's hypothetical Φs live):

* ``phi_kill`` — a phi of ``B`` assigns an operand base name of ``e``.
* ``body_kill`` — a body statement assigns an operand base name of ``e``.
* ``antloc`` — ``e`` is computed in the body before any body kill
  (locally anticipated at the post-phi point).
* ``comp`` — ``e`` is computed in the body and no kill follows the last
  computation (locally available at block exit).

On a non-SSA program these predicates are exact.  On an SSA program they
are exact for *downward* analyses (anticipability) and conservative for
*upward* ones (availability), because a lexical analysis cannot see a value
surviving a renaming variable-phi; the sparse FRG analyses can, which is
one of the reasons the paper's approach is preferable.  Tests exploit both
facts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Assign, Store, is_expr_rhs
from repro.ir.memory import store_kills_key
from repro.ir.values import Var

ExprKey = tuple


def expression_keys(func: Function) -> list[ExprKey]:
    """All lexical expression classes computed anywhere in *func*.

    Deterministic order: first appearance in block insertion order.
    Includes load classes (``("load", ("arr", name), index_key)``); their
    availability/anticipability is additionally killed by may-aliasing
    stores, see :func:`compute_local_props`.
    """
    seen: dict[ExprKey, None] = {}
    for block in func:
        for stmt in block.body:
            if isinstance(stmt, Assign) and is_expr_rhs(stmt.rhs):
                seen.setdefault(stmt.rhs.class_key(), None)
    return list(seen)


def _operand_bases(key: ExprKey) -> set[str]:
    """Base variable names referenced by an expression-class key."""
    bases: set[str] = set()
    for kind, payload in key[1:]:
        if kind == "var":
            bases.add(payload)
    return bases


@dataclass(slots=True)
class LocalProps:
    """Local data-flow predicates of one block for every expression key."""

    phi_kill: set[ExprKey]
    body_kill: set[ExprKey]
    antloc: set[ExprKey]
    comp: set[ExprKey]

    @property
    def transp(self) -> set[ExprKey]:
        return set()  # computed by callers as universe - kills


def build_kill_index(keys: list[ExprKey]) -> dict[str, list[ExprKey]]:
    """Map each base variable name to the expression keys it kills."""
    killed_by_name: dict[str, list[ExprKey]] = {}
    for key in keys:
        for base in _operand_bases(key):
            killed_by_name.setdefault(base, []).append(key)
    return killed_by_name


def compute_local_props(
    block: BasicBlock,
    keys: list[ExprKey],
    killed_by_name: dict[str, list[ExprKey]] | None = None,
) -> LocalProps:
    """Scan one block and compute the local predicates for all *keys*.

    Pass a precomputed :func:`build_kill_index` when calling per block
    over many keys — rebuilding it per block is quadratic.
    """
    wanted = set(keys)
    if killed_by_name is None:
        killed_by_name = build_kill_index(keys)
    # Load classes per array symbol, for store kill scans.
    load_keys_by_array: dict[str, list[ExprKey]] = {}
    for key in keys:
        if key[0] == "load":
            load_keys_by_array.setdefault(key[1][1], []).append(key)

    phi_kill: set[ExprKey] = set()
    for phi in block.phis:
        phi_kill.update(killed_by_name.get(phi.target.name, ()))

    body_kill: set[ExprKey] = set()
    antloc: set[ExprKey] = set()
    comp: set[ExprKey] = set()
    for stmt in block.body:
        if isinstance(stmt, Store):
            # A store kills every load class it may alias: downstream
            # loads of that class are no longer redundant with upstream
            # ones (the cell may have changed).
            for key in load_keys_by_array.get(stmt.array, ()):
                if store_kills_key(stmt.array, stmt.index, key):
                    body_kill.add(key)
                    comp.discard(key)
            continue
        if not isinstance(stmt, Assign):
            continue
        if is_expr_rhs(stmt.rhs):
            key = stmt.rhs.class_key()
            if key in wanted:
                if key not in body_kill:
                    antloc.add(key)
                comp.add(key)
        target: Var = stmt.target
        for key in killed_by_name.get(target.name, ()):
            body_kill.add(key)
            comp.discard(key)
    return LocalProps(phi_kill=phi_kill, body_kill=body_kill, antloc=antloc, comp=comp)


@dataclass
class PREDataflow:
    """Solved global availability / anticipability predicates.

    Every attribute maps a block label to the set of expression keys for
    which the predicate holds.  All four classical predicates plus their
    "partial" (union-join) variants are solved, since MC-PRE needs
    availability and partial anticipability while safe PRE's down-safety
    oracle needs full anticipability.
    """

    avail_in: dict[str, set[ExprKey]]
    avail_out: dict[str, set[ExprKey]]
    pavail_in: dict[str, set[ExprKey]]
    pavail_out: dict[str, set[ExprKey]]
    ant_postphi: dict[str, set[ExprKey]]
    ant_out: dict[str, set[ExprKey]]
    pant_postphi: dict[str, set[ExprKey]]
    pant_out: dict[str, set[ExprKey]]
    local: dict[str, LocalProps]
    keys: list[ExprKey]

    def avail_at_postphi(self, label: str) -> set[ExprKey]:
        """Expressions fully available at the post-phi point of *label*."""
        return self.avail_in[label] - self.local[label].phi_kill

    def pavail_at_postphi(self, label: str) -> set[ExprKey]:
        return self.pavail_in[label] - self.local[label].phi_kill


def solve_pre_dataflow(func: Function, keys: list[ExprKey] | None = None) -> PREDataflow:
    """Solve the four bit-vector problems for *func* over *keys*."""
    cfg = CFG(func)
    rpo = cfg.reverse_postorder()
    if keys is None:
        keys = expression_keys(func)
    universe = set(keys)
    kill_index = build_kill_index(keys)
    local = {
        label: compute_local_props(func.blocks[label], keys, kill_index)
        for label in rpo
    }

    # ---------------- forward: availability ----------------
    avail_in = {label: (set() if label == cfg.entry else set(universe)) for label in rpo}
    avail_out = {label: set(universe) for label in rpo}
    pavail_in = {label: set() for label in rpo}
    pavail_out = {label: set() for label in rpo}

    changed = True
    while changed:
        changed = False
        for label in rpo:
            props = local[label]
            if label != cfg.entry:
                preds = [p for p in cfg.predecessors(label) if p in avail_out]
                new_in = set(universe)
                for pred in preds:
                    new_in &= avail_out[pred]
                if not preds:
                    new_in = set()
                new_pin = set()
                for pred in preds:
                    new_pin |= pavail_out[pred]
            else:
                new_in = set()
                new_pin = set()
            transparent = universe - props.phi_kill - props.body_kill
            new_out = props.comp | (new_in & transparent)
            new_pout = props.comp | (new_pin & transparent)
            if (
                new_in != avail_in[label]
                or new_out != avail_out[label]
                or new_pin != pavail_in[label]
                or new_pout != pavail_out[label]
            ):
                avail_in[label] = new_in
                avail_out[label] = new_out
                pavail_in[label] = new_pin
                pavail_out[label] = new_pout
                changed = True

    # ---------------- backward: anticipability ----------------
    ant_postphi = {label: set(universe) for label in rpo}
    ant_out = {label: set(universe) for label in rpo}
    pant_postphi = {label: set() for label in rpo}
    pant_out = {label: set() for label in rpo}

    po = rpo[::-1]
    changed = True
    while changed:
        changed = False
        for label in po:
            props = local[label]
            succs = [s for s in cfg.successors(label) if s in ant_postphi]
            if cfg.successors(label):
                new_out = set(universe)
                for succ in succs:
                    new_out &= ant_postphi[succ] - local[succ].phi_kill
                new_pout = set()
                for succ in succs:
                    new_pout |= pant_postphi[succ] - local[succ].phi_kill
            else:
                new_out = set()
                new_pout = set()
            not_body_killed = universe - props.body_kill
            new_postphi = props.antloc | (new_out & not_body_killed)
            new_ppostphi = props.antloc | (new_pout & not_body_killed)
            if (
                new_out != ant_out[label]
                or new_postphi != ant_postphi[label]
                or new_pout != pant_out[label]
                or new_ppostphi != pant_postphi[label]
            ):
                ant_out[label] = new_out
                ant_postphi[label] = new_postphi
                pant_out[label] = new_pout
                pant_postphi[label] = new_ppostphi
                changed = True

    return PREDataflow(
        avail_in=avail_in,
        avail_out=avail_out,
        pavail_in=pavail_in,
        pavail_out=pavail_out,
        ant_postphi=ant_postphi,
        ant_out=ant_out,
        pant_postphi=pant_postphi,
        pant_out=pant_out,
        local=local,
        keys=keys,
    )
