"""CompileService: single-flight, timeout, degradation, error paths."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.serve.server as server_module
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.serve.server import (
    CompileRequest,
    CompileService,
    build_artifact,
)
from repro.serve.store import Artifact

from tests.conftest import build_diamond, build_while_loop


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class _GatedBuild:
    """An injectable build that blocks until the test releases it."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, prepared, config, *, key, engine="compiled",
                 train_args=None, max_steps=2_000_000):
        with self._lock:
            self.calls += 1
        assert self.release.wait(timeout=10.0), "test never released build"
        return Artifact(
            key=key, variant=config.variant, engine=engine, func=prepared
        )


class TestBasicServing:
    def test_compile_then_memory_hit(self, diamond_source):
        with CompileService() as service:
            request = CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            )
            first = service.handle(request)
            second = service.handle(request)
        assert first.status == second.status == "ok"
        assert first.served_by == "compile"
        assert second.served_by == "memory"
        assert first.key == second.key
        assert first.observable() == second.observable()
        assert first.dynamic_cost == second.dynamic_cost
        assert service.metrics.get("compiles") == 1
        assert service.metrics.get("hits_memory") == 1

    def test_answer_matches_reference_interpreter(self, diamond_source):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=diamond_source, args=(4, 5, 0), variant="ssapre"
            ))
        expected = run_function(prepare(build_diamond()), [4, 5, 0])
        assert response.status == "ok"
        assert response.observable() == expected.observable()

    def test_profile_guided_variant_trains_from_train_args(
        self, loop_source
    ):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="mc-ssapre",
                train_args=(2, 3, 4),
            ))
        assert response.status == "ok"
        assert not response.degraded

    def test_profile_guided_without_train_args_is_an_error(
        self, loop_source
    ):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="mc-ssapre"
            ))
        assert response.status == "error"
        assert "train_args" in response.error
        assert service.metrics.get("errors") == 1

    def test_solver_on_the_wire(self, loop_source):
        request = CompileRequest.from_dict({
            "source": loop_source, "args": [2, 3, 5],
            "variant": "mc-ssapre", "train_args": [2, 3, 4],
            "solver": "lospre",
        })
        assert request.solver == "lospre"
        with CompileService() as service:
            response = service.handle(request)
        assert response.status == "ok"
        assert not response.degraded

    def test_auto_request_shares_the_resolved_cache_entry(
        self, loop_source
    ):
        # The loop CFG is accepted by the shape classifier, so auto
        # resolves to lospre and the second request must be a cache hit
        # on the same key, not a second compile.
        with CompileService() as service:
            forced = service.handle(CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="mc-ssapre",
                train_args=(2, 3, 4), solver="lospre",
            ))
            auto = service.handle(CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="mc-ssapre",
                train_args=(2, 3, 4), solver="auto",
            ))
            assert service.metrics.get("compiles") == 1
        assert forced.key == auto.key
        assert auto.served_by == "memory"
        assert auto.observable() == forced.observable()

    def test_unknown_solver_is_a_request_error(self, loop_source):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="mc-ssapre",
                train_args=(2, 3, 4), solver="simplex",
            ))
        assert response.status == "error"
        assert "solver" in response.error


class TestSingleFlight:
    def test_concurrent_identical_requests_compile_once(
        self, diamond_source
    ):
        clients = 6
        build = _GatedBuild()
        service = CompileService(build=build, max_workers=clients)
        request = CompileRequest(
            source=diamond_source, args=(1, 2, 1), variant="ssapre"
        )
        with service, ThreadPoolExecutor(max_workers=clients) as pool:
            futures = [
                pool.submit(service.handle, request) for _ in range(clients)
            ]
            # Deterministic rendezvous: every non-leader is provably
            # waiting on the in-flight build before it is allowed to end.
            assert _wait_until(
                lambda: service.metrics.get("coalesced") == clients - 1
            )
            build.release.set()
            responses = [f.result() for f in futures]
        assert build.calls == 1
        assert service.metrics.get("compiles") == 1
        assert all(r.status == "ok" for r in responses)
        assert sorted(r.served_by for r in responses) == (
            ["coalesced"] * (clients - 1) + ["compile"]
        )
        assert len({r.key for r in responses}) == 1

    def test_different_keys_do_not_coalesce(
        self, diamond_source, loop_source
    ):
        with CompileService() as service:
            service.handle(CompileRequest(
                source=diamond_source, args=(1, 2, 1), variant="ssapre"
            ))
            service.handle(CompileRequest(
                source=loop_source, args=(1, 2, 3), variant="ssapre"
            ))
        assert service.metrics.get("compiles") == 2
        assert service.metrics.get("coalesced") == 0


class TestTimeout:
    def test_slow_build_times_out_without_poisoning_the_cache(
        self, diamond_source
    ):
        build = _GatedBuild()
        service = CompileService(build=build, timeout_s=0.1)
        request = CompileRequest(
            source=diamond_source, args=(1, 2, 1), variant="ssapre"
        )
        with service:
            response = service.handle(request)
            assert response.status == "timeout"
            assert service.metrics.get("timeouts") == 1
            # The abandoned build completes in the background and lands
            # in the cache; the retry is a plain hit.
            build.release.set()
            assert _wait_until(
                lambda: service.store.get(response.key)[0] is not None
            )
            retry = service.handle(request)
        assert retry.status == "ok"
        assert retry.served_by == "memory"


class TestDegradation:
    def test_compile_failure_degrades_to_reference_interpreter(
        self, diamond_source, monkeypatch
    ):
        def broken_compile(*args, **kwargs):
            raise RuntimeError("optimiser exploded")

        monkeypatch.setattr(server_module, "compile_variant", broken_compile)
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            ))
        expected = run_function(prepare(build_diamond()), [4, 5, 1])
        assert response.status == "ok"
        assert response.degraded is True
        assert response.observable() == expected.observable()
        assert service.metrics.get("compile_failures") == 1
        assert service.metrics.get("degraded") == 1

    def test_build_artifact_records_the_reason(self, monkeypatch):
        monkeypatch.setattr(
            server_module, "compile_variant",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("boom")),
        )
        prepared = prepare(build_diamond())
        artifact = build_artifact(
            prepared, server_module.PipelineConfig(variant="ssapre"),
            key="k",
        )
        assert artifact.degraded is True
        assert "boom" in artifact.degraded_reason
        assert artifact.program is None


class TestErrorPaths:
    def test_unparsable_source(self):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source="this is not a program", args=()
            ))
        assert response.status == "error"
        assert "ParseError" in response.error
        assert service.metrics.get("errors") == 1

    def test_unknown_variant(self, diamond_source):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=diamond_source, variant="nonsense"
            ))
        assert response.status == "error"
        assert "unknown variant" in response.error

    def test_wrong_arity_is_a_run_error(self, diamond_source):
        with CompileService() as service:
            response = service.handle(CompileRequest(
                source=diamond_source, args=(1,), variant="ssapre"
            ))
        assert response.status == "error"
        assert "InterpreterError" in response.error
        # The compile itself succeeded and is cached for later requests.
        assert service.metrics.get("compiles") == 1


class TestRequestParsing:
    def test_from_dict_round_trip(self, diamond_source):
        request = CompileRequest.from_dict({
            "source": diamond_source,
            "args": [1, 2, 3],
            "variant": "ssapre",
            "train_args": [4, 5, 6],
        })
        assert request.args == (1, 2, 3)
        assert request.train_args == (4, 5, 6)

    def test_from_dict_rejects_unknown_fields(self, diamond_source):
        with pytest.raises(ValueError, match="unknown request fields"):
            CompileRequest.from_dict({
                "source": diamond_source, "bogus": 1
            })

    def test_from_dict_requires_source(self):
        with pytest.raises(ValueError, match="missing 'source'"):
            CompileRequest.from_dict({"args": [1]})


class TestPlanCache:
    """The bounded plan cache (cluster workers): memoised
    parse/prepare/key, off by default, LRU-bounded when on."""

    def test_disabled_by_default(self, diamond_source):
        with CompileService() as service:
            request = CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            )
            service.handle(request)
            service.handle(request)
        assert service.metrics.get("plan_hits") == 0
        assert len(service._plans) == 0

    def test_repeat_requests_hit_the_plan_cache(self, diamond_source):
        with CompileService(plan_cache=8) as service:
            request = CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            )
            cold = service.handle(request)
            warm = service.handle(request)
            third = service.handle(request)
        assert cold.status == warm.status == third.status == "ok"
        assert service.metrics.get("plan_hits") == 2
        # Memoising the plan must not change a single answer bit.
        assert cold.key == warm.key == third.key
        assert cold.observable() == warm.observable() == third.observable()
        assert cold.dynamic_cost == warm.dynamic_cost

    def test_distinct_configs_get_distinct_plans(self, diamond_source):
        with CompileService(plan_cache=8) as service:
            a = service.handle(CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            ))
            b = service.handle(CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre",
                fold_constants=True,
            ))
        assert a.status == b.status == "ok"
        assert a.key != b.key
        assert service.metrics.get("plan_hits") == 0
        assert len(service._plans) == 2

    def test_lru_bound_holds(self, diamond_source, loop_source):
        with CompileService(plan_cache=1) as service:
            r1 = CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            )
            r2 = CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="ssapre"
            )
            for request in (r1, r2, r1, r2):
                assert service.handle(request).status == "ok"
            assert len(service._plans) == 1
        # Alternating two programs through a one-entry cache: every
        # lookup after the first for each program evicts the other, so
        # nothing ever hits.
        assert service.metrics.get("plan_hits") == 0

    def test_plan_hit_serves_from_memory_tier(self, diamond_source):
        with CompileService(plan_cache=8) as service:
            request = CompileRequest(
                source=diamond_source, args=(4, 5, 1), variant="ssapre"
            )
            first = service.handle(request)
            second = service.handle(request)
        assert first.served_by == "compile"
        assert second.served_by == "memory"


class TestProbesProfiling:
    """``profiling="probes"``: sparse training + sparse serving."""

    def test_build_artifact_ships_a_sparse_program(self):
        from repro.pipeline import PipelineConfig

        prepared = prepare(build_while_loop())
        config = PipelineConfig(variant="mc-ssapre")
        sparse = build_artifact(
            prepared, config, key="k", train_args=(2, 3, 6),
            profiling="probes",
        )
        full = build_artifact(
            prepared, config, key="k", train_args=(2, 3, 6),
        )
        assert sparse.profiling == "probes"
        assert full.profiling == "full"
        assert sparse.program is not None
        assert sparse.program.probes is not None
        assert full.program.probes is None
        # Exact reconstruction: identical training profile, identical
        # optimisation decisions, identical served behaviour.
        assert sparse.train_node_freq == full.train_node_freq
        a = sparse.program.run([2, 3, 9])
        b = full.program.run([2, 3, 9])
        assert a.observable() == b.observable()
        assert dict(a.profile.node_freq) == dict(b.profile.node_freq)

    def test_unknown_profiling_mode_rejected(self, diamond_source):
        with pytest.raises(ValueError):
            CompileRequest(source=diamond_source, profiling="sometimes")
        from repro.pipeline import PipelineConfig

        with pytest.raises(ValueError):
            build_artifact(
                prepare(build_diamond()), PipelineConfig(variant="ssapre"),
                key="k", profiling="sometimes",
            )

    def test_served_probes_request_counts_reconstructions(self, loop_source):
        with CompileService() as service:
            request = CompileRequest(
                source=loop_source, args=(2, 3, 5), variant="mc-ssapre",
                train_args=(2, 3, 5), profiling="probes",
            )
            first = service.handle(request)
            second = service.handle(request)
        assert first.status == second.status == "ok"
        # Every successful execution of the sparse program is one
        # flow-conservation solve.
        assert service.metrics.get("profile_reconstructions") == 2
        expected = run_function(
            prepare(build_while_loop()), [2, 3, 5]
        ).observable()
        # mc-ssapre preserves observables; the sparse run matches too.
        assert first.observable() == expected
