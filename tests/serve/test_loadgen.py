"""Load generator: deterministic workloads, differential gates."""

import pytest

from repro.serve.loadgen import WorkloadSpec, build_workload, run_load
from repro.serve.server import CompileService


class TestWorkloadSpec:
    def test_expected_hit_rate(self):
        spec = WorkloadSpec(requests=100, unique=6)
        assert spec.expected_hit_rate() == pytest.approx(0.94)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(requests=0)
        with pytest.raises(ValueError):
            WorkloadSpec(requests=5, unique=6)
        with pytest.raises(ValueError):
            WorkloadSpec(shapes=("nope",))


class TestBuildWorkload:
    def test_deterministic(self):
        spec = WorkloadSpec(requests=12, unique=4)
        a = build_workload(spec)
        b = build_workload(spec)
        assert [r.source for r in a.requests] == [
            r.source for r in b.requests
        ]
        assert [r.args for r in a.requests] == [r.args for r in b.requests]
        assert a.expected == b.expected

    def test_round_robin_over_the_pool(self):
        workload = build_workload(WorkloadSpec(requests=9, unique=3))
        sources = [r.source for r in workload.requests]
        assert sources[0:3] == sources[3:6] == sources[6:9]
        assert len(set(sources[0:3])) == 3

    def test_profile_guided_requests_carry_train_args(self):
        workload = build_workload(
            WorkloadSpec(requests=4, unique=2, variants=("mc-ssapre",))
        )
        assert all(r.train_args is not None for r in workload.requests)


class TestRunLoad:
    def test_serial_run_hits_the_admitted_rate_with_zero_mismatches(self):
        workload = build_workload(WorkloadSpec(requests=12, unique=4))
        with CompileService() as service:
            report, responses = run_load(service, workload, jobs=1)
        assert report.ok == 12
        assert report.errors == report.timeouts == 0
        assert report.mismatches == 0
        assert report.hit_rate == pytest.approx(report.expected_hit_rate)
        assert report.served_by["compile"] == 4
        assert report.served_by["memory"] == 8
        assert len(responses) == 12

    def test_concurrent_run_compiles_each_key_once(self):
        workload = build_workload(WorkloadSpec(requests=16, unique=4))
        with CompileService() as service:
            report, _ = run_load(service, workload, jobs=4)
        assert report.mismatches == 0
        assert report.errors == 0
        assert service.metrics.get("compiles") == 4
        # misses + coalesced + hits account for every request.
        assert report.hit_rate >= report.expected_hit_rate

    def test_report_is_json_safe(self):
        import json

        workload = build_workload(WorkloadSpec(requests=4, unique=2))
        with CompileService() as service:
            report, _ = run_load(service, workload)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["requests"] == 4
        assert data["metrics"]["schema"] >= 1
