"""Natural-loop discovery.

Back edges are CFG edges whose target dominates their source; the natural
loop of a back edge ``latch -> header`` is the set of blocks that can reach
the latch without passing through the header.  Loops sharing a header are
merged, as is conventional.

Used by the while→do-while restructuring transform (paper Figure 1) and by
the SSAPREsp baseline (loop-based speculation of Lo et al.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dominators import DominatorTree
from repro.ir.cfg import CFG


@dataclass
class Loop:
    """One natural loop: its header, latches and member blocks."""

    header: str
    latches: list[str] = field(default_factory=list)
    blocks: set[str] = field(default_factory=set)
    parent: "Loop | None" = None

    @property
    def depth(self) -> int:
        d = 1
        cur = self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def exit_edges(self, cfg: CFG) -> list[tuple[str, str]]:
        """CFG edges leaving the loop."""
        return [
            (src, dst)
            for src in sorted(self.blocks)
            for dst in cfg.successors(src)
            if dst not in self.blocks
        ]

    def entry_preds(self, cfg: CFG) -> list[str]:
        """Predecessors of the header from outside the loop."""
        return [p for p in cfg.predecessors(self.header) if p not in self.blocks]


class LoopForest:
    """All natural loops of a function, with nesting links."""

    def __init__(self, cfg: CFG, domtree: DominatorTree) -> None:
        self.cfg = cfg
        self.loops: dict[str, Loop] = {}
        reachable = set(domtree.rpo)
        for src, dst in cfg.edges():
            if src in reachable and dst in reachable and domtree.dominates(dst, src):
                loop = self.loops.setdefault(dst, Loop(header=dst))
                loop.latches.append(src)
                self._collect(loop, src)
        for loop in self.loops.values():
            loop.blocks.add(loop.header)
        self._link_nesting(domtree)

    def _collect(self, loop: Loop, latch: str) -> None:
        if latch == loop.header:
            return
        worklist = [latch]
        while worklist:
            label = worklist.pop()
            if label in loop.blocks or label == loop.header:
                continue
            loop.blocks.add(label)
            worklist.extend(self.cfg.predecessors(label))

    def _link_nesting(self, domtree: DominatorTree) -> None:
        # The parent of a loop is the smallest other loop strictly
        # containing its header.
        by_size = sorted(self.loops.values(), key=lambda l: len(l.blocks))
        for loop in by_size:
            for candidate in by_size:
                if candidate is loop:
                    continue
                if loop.header in candidate.blocks and candidate.header != loop.header:
                    if loop.parent is None or len(candidate.blocks) < len(
                        loop.parent.blocks
                    ):
                        loop.parent = candidate

    # ------------------------------------------------------------------
    def loop_of_header(self, label: str) -> Loop | None:
        return self.loops.get(label)

    def innermost_containing(self, label: str) -> Loop | None:
        best: Loop | None = None
        for loop in self.loops.values():
            if label in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loop_depth(self, label: str) -> int:
        loop = self.innermost_containing(label)
        return loop.depth if loop is not None else 0

    def __iter__(self):
        return iter(self.loops.values())

    def __len__(self) -> int:
        return len(self.loops)
