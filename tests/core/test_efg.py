"""Tests for graph reduction (step 4) and EFG formation (steps 5-6)."""

from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.efg import SINK, SOURCE, build_efg
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.ir.builder import FunctionBuilder
from repro.profiles.profile import ExecutionProfile
from tests.conftest import as_ssa

AB = ExprClass(("add", ("var", "a"), ("var", "b")))


def reduced_for(func_ssa, expr=AB):
    frg = build_frgs(func_ssa, [expr])[expr.key]
    solve_step3(frg)
    return build_reduced_graph(frg)


class TestReduction:
    def test_diamond_reduced_graph(self, diamond):
        reduced = reduced_for(as_ssa(diamond))
        assert len(reduced.phis) == 1
        assert len(reduced.spr_occs) == 1
        assert len(reduced.bottom_operands) == 1
        assert len(reduced.type1_edges) == 0
        assert len(reduced.type2_edges) == 1

    def test_avail_phi_excluded(self):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.assign("y", "add", "a", "b")
        b.jump("j")
        b.block("j")
        b.assign("z", "add", "a", "b")
        b.ret("z")
        reduced = reduced_for(as_ssa(b.build()))
        assert reduced.is_empty()
        assert reduced.phis == []

    def test_rg_excluded_occurrence_not_a_sink(self, diamond):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.assign("z", "add", "a", "b")
        b.assign("w", "add", "a", "b")  # rg_excluded (dominated by z)
        b.ret("w")
        reduced = reduced_for(as_ssa(b.build()))
        assert len(reduced.spr_occs) == 1
        assert reduced.spr_occs[0].stmt.target.name == "z"

    def test_has_real_use_edge_excluded(self, while_loop):
        """The back-edge operand crosses the body occurrence: no type-1
        edge may carry it (the value arrives computed)."""
        reduced = reduced_for(as_ssa(while_loop))
        for edge in reduced.type1_edges:
            assert not edge.operand.has_real_use

    def test_type2_edges_point_at_spr_occs(self, diamond):
        reduced = reduced_for(as_ssa(diamond))
        for edge in reduced.type2_edges:
            assert edge.occ in reduced.spr_occs
            assert edge.source_phi in reduced.phis


class TestEFG:
    def profile(self, **freqs):
        return ExecutionProfile(node_freq=freqs)

    def test_empty_reduced_graph_gives_none(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.ret("x")
        reduced = reduced_for(as_ssa(b.build()))
        assert build_efg(reduced, self.profile(entry=1)) is None

    def test_minimum_efg_is_four_nodes(self, diamond):
        """Source + sink + one phi + one SPR occurrence (Figure 11's
        floor)."""
        reduced = reduced_for(as_ssa(diamond))
        efg = build_efg(
            reduced, self.profile(entry=10, left=6, right=4, join=10)
        )
        assert efg.node_count == 4

    def test_source_edge_weights_are_pred_frequencies(self, diamond):
        reduced = reduced_for(as_ssa(diamond))
        efg = build_efg(
            reduced, self.profile(entry=10, left=6, right=4, join=10)
        )
        source_edges = [e for e in efg.network.edges if e.src == SOURCE]
        assert len(source_edges) == 1
        assert source_edges[0].capacity == 4  # freq of 'right'

    def test_type2_weight_is_occurrence_block_frequency(self, diamond):
        reduced = reduced_for(as_ssa(diamond))
        efg = build_efg(
            reduced, self.profile(entry=10, left=6, right=4, join=10)
        )
        type2 = [
            e
            for e in efg.network.edges
            if e.src != SOURCE and e.dst != SINK and not e.infinite
        ]
        assert [e.capacity for e in type2] == [10]  # freq of 'join'

    def test_sink_edges_infinite(self, diamond):
        reduced = reduced_for(as_ssa(diamond))
        efg = build_efg(reduced, self.profile(entry=1, left=1, right=1, join=1))
        for edge in efg.network.edges:
            if edge.dst == SINK:
                assert edge.infinite

    def test_uses_node_frequencies_only(self, diamond):
        """An EFG built from a nodes-only profile must be identical to one
        built from a full profile (paper contribution 3)."""
        reduced = reduced_for(as_ssa(diamond))
        full = ExecutionProfile(
            node_freq={"entry": 10, "left": 6, "right": 4, "join": 10},
            edge_freq={("entry", "left"): 6, ("entry", "right"): 4},
        )
        efg_full = build_efg(reduced, full)
        reduced2 = reduced_for(as_ssa(diamond))
        efg_nodes = build_efg(reduced2, full.nodes_only())
        caps_full = sorted(e.capacity for e in efg_full.network.edges)
        caps_nodes = sorted(e.capacity for e in efg_nodes.network.edges)
        assert caps_full == caps_nodes
