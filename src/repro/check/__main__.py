"""``python -m repro.check`` dispatches to :mod:`repro.check.cli`."""

from repro.check.cli import main

raise SystemExit(main())
