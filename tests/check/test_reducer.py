"""Reducer: shrink a known-buggy variant's failure to a tiny reproducer."""

from pathlib import Path

from repro.check.corpus import (
    failure_slug,
    replay_artifact,
    write_failure_artifact,
)
from repro.check.driver import build_case, check_case, failure_predicate
from repro.check.reducer import STRATEGIES, reduce_function
from repro.ir.builder import FunctionBuilder
from repro.ir.structural import structural_diff
from repro.lang.parser import parse_function

from tests.check.conftest import premature_insertion

import json
import pytest


def _failing_case(shape="cint", seeds=40):
    for seed in range(seeds):
        result = check_case(
            build_case(
                seed, shape, extra_variants={"buggy": premature_insertion}
            ),
            ("equiv",),
        )
        failures = [
            f for f in result.failures
            if f.variant == "buggy" and f.kind == "divergence"
        ]
        if failures:
            return seed, result, failures[0]
    raise AssertionError("premature_insertion never diverged")


class TestEndToEnd:
    """The acceptance scenario: a deliberately mis-placed insertion must
    shrink to <= 6 blocks and replay deterministically from its seed."""

    @pytest.fixture(scope="class")
    def shrunk(self, tmp_path_factory):
        seed, result, failure = _failing_case()
        predicate = failure_predicate(
            seed, "cint", failure,
            extra_variants={"buggy": premature_insertion},
        )
        reduction = reduce_function(result.case.source, predicate)
        out_dir = tmp_path_factory.mktemp("corpus")
        artifact = write_failure_artifact(out_dir, result, failure, reduction)
        return seed, result, failure, reduction, artifact

    def test_shrinks_to_at_most_six_blocks(self, shrunk):
        _, result, _, reduction, _ = shrunk
        assert reduction.blocks <= 6
        assert reduction.blocks <= len(result.case.source)
        assert reduction.statements < result.case.source.statement_count()
        assert reduction.accepted == len(reduction.trail)

    def test_reduced_ir_round_trips(self, shrunk):
        _, _, _, reduction, _ = shrunk
        reparsed = parse_function(reduction.ir_text)
        assert structural_diff(reduction.func, reparsed) == []

    def test_reduced_function_still_fails(self, shrunk):
        seed, _, failure, reduction, _ = shrunk
        predicate = failure_predicate(
            seed, "cint", failure,
            extra_variants={"buggy": premature_insertion},
        )
        assert predicate(reduction.func)

    def test_artifact_replays_from_stored_seed(self, shrunk):
        seed, result, failure, reduction, artifact = shrunk
        record = json.loads(Path(artifact).read_text())
        assert record["seed"] == seed
        assert record["shape"] == "cint"
        assert record["reduced_ir"] == reduction.ir_text
        assert record["transcript"]  # the oracle transcript is stored
        reproduced, replay = replay_artifact(
            artifact, extra_variants={"buggy": premature_insertion}
        )
        assert reproduced
        # Determinism: the replayed failure is byte-identical.
        replayed = [
            f for f in replay.failures
            if f.variant == "buggy" and f.kind == "divergence"
        ]
        assert replayed and replayed[0].detail == failure.detail

    def test_ir_file_written_next_to_json(self, shrunk):
        _, result, failure, reduction, artifact = shrunk
        ir_path = Path(artifact).with_suffix(".ir")
        assert ir_path.exists()
        assert ir_path.read_text().strip() == reduction.ir_text.strip()
        assert failure_slug(result, failure) in ir_path.name


class TestReducerProperties:
    def _diamond(self):
        b = FunctionBuilder("d", params=["a", "b"])
        b.block("entry")
        b.assign("c", "lt", "a", "b")
        b.assign("x", "add", "a", "b")
        b.branch("c", "then", "else_")
        b.block("then")
        b.assign("x", "mul", "x", 2)
        b.jump("join")
        b.block("else_")
        b.assign("x", "sub", "x", 3)
        b.jump("join")
        b.block("join")
        b.output("x")
        b.ret("x")
        return b.build()

    def test_always_true_predicate_shrinks_to_one_block(self):
        reduction = reduce_function(self._diamond(), lambda f: True)
        assert reduction.blocks == 1
        assert reduction.statements <= 2

    def test_rejects_non_failing_input(self):
        with pytest.raises(ValueError, match="nothing to shrink"):
            reduce_function(self._diamond(), lambda f: False)

    def test_input_never_mutated(self):
        func = self._diamond()
        before = str(func)
        reduce_function(func, lambda f: True)
        assert str(func) == before

    def test_every_accepted_candidate_satisfies_predicate(self):
        # The predicate only accepts functions that still contain a `mul`:
        # the reducer must keep it while deleting everything else.
        def has_mul(f):
            return "mul" in str(f)

        reduction = reduce_function(self._diamond(), has_mul)
        assert "mul" in reduction.ir_text
        assert reduction.blocks <= 2

    def test_strategy_order_is_coarse_to_fine(self):
        assert [name for name, _ in STRATEGIES] == [
            "straighten", "drop-block", "inline-jump", "drop-store",
            "drop-stmt", "constify", "constify-index",
        ]


class TestMemoryStrategies:
    """drop-store and constify-index: the two memory-aware passes."""

    def _build(self):
        b = FunctionBuilder("m", params=["a", "i"])
        b.array("A", 8)
        b.array("B", 4)
        b.block("entry")
        b.assign("m", "and", "i", 7)
        b.store("A", "m", "a")
        b.store("B", 0, "a")
        b.load("x", "A", "m")
        b.assign("y", "add", "x", "a")
        b.ret("y")
        return b.build()

    def test_stores_dropped_when_irrelevant(self):
        # The predicate only needs the load: both stores must go.
        from repro.ir.instructions import Store

        def has_load(f):
            return "load A" in str(f)

        reduction = reduce_function(self._build(), has_load)
        assert "load A" in reduction.ir_text
        stores = [
            s for block in reduction.func for s in block.body
            if isinstance(s, Store)
        ]
        assert stores == []

    def test_variable_index_constified(self):
        # Predicate keeps the load but not its masked index: the
        # constify-index pass must rewrite `load A, m` to `load A, 0`.
        def has_load(f):
            return "load A" in str(f)

        reduction = reduce_function(self._build(), has_load)
        assert "load A, 0" in reduction.ir_text

    def test_store_kept_when_failure_needs_it(self):
        from repro.ir.instructions import Store

        def has_store(f):
            return any(
                isinstance(s, Store) and s.array == "A"
                for block in f for s in block.body
            )

        reduction = reduce_function(self._build(), has_store)
        assert any(
            isinstance(s, Store) and s.array == "A"
            for block in reduction.func for s in block.body
        )
