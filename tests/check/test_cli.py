"""``python -m repro.check`` CLI: JSON schema, artifacts, replay, exit codes."""

import json
from pathlib import Path

from repro.check.cli import main
from repro.check.corpus import SCHEMA_VERSION

import pytest

#: The documented summary schema (docs/CHECKING.md).  Additions require a
#: SCHEMA_VERSION bump; removals/renames are breaking.  v2 added
#: "engine" and "jobs"; v3 added "interrupted" and the "cache" oracle;
#: v4 added "solver" and the always-on mc-ssapre-lospre twin; v5 added
#: the "probes" oracle and flow-conservation profile validation.
SUMMARY_KEYS = {
    "schema", "seeds", "seed_base", "shapes", "oracles", "engine", "jobs",
    "solver", "passed", "artifacts", "cases", "skipped", "failures",
    "per_oracle", "by_kind", "wall_time_s", "interrupted",
}


class TestJsonSummary:
    @pytest.fixture(scope="class")
    def summary(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("check")
        # capsys is function-scoped, so read the summary file instead.
        rc = main(["--seeds", "2", "--json", "--out", str(out)])
        data = json.loads((out / "summary.json").read_text())
        return rc, out, data

    def test_exit_code_clean(self, summary):
        rc, _, data = summary
        assert rc == 0
        assert data["passed"] is True

    def test_stable_schema_keys(self, summary):
        _, _, data = summary
        assert set(data) == SUMMARY_KEYS
        assert data["schema"] == SCHEMA_VERSION

    def test_per_oracle_counts(self, summary):
        _, _, data = summary
        assert set(data["per_oracle"]) == {
            "compile", "equiv", "optimal", "lifetime", "safety", "cache",
            "probes",
        }
        for counts in data["per_oracle"].values():
            assert set(counts) == {"checks", "failures"}
            assert counts["checks"] > 0
            assert counts["failures"] == 0

    def test_wall_time_and_counts(self, summary):
        _, _, data = summary
        assert isinstance(data["wall_time_s"], float)
        assert data["wall_time_s"] > 0
        assert data["seeds"] == 2
        assert data["cases"] == 8  # 2 seeds x 4 shapes
        assert data["shapes"] == ["cint", "cfp", "composite", "mem"]
        assert data["oracles"] == [
            "equiv", "optimal", "lifetime", "safety", "cache", "probes",
        ]
        assert data["artifacts"] == []
        assert data["interrupted"] is False

    def test_stdout_matches_summary_file(self, tmp_path, capsys):
        out = tmp_path / "check"
        main(["--seeds", "1", "--shape", "cint", "--json", "--out", str(out)])
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads((out / "summary.json").read_text())
        assert printed == on_disk


class TestOptions:
    def test_single_shape_single_oracle(self, tmp_path):
        out = tmp_path / "check"
        rc = main([
            "--seeds", "1", "--shape", "cfp", "--oracle", "safety",
            "--json", "--out", str(out),
        ])
        data = json.loads((out / "summary.json").read_text())
        assert rc == 0
        assert data["shapes"] == ["cfp"]
        assert data["oracles"] == ["safety"]
        assert set(data["per_oracle"]) == {"compile", "safety"}

    def test_seed_base_shifts_the_window(self, tmp_path):
        out = tmp_path / "check"
        main([
            "--seeds", "1", "--seed-base", "17", "--shape", "cint",
            "--oracle", "equiv", "--json", "--out", str(out),
        ])
        data = json.loads((out / "summary.json").read_text())
        assert data["seed_base"] == 17
        assert data["cases"] == 1

    def test_text_output_mentions_pass(self, tmp_path, capsys):
        rc = main([
            "--seeds", "1", "--shape", "cint", "--oracle", "equiv",
            "--out", str(tmp_path / "check"),
        ])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    @pytest.mark.parametrize("solver", ["mincut", "lospre", "auto"])
    def test_solver_flag_accepted_and_recorded(self, tmp_path, solver):
        out = tmp_path / "check"
        rc = main([
            "--seeds", "1", "--shape", "cint", "--oracle", "optimal",
            "--solver", solver, "--json", "--out", str(out),
        ])
        data = json.loads((out / "summary.json").read_text())
        assert rc == 0
        assert data["passed"] is True
        assert data["solver"] == solver

    def test_unknown_solver_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--seeds", "1", "--solver", "simplex"])
        assert excinfo.value.code == 2
        assert "--solver" in capsys.readouterr().err


class TestReplay:
    def test_non_reproducing_artifact_exits_nonzero(self, tmp_path, capsys):
        # A fabricated artifact claiming a failure that main cannot
        # reproduce: replay must say so and exit 1.
        artifact = tmp_path / "seed0_cint_equiv_divergence_lcm.json"
        artifact.write_text(json.dumps({
            "schema": SCHEMA_VERSION,
            "seed": 0,
            "shape": "cint",
            "oracle": "equiv",
            "variant": "lcm",
            "kind": "divergence",
            "detail": "fabricated",
        }))
        rc = main(["--replay", str(artifact)])
        assert rc == 1
        assert "DID NOT reproduce" in capsys.readouterr().out

    def test_replay_json_mode(self, tmp_path, capsys):
        artifact = tmp_path / "seed0_cint_equiv_divergence_lcm.json"
        artifact.write_text(json.dumps({
            "schema": SCHEMA_VERSION,
            "seed": 0,
            "shape": "cint",
            "oracle": "equiv",
            "variant": "lcm",
            "kind": "divergence",
            "detail": "fabricated",
        }))
        rc = main(["--replay", str(artifact), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert data["reproduced"] is False
        assert Path(data["artifact"]) == artifact
