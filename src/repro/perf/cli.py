"""Command-line entry: ``python -m repro.perf``.

Runs the pinned benchmark suite and writes ``BENCH.json`` (schema in
``docs/PERF.md``).  ``--quick`` trims the workload and network lists for
CI smoke runs; ``--only SECTION`` (repeatable) restricts the run to a
subset of sections; ``--json`` prints the payload to stdout as well.

Exit status: 0 when every correctness gate passed, 1 otherwise — the
timings themselves never fail the run (they are environment-dependent);
a compiled-vs-reference divergence, a Dinic-vs-Edmonds-Karp
disagreement, or an iterative-PRE regression (dynamic cost higher than
one-shot anywhere, or no strict win on the composite suite) does.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.solvers.base import SOLVER_NAMES
from repro.perf.bench import SECTION_NAMES, run_perf


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description=(
            "Benchmark the compiled execution back end, the compile "
            "pipeline and the max-flow solvers; write BENCH.json."
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload/network lists, one repetition (CI smoke)",
    )
    parser.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="timed repetitions per section, minimum reported "
        "(default 3, or 1 with --quick)",
    )
    parser.add_argument(
        "--solver", choices=SOLVER_NAMES, default="mincut",
        help="speculation solver the compile section times: the exact "
        "min-cut back end, the linear-time lospre DP, or auto (shape "
        "classifier picks per function); the solver-scaling section "
        "always measures both (default mincut)",
    )
    parser.add_argument(
        "--only", action="append", choices=SECTION_NAMES, default=None,
        metavar="SECTION",
        help="run only this section (repeatable); the payload and the "
        "exit-status gates cover just the sections run",
    )
    parser.add_argument(
        "--out", default="BENCH.json", metavar="PATH",
        help="output path (default BENCH.json)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="also print the payload to stdout",
    )
    args = parser.parse_args(argv)

    payload = run_perf(
        quick=args.quick, repeat=args.repeat, solver=args.solver,
        sections=tuple(args.only) if args.only else None,
    )
    text = json.dumps(payload, indent=2) + "\n"
    Path(args.out).write_text(text)

    if args.json:
        print(text, end="")
    else:
        if "execution" in payload:
            execution = payload["execution"]
            print(f"execution: {execution['speedup']}x compiled over "
                  f"reference ({execution['total_reference_s']}s -> "
                  f"{execution['total_compiled_s']}s, "
                  f"equivalent={execution['equivalent']})")
        if "compile" in payload:
            print(f"compile:   {payload['compile']['total_s']}s over "
                  f"{payload['compile']['functions']} function(s)")
        if "memory" in payload:
            memory = payload["memory"]
            spec_hoist = memory["speculation"]["hoist"]
            spec_blocked = memory["speculation"]["blocked"]
            print(f"memory:    {memory['speedup']}x compiled over reference "
                  f"(gate {memory['min_speedup']}x, "
                  f"equivalent={memory['equivalent']})")
            print(f"memory:    hoist cost {spec_hoist['safe_cost']} -> "
                  f"{spec_hoist['mc_cost']} "
                  f"(loads {spec_hoist['safe_loads']} -> "
                  f"{spec_hoist['mc_loads']}, ok={spec_hoist['ok']}), "
                  f"blocked loads {spec_blocked['mc_loads']}"
                  f"/{spec_blocked['control_loads']} "
                  f"(ok={spec_blocked['ok']})")
        if "iterative" in payload:
            iterative = payload["iterative"]
            for row in iterative["workloads"]:
                print(f"iterative: {row['name']:<10} "
                      f"{row['rounds_run']} round(s)  cost "
                      f"{row['oneshot_dynamic_cost']} -> "
                      f"{row['iterative_dynamic_cost']}  "
                      f"(compile x{row['compile_overhead']})")
            print(f"iterative: never_higher={iterative['never_higher']} "
                  f"strict_win={iterative['strict_win']} "
                  f"equivalent={iterative['equivalent']}")
        if "solver_scaling" in payload:
            scaling = payload["solver_scaling"]
            for row in scaling["sizes"]:
                print(f"solver:    {row['kills']:>4} kills "
                      f"({row['blocks']} blocks)  "
                      f"mincut {row['mincut_solve_s']}s  "
                      f"lospre {row['lospre_solve_s']}s  "
                      f"({row['solver_speedup']}x, width {row['max_width']})")
            print(f"solver:    speedup {scaling['speedup_at_largest']}x at "
                  f"largest size (gate {scaling['min_speedup']}x), "
                  f"equivalent={scaling['equivalent']} "
                  f"accepted={scaling['accepted']}")
        if "serving" in payload:
            serving = payload["serving"]
            print(f"serving:   {serving['speedup']}x warm over cold "
                  f"({serving['cold_s']}s -> {serving['warm_s']}s per "
                  f"{serving['unique']} request(s), "
                  f"equivalent={serving['equivalent']})")
            print(f"serving:   cold solver=auto request "
                  f"{serving['cold_auto_s']}s (ok={serving['auto_ok']})")
            print(f"serving:   hit rate {serving['hit_rate']} "
                  f"(admits {serving['expected_hit_rate']}), "
                  f"{serving['mismatches']} mismatch(es), "
                  f"coalescing {serving['coalescing']['compiles']} "
                  f"compile(s) for {serving['coalescing']['clients']} "
                  f"client(s)")
            adaptation = serving["adaptation"]
            print(f"serving:   adaptation "
                  f"promotions={adaptation['promotions']} "
                  f"drift_events={adaptation['drift_events']} "
                  f"hot_swaps={adaptation['hot_swaps']} "
                  f"non_blocking={adaptation['non_blocking_ok']} "
                  f"swap_identical={adaptation['swap_identical']} "
                  f"(ok={adaptation['ok']})")
            cluster = serving["cluster"]
            print(f"serving:   cluster {cluster['achieved_rps']} req/s over "
                  f"{cluster['workers']} worker(s) "
                  f"({cluster['rps_ratio']}x single, gate "
                  f"{cluster['min_rps_ratio']}x), p99 {cluster['p99_s']}s "
                  f"(max {cluster['p99_max_s']}s), "
                  f"race compiles={cluster['race']['compiles']} "
                  f"(ok={cluster['ok']})")
        if "maxflow" in payload:
            for row in payload["maxflow"]["networks"]:
                print(f"maxflow:   {row['nodes']}n/{row['edges']}e  "
                      f"dinic {row['dinic_s']}s  "
                      f"ek {row['edmonds_karp_s']}s  "
                      f"({row['ek_over_dinic']}x)")
        if "profiling" in payload:
            profiling = payload["profiling"]
            for row in profiling["workloads"]:
                print(f"profiling: {row['name']:<10} "
                      f"{row['probes']}/{row['blocks']} probes "
                      f"(bound {row['bound']})  events "
                      f"{row['full_events']} -> {row['probe_events']} "
                      f"({row['event_ratio']}x)")
            for row in profiling["quality"]:
                print(f"profiling: {row['name']:<10} quality delta "
                      f"recon {row['delta_reconstructed']}  "
                      f"sampled {row['delta_sampled']}  "
                      f"stale {row['delta_stale']}")
            print(f"profiling: event ratio {profiling['event_ratio']}x "
                  f"(gate {profiling['min_event_ratio']}x), "
                  f"bounds_ok={profiling['bounds_ok']} "
                  f"equivalent={profiling['equivalent']} "
                  f"quality_ok={profiling['quality_ok']} "
                  f"fallbacks={len(profiling['fallbacks'])} "
                  f"(ok={profiling['ok']})")
        print(f"wrote {args.out}")
    if not payload["ok"]:
        print(
            "EQUIVALENCE, ITERATIVE, SOLVER, SERVING OR PROFILING GATE "
            "FAILURE - see BENCH.json",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
