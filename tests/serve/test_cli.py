"""``python -m repro.serve``: load gates, stdio protocol, metrics export."""

import io
import json

from repro.serve.cli import main
from repro.serve.metrics import METRICS_SCHEMA


class TestLoad:
    def test_load_passes_its_gates(self, capsys):
        rc = main([
            "load", "--requests", "12", "--unique", "3",
            "--min-hit-rate", "0.7",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mismatches 0" in out

    def test_load_json_report(self, capsys):
        rc = main(["load", "--requests", "8", "--unique", "2", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["requests"] == 8
        assert data["mismatches"] == 0
        assert data["hit_rate"] >= data["expected_hit_rate"]

    def test_unreachable_hit_rate_fails_the_gate(self, capsys):
        rc = main([
            "load", "--requests", "4", "--unique", "4",
            "--min-hit-rate", "0.9",
        ])
        assert rc == 1
        assert "LOAD GATE FAILURE" in capsys.readouterr().err

    def test_concurrent_load_with_disk_cache(self, tmp_path, capsys):
        rc = main([
            "load", "--requests", "12", "--unique", "3", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--min-hit-rate", "0.5", "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["mismatches"] == 0

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        rc = main([
            "load", "--requests", "6", "--unique", "2",
            "--metrics-out", str(path),
        ])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["schema"] == METRICS_SCHEMA
        assert data["counters"]["requests"] == 6


class TestAdaptLoad:
    def test_phase_shift_drives_a_hot_swap_end_to_end(self, capsys):
        rc = main([
            "load", "--adapt", "--requests", "160", "--unique", "4",
            "--drift-at", "80", "--warmup", "3",
            "--drift-threshold", "0.1", "--min-samples", "8",
            "--min-hot-swaps", "1", "--min-promotions", "1", "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["mismatches"] == 0
        adaptation = data["adaptation"]
        assert adaptation["drained"]
        assert adaptation["tier_promotions"] >= 1
        assert adaptation["drift_events"] >= 1
        assert adaptation["hot_swaps"] >= 1
        assert adaptation["post_swap_mismatches"] == 0
        assert adaptation["post_swap_verified"] == 4
        generations = [row["generation"] for row in adaptation["keys"]]
        assert max(generations) >= 2

    def test_stationary_adaptive_load_promotes_without_swapping(self, capsys):
        rc = main([
            "load", "--adapt", "--requests", "24", "--unique", "2",
            "--warmup", "2", "--min-promotions", "1", "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["mismatches"] == 0
        assert data["adaptation"]["tier_promotions"] >= 1
        assert data["adaptation"]["hot_swaps"] == 0

    def test_swap_gates_require_adapt(self, capsys):
        rc = main([
            "load", "--requests", "4", "--unique", "2", "--min-hot-swaps", "1",
        ])
        assert rc == 1
        assert "require --adapt" in capsys.readouterr().err

    def test_metrics_dump_leaves_a_final_snapshot(self, tmp_path, capsys):
        path = tmp_path / "live-metrics.json"
        rc = main([
            "load", "--adapt", "--requests", "10", "--unique", "2",
            "--metrics-dump", str(path), "--metrics-dump-every", "0.05",
        ])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["schema"] == METRICS_SCHEMA
        for counter in ("live_samples", "hot_swaps", "tier_promotions"):
            assert counter in data["counters"]


class TestServeStdio:
    def _serve(self, monkeypatch, lines):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("\n".join(lines) + "\n")
        )
        return main(["serve"])

    def test_request_response_and_metrics_lines(
        self, monkeypatch, capsys, diamond_source
    ):
        request = {
            "source": diamond_source, "args": [4, 5, 1],
            "variant": "ssapre",
        }
        rc = self._serve(monkeypatch, [
            json.dumps(request),
            json.dumps(request),
            json.dumps({"cmd": "metrics"}),
        ])
        assert rc == 0
        replies = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert len(replies) == 3
        first, second, metrics = replies
        assert first["status"] == second["status"] == "ok"
        assert first["served_by"] == "compile"
        assert second["served_by"] == "memory"
        assert first["return_value"] == second["return_value"]
        assert metrics["counters"]["requests"] == 2

    def test_bad_json_line_keeps_the_loop_alive(
        self, monkeypatch, capsys, diamond_source
    ):
        request = {"source": diamond_source, "args": [1, 2, 0],
                   "variant": "ssapre"}
        rc = self._serve(monkeypatch, [
            "{ not json",
            json.dumps(request),
        ])
        assert rc == 0
        replies = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert replies[0]["status"] == "error"
        assert "bad JSON" in replies[0]["error"]
        assert replies[1]["status"] == "ok"

    def test_unknown_field_is_rejected_per_line(
        self, monkeypatch, capsys, diamond_source
    ):
        rc = self._serve(monkeypatch, [
            json.dumps({"source": diamond_source, "zap": 1}),
        ])
        assert rc == 0
        reply = json.loads(capsys.readouterr().out.splitlines()[0])
        assert reply["status"] == "error"
        assert "unknown request fields" in reply["error"]
