"""The pluggable speculation-solver layer (repro.core.solvers).

The exactness contract: every solver produces the lifetime-optimal
minimum cut, so lospre and the min cut must agree on the *placement*
(compiled text), the per-class cut values, and the measured dynamic
cost — not merely on observables.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.core.solvers.base import (
    DEFAULT_SOLVER,
    SOLVER_NAMES,
    resolve_solver,
)
from repro.core.solvers.lospre import DEFAULT_MAX_WIDTH, LospreSolver
from repro.core.solvers.mincut import MinCutSolver
from repro.passes.compiler import compile as compile_func
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from tests.conftest import as_ssa


def _fuzz_program(seed):
    spec = ProgramSpec(name="solver", seed=seed, max_depth=3)
    prog = generate_program(spec)
    return prog, random_args(spec, 1)


def _compile_with(prepared, profile, solver):
    compiled = compile_func(prepared, "mc-ssapre", profile, solver=solver)
    return compiled


class TestResolveSolver:
    def test_names_resolve_to_solver_instances(self):
        assert isinstance(resolve_solver("mincut"), MinCutSolver)
        assert isinstance(resolve_solver("lospre"), LospreSolver)

    def test_instances_pass_through(self):
        solver = LospreSolver(max_width=3)
        assert resolve_solver(solver) is solver

    def test_auto_is_a_policy_not_a_solver(self):
        with pytest.raises(ValueError, match="policy"):
            resolve_solver("auto")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown solver"):
            resolve_solver("simplex")

    def test_registry_constants(self):
        assert DEFAULT_SOLVER == "mincut"
        assert set(SOLVER_NAMES) == {"mincut", "lospre", "auto"}


class TestExactness:
    """lospre == min cut, bit for bit, on every accepted program."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_lospre_matches_mincut_placement(self, seed):
        prog, args = _fuzz_program(seed)
        prepared = prepare(prog.func, restructure=False)
        train = run_function(copy.deepcopy(prepared), args)

        by_mincut = _compile_with(prepared, train.profile, "mincut")
        by_lospre = _compile_with(prepared, train.profile, "lospre")

        # Identical code, not merely equivalent code.
        assert str(by_lospre.func) == str(by_mincut.func)

        # Identical predicted cut values, class by class.
        mc = by_mincut.pre_result
        lp = by_lospre.pre_result
        assert [(s.expr, s.cut_value, s.insertions) for s in lp.efg_stats] \
            == [(s.expr, s.cut_value, s.insertions) for s in mc.efg_stats]

        # Identical measured dynamic cost.
        ref_mc = run_function(copy.deepcopy(by_mincut.func), args)
        ref_lp = run_function(copy.deepcopy(by_lospre.func), args)
        assert ref_lp.dynamic_cost == ref_mc.dynamic_cost
        assert ref_lp.observable() == ref_mc.observable()

    def test_solvers_agree_on_loop_speculation(self, while_loop):
        """The canonical speculative case: hoist out of the rarely-taken
        arm when the profile says the loop is hot."""
        ssa_mc = as_ssa(while_loop)
        ssa_lp = copy.deepcopy(ssa_mc)
        profile = run_function(copy.deepcopy(ssa_mc), [2, 3, 50]).profile
        mc = run_mc_ssapre(ssa_mc, profile, solver="mincut")
        lp = run_mc_ssapre(ssa_lp, profile, solver="lospre")
        assert str(ssa_lp) == str(ssa_mc)
        assert [s.cut_value for s in lp.efg_stats] == [
            s.cut_value for s in mc.efg_stats
        ]


class TestReporting:
    def test_solver_recorded_in_result_and_stats(self, while_loop):
        ssa = as_ssa(while_loop)
        profile = run_function(copy.deepcopy(ssa), [2, 3, 10]).profile
        result = run_mc_ssapre(ssa, profile, solver="lospre")
        assert result.solver_requested == "lospre"
        assert result.solver_used == "lospre"
        assert result.shape_width is not None
        assert result.lospre_refusals == 0
        assert result.efg_stats, "the loop produces a non-trivial class"
        for stat in result.efg_stats:
            assert stat.solver == "lospre"
            assert stat.width is not None
            assert 0 <= stat.width <= DEFAULT_MAX_WIDTH

    def test_mincut_stats_have_no_width(self, while_loop):
        ssa = as_ssa(while_loop)
        profile = run_function(copy.deepcopy(ssa), [2, 3, 10]).profile
        result = run_mc_ssapre(ssa, profile)
        assert result.solver_requested == "mincut"
        assert result.solver_used == "mincut"
        for stat in result.efg_stats:
            assert stat.solver == "mincut"
            assert stat.width is None


class TestRefusal:
    """Width overflow returns None; the driver falls back to the cut."""

    def test_zero_width_solver_refuses_and_falls_back(self):
        # The kill-chain family needs width 1: a zero-width bound must
        # refuse it (a plain loop's single-Φ class eliminates at width
        # 0 and would sail through).
        from repro.lang.parser import parse_function
        from repro.perf.bench import solver_scaling_text

        func = prepare(parse_function(solver_scaling_text(3)))
        ssa = as_ssa(func)
        reference = copy.deepcopy(ssa)
        profile = run_function(copy.deepcopy(ssa), [3, 5, 6]).profile
        result = run_mc_ssapre(ssa, profile, solver=LospreSolver(max_width=0))
        baseline = run_mc_ssapre(reference, profile, solver="mincut")
        assert result.lospre_refusals > 0
        # Fallback placements are still the lifetime-optimal cut.
        assert str(ssa) == str(reference)
        assert [s.cut_value for s in result.efg_stats] == [
            s.cut_value for s in baseline.efg_stats
        ]

    def test_default_width_never_refuses_structured_code(self, while_loop):
        ssa = as_ssa(while_loop)
        profile = run_function(copy.deepcopy(ssa), [2, 3, 10]).profile
        result = run_mc_ssapre(ssa, profile, solver="lospre")
        assert result.lospre_refusals == 0
