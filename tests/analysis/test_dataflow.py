"""Tests for the bit-vector PRE data-flow framework.

Includes a path-enumeration oracle on acyclic programs: availability /
anticipability are defined as universally-quantified path properties, so
on a DAG they can be checked by brute force.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import (
    compute_local_props,
    expression_keys,
    solve_pre_dataflow,
)
from repro.bench.generator import ProgramSpec, generate_program
from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import CFG


class TestLocalProps:
    def test_antloc_and_comp(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")   # occurrence
        b.assign("a", "add", "a", 1)     # kills a+b
        b.assign("y", "add", "a", "b")   # recomputes
        b.ret("y")
        func = b.build()
        keys = expression_keys(func)
        ab = ("add", ("var", "a"), ("var", "b"))
        props = compute_local_props(func.blocks["entry"], keys)
        assert ab in props.antloc       # upward exposed
        assert ab in props.body_kill    # a reassigned
        assert ab in props.comp         # recomputed after the kill

    def test_comp_cleared_by_trailing_kill(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.assign("b", "add", "b", 1)
        b.ret("x")
        func = b.build()
        ab = ("add", ("var", "a"), ("var", "b"))
        props = compute_local_props(func.blocks["entry"], expression_keys(func))
        assert ab in props.antloc
        assert ab not in props.comp

    def test_self_killing_occurrence(self):
        """a = a+b is antloc but not comp."""
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("a", "add", "a", "b")
        b.ret("a")
        func = b.build()
        ab = ("add", ("var", "a"), ("var", "b"))
        props = compute_local_props(func.blocks["entry"], expression_keys(func))
        assert ab in props.antloc
        assert ab in props.body_kill
        assert ab not in props.comp

    def test_phi_kill(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        keys = expression_keys(diamond)
        # No variable phi kills a+b's operands in the diamond.
        for label in diamond.blocks:
            props = compute_local_props(diamond.blocks[label], keys)
            ab = ("add", ("var", "a"), ("var", "b"))
            assert ab not in props.phi_kill


def enumerate_paths(cfg: CFG, start: str, max_paths: int = 4000):
    """All entry-to-exit paths of an acyclic CFG, or None if too many."""
    paths = []
    stack = [(start, [start])]
    while stack:
        label, path = stack.pop()
        succs = cfg.successors(label)
        if not succs:
            paths.append(path)
            if len(paths) > max_paths:
                return None
            continue
        for succ in succs:
            stack.append((succ, path + [succ]))
    return paths


def acyclic_program(seed: int):
    """A generated program without loops (pure DAG)."""
    spec = ProgramSpec(
        name="dag", seed=seed, max_depth=2, region_length=3,
        loop_weight=0.0, branch_weight=0.45,
    )
    return generate_program(spec).func


def path_avail(func, cfg, path, key, upto_index):
    """Is `key` available at entry of path[upto_index] along this path?"""
    from repro.analysis.dataflow import compute_local_props

    keys = [key]
    available = False
    for label in path[:upto_index]:
        props = compute_local_props(func.blocks[label], keys)
        if key in props.phi_kill:
            available = False
        if key in props.comp:
            available = True
        elif key in props.body_kill:
            available = False
    return available


class TestAgainstPathEnumeration:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_avail_in_on_dags(self, seed):
        func = acyclic_program(seed)
        cfg = CFG(func)
        keys = expression_keys(func)[:5]
        if not keys:
            return
        dataflow = solve_pre_dataflow(func, keys)
        paths = enumerate_paths(cfg, func.entry)
        if paths is None:
            return  # combinatorial blow-up: sample elsewhere
        for key in keys:
            for label in cfg.reachable():
                # avail_in(label) <=> available along EVERY path prefix
                # reaching label.
                prefixes = []
                for path in paths:
                    if label in path:
                        prefixes.append(path[: path.index(label) + 1])
                if not prefixes:
                    continue
                expected = all(
                    path_avail(func, cfg, p, key, len(p) - 1) for p in prefixes
                )
                got = key in dataflow.avail_in[label]
                assert got == expected, (key, label)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=500, max_value=900))
    def test_pavail_in_on_dags(self, seed):
        func = acyclic_program(seed)
        cfg = CFG(func)
        keys = expression_keys(func)[:5]
        if not keys:
            return
        dataflow = solve_pre_dataflow(func, keys)
        paths = enumerate_paths(cfg, func.entry)
        if paths is None:
            return
        for key in keys:
            for label in cfg.reachable():
                prefixes = [
                    p[: p.index(label) + 1] for p in paths if label in p
                ]
                if not prefixes:
                    continue
                expected = any(
                    path_avail(func, cfg, p, key, len(p) - 1) for p in prefixes
                )
                got = key in dataflow.pavail_in[label]
                assert got == expected, (key, label)


class TestAnticipability:
    def test_diamond_join_anticipates(self, diamond):
        dataflow = solve_pre_dataflow(diamond)
        ab = ("add", ("var", "a"), ("var", "b"))
        # a+b computed unconditionally at the join => anticipated at entry
        assert ab in dataflow.ant_postphi["entry"]
        assert ab in dataflow.pant_postphi["entry"]

    def test_while_loop_header_does_not_anticipate(self, while_loop):
        dataflow = solve_pre_dataflow(while_loop)
        ab = ("add", ("var", "a"), ("var", "b"))
        # The loop may run zero times: a+b not fully anticipated at head.
        assert ab not in dataflow.ant_postphi["head"]
        assert ab in dataflow.pant_postphi["head"]

    def test_exit_blocks_anticipate_nothing_downstream(self, diamond):
        dataflow = solve_pre_dataflow(diamond)
        assert dataflow.ant_out["join"] == set()
        assert dataflow.pant_out["join"] == set()

    def test_availability_after_branch_computation(self, diamond):
        dataflow = solve_pre_dataflow(diamond)
        ab = ("add", ("var", "a"), ("var", "b"))
        assert ab in dataflow.avail_out["left"]
        assert ab not in dataflow.avail_out["right"]
        assert ab not in dataflow.avail_in["join"]
        assert ab in dataflow.pavail_in["join"]
