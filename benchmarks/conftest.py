"""Shared fixtures for the benchmark harness.

Every benchmark file regenerates one of the paper's tables/figures (or an
ablation) and uses pytest-benchmark to time the representative unit of
work.  By default a fixed subset of the 29 benchmarks is used so the whole
harness runs in a few minutes; set ``REPRO_BENCH_FULL=1`` to sweep the
complete suite exactly as the paper does.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import ALL_BENCHMARKS, CFP2006, CINT2006

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Subsets used when REPRO_BENCH_FULL is unset.
CINT_SUBSET = CINT2006 if FULL else ("perlbench", "mcf", "sjeng", "omnetpp")
CFP_SUBSET = CFP2006 if FULL else ("milc", "dealII", "tonto", "sphinx3")
SUITE_SUBSET = ALL_BENCHMARKS if FULL else CINT_SUBSET + CFP_SUBSET


@pytest.fixture(scope="session")
def cint_table():
    from repro.bench.tables import build_table

    return build_table(CINT_SUBSET, "Table 1 (CINT2006 subset)")


@pytest.fixture(scope="session")
def cfp_table():
    from repro.bench.tables import build_table

    return build_table(CFP_SUBSET, "Table 2 (CFP2006 subset)")


def emit(title: str, body: str) -> None:
    """Print a regenerated artifact under a clear banner."""
    print()
    print(f"### {title}")
    print(body)
