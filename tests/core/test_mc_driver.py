"""End-to-end tests of the MC-SSAPRE driver (the ten steps of Figure 4)."""

import copy

import pytest

from repro.core.mcssapre.driver import run_mc_ssapre
from repro.ir.builder import FunctionBuilder
from repro.ir.transforms import split_critical_edges
from repro.profiles.interp import run_function
from repro.profiles.profile import ExecutionProfile
from repro.ssa.construct import construct_ssa
from tests.conftest import as_ssa


class TestDriverContract:
    def test_rejects_critical_edges(self):
        b = FunctionBuilder("f", params=["c"])
        b.block("entry")
        b.branch("c", "mid", "join")
        b.block("mid")
        b.jump("join")
        b.block("join")
        b.ret()
        func = b.build()
        construct_ssa(func)
        with pytest.raises(ValueError):
            run_mc_ssapre(func, ExecutionProfile())

    def test_accepts_nodes_only_profile(self, while_loop):
        """MC-SSAPRE must work without any edge frequencies (paper
        contribution 3)."""
        ssa = as_ssa(while_loop)
        run = run_function(copy.deepcopy(ssa), [2, 3, 10])
        result = run_mc_ssapre(ssa, run.profile.nodes_only(), validate=True)
        assert result.algorithm == "MC-SSAPRE"
        after = run_function(ssa, [2, 3, 10])
        ab = ("add", ("var", "a"), ("var", "b"))
        assert after.expr_counts[ab] == 1

    def test_efg_stats_recorded(self, while_loop):
        ssa = as_ssa(while_loop)
        run = run_function(copy.deepcopy(ssa), [2, 3, 10])
        result = run_mc_ssapre(ssa, run.profile.nodes_only())
        assert result.efg_stats, "non-trivial EFGs were formed"
        for stat in result.efg_stats:
            assert stat.nodes >= 4  # the structural minimum

    def test_local_cse_handled_uniformly(self, straightline):
        """Empty EFG (no strictly partial redundancy) still deletes the
        fully redundant second occurrence — Section 4's local+global
        uniformity claim."""
        ssa = as_ssa(straightline)
        result = run_mc_ssapre(ssa, ExecutionProfile(node_freq={"entry": 1}))
        run = run_function(ssa, [2, 3])
        ab = ("add", ("var", "a"), ("var", "b"))
        assert run.expr_counts[ab] == 1
        assert run.return_value == 25
        assert result.efg_stats == []  # no flow network was needed


class TestTrappingFallback:
    def build_trapping_loop(self):
        b = FunctionBuilder("f", params=["a", "b", "n"])
        b.block("entry")
        b.copy("i", 0)
        b.copy("acc", 0)
        b.jump("head")
        b.block("head")
        b.assign("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.assign("v", "div", "a", "b")  # trapping: must not be speculated
        b.assign("acc", "add", "acc", "v")
        b.assign("i", "add", "i", 1)
        b.jump("head")
        b.block("done")
        b.ret("acc")
        func = b.build()
        split_critical_edges(func)
        construct_ssa(func)
        return func

    def test_trapping_expression_not_hoisted(self):
        func = self.build_trapping_loop()
        run = run_function(copy.deepcopy(func), [10, 2, 50])
        result = run_mc_ssapre(func, run.profile.nodes_only(), validate=True)
        assert result.trapping_fallbacks == 1
        after = run_function(func, [10, 2, 50])
        key = ("div", ("var", "a"), ("var", "b"))
        # Safe placement cannot leave the while loop: still 50 evals.
        assert after.expr_counts[key] == 50

    def test_trapping_zero_trip_stays_zero(self):
        """The paper's reason for the rule: a zero-trip loop must not
        execute the trapping op at all after optimisation."""
        func = self.build_trapping_loop()
        run = run_function(copy.deepcopy(func), [10, 0, 0])
        run_mc_ssapre(func, run.profile.nodes_only())
        after = run_function(func, [10, 0, 0])
        key = ("div", ("var", "a"), ("var", "b"))
        assert after.expr_counts.get(key, 0) == 0

    def test_nontrapping_sibling_still_speculated(self):
        """In the same function, a non-trapping invariant is hoisted while
        the trapping one is not."""
        b = FunctionBuilder("f", params=["a", "b", "n"])
        b.block("entry")
        b.copy("i", 0)
        b.copy("acc", 0)
        b.jump("head")
        b.block("head")
        b.assign("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.assign("u", "add", "a", "b")
        b.assign("v", "mod", "a", "b")
        b.assign("acc", "add", "acc", "u")
        b.assign("acc", "add", "acc", "v")
        b.assign("i", "add", "i", 1)
        b.jump("head")
        b.block("done")
        b.ret("acc")
        func = b.build()
        split_critical_edges(func)
        construct_ssa(func)
        run = run_function(copy.deepcopy(func), [9, 4, 30])
        run_mc_ssapre(func, run.profile.nodes_only())
        after = run_function(func, [9, 4, 30])
        assert after.expr_counts[("add", ("var", "a"), ("var", "b"))] == 1
        assert after.expr_counts[("mod", ("var", "a"), ("var", "b"))] == 30
