"""Single-source single-sink flow networks.

Nodes are arbitrary hashable objects; parallel edges are first-class (each
:class:`Edge` has its own identity and capacity) because the essential flow
graph of MC-SSAPRE genuinely contains parallel edges — one per Φ operand —
that must be cuttable independently.

"Infinite" capacity is represented by a finite value strictly greater than
the sum of all finite capacities (set when the network is frozen), so
max-flow arithmetic stays exact over Python ints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

INFINITE = "inf"


@dataclass
class Edge:
    """A directed edge with capacity; ``payload`` is caller data."""

    index: int
    src: Hashable
    dst: Hashable
    capacity: int
    infinite: bool = False
    payload: object = None

    def __repr__(self) -> str:
        cap = "inf" if self.infinite else str(self.capacity)
        return f"Edge({self.src!r}->{self.dst!r}, cap={cap})"


class FlowNetwork:
    """A mutable flow network; freeze before running max-flow."""

    def __init__(self, source: Hashable, sink: Hashable) -> None:
        if source == sink:
            raise ValueError("source and sink must differ")
        self.source = source
        self.sink = sink
        self.edges: list[Edge] = []
        self.out_edges: dict[Hashable, list[int]] = {source: [], sink: []}
        self.in_edges: dict[Hashable, list[int]] = {source: [], sink: []}
        self._frozen = False

    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        self.out_edges.setdefault(node, [])
        self.in_edges.setdefault(node, [])

    def add_edge(
        self,
        src: Hashable,
        dst: Hashable,
        capacity: int | str,
        payload: object = None,
    ) -> Edge:
        """Add an edge; ``capacity`` may be the string ``"inf"``."""
        if self._frozen:
            raise ValueError("network is frozen")
        infinite = capacity == INFINITE
        if not infinite:
            assert isinstance(capacity, int)
            if capacity < 0:
                raise ValueError(f"negative capacity {capacity}")
        self.add_node(src)
        self.add_node(dst)
        edge = Edge(
            index=len(self.edges),
            src=src,
            dst=dst,
            capacity=0 if infinite else int(capacity),
            infinite=infinite,
            payload=payload,
        )
        self.edges.append(edge)
        self.out_edges[src].append(edge.index)
        self.in_edges[dst].append(edge.index)
        return edge

    def freeze(self) -> None:
        """Materialise infinite capacities and lock the structure."""
        if self._frozen:
            return
        finite_total = sum(e.capacity for e in self.edges if not e.infinite)
        big = finite_total + 1
        for edge in self.edges:
            if edge.infinite:
                edge.capacity = big
        self._frozen = True

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Hashable]:
        return list(self.out_edges)

    def node_count(self) -> int:
        return len(self.out_edges)

    def edge_count(self) -> int:
        return len(self.edges)

    def out_of(self, node: Hashable) -> Iterator[Edge]:
        for index in self.out_edges.get(node, ()):
            yield self.edges[index]

    def into(self, node: Hashable) -> Iterator[Edge]:
        for index in self.in_edges.get(node, ()):
            yield self.edges[index]

    def total_finite_capacity(self) -> int:
        return sum(e.capacity for e in self.edges if not e.infinite)


@dataclass
class CutResult:
    """A minimum cut: its value, edges, and the sink-side node set."""

    value: int
    cut_edges: list[Edge]
    source_side: set = field(default_factory=set)
    sink_side: set = field(default_factory=set)

    def cut_edge_indices(self) -> set[int]:
        return {e.index for e in self.cut_edges}
