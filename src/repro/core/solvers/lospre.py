"""The linear-time lospre speculation solver.

Krause's observation (arXiv 2011.10789): lifetime-optimal speculative
PRE is NP-hard in general but *linear-time* on graphs of bounded
treewidth — and structured programs, which is what real front ends and
our generator overwhelmingly produce, have small treewidth.  This module
solves the same placement problem as
:class:`~repro.core.solvers.mincut.MinCutSolver` by dynamic programming
over a width-bounded elimination order instead of by max-flow.

The reduction.  A minimum s-t cut is a *vertex partition* problem: assign
every node a side, ``S`` (source) or ``T`` (sink); a directed edge
``(u, v, cap)`` costs ``cap`` exactly when ``u ∈ S`` and ``v ∈ T``.  On
the essential flow graph the source and the sink have fixed sides, and
every SPR occurrence is forced into ``T`` by its infinite sink edge, so
the only true variables are the included Φ nodes:

* a source edge (⊥ operand of Φ ``A``) costs its weight iff ``A ∈ T`` —
  a unary factor;
* a type 1 edge ``A → B`` costs its weight iff ``A ∈ S`` and ``B ∈ T`` —
  a binary factor;
* a type 2 edge (Φ ``A`` → occurrence) costs its weight iff ``A ∈ S`` —
  a unary factor.

Lifetime optimality (Theorem 9) picks, among all minimum cuts, the
unique one **closest to the sink** — equivalently, by the min-cut
lattice, the one whose sink side is smallest.  The DP therefore
minimises the pair ``(cut value, |T|)`` lexicographically; because that
optimum is achieved by exactly one partition, the DP's placement is
bit-identical to the reverse-labelling cut of
:func:`repro.flownet.mincut.min_cut` — the exactness contract the
``repro.check`` optimality twin enforces on every fuzz seed.

The machinery is bucket elimination over a min-degree order: eliminating
a Φ joins every factor that mentions it and minimises it out, recording
a backtrack table; the largest scope met is the width of the (implicit)
tree decomposition.  If it ever exceeds the bound the solver *refuses*
(returns ``None``) and the driver falls back to the min cut.  Under the
bound ``w`` the whole solve is ``O(n · 2^(w+1))`` — linear in the
reduced graph for fixed ``w``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.core.solvers.base import SolverDecision, SpeculationSolver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mcssapre.reduction import ReducedGraph
    from repro.profiles.profile import ExecutionProfile

#: Largest elimination width the DP will accept.  2^(w+1) table rows per
#: elimination keeps the "linear time" promise honest; reduced graphs
#: wider than this go to the flow network instead.
DEFAULT_MAX_WIDTH = 8

_S, _T = 0, 1


class _Factor:
    """A cost table over a tuple of Φ variables (scaled lexicographic)."""

    __slots__ = ("vars", "values", "alive")

    def __init__(self, variables: tuple[int, ...], values: list[int]):
        self.vars = variables
        self.values = values
        self.alive = True


class LospreSolver(SpeculationSolver):
    """Width-bounded tree-decomposition DP for the placement problem."""

    name = "lospre"

    def __init__(self, max_width: int = DEFAULT_MAX_WIDTH) -> None:
        self.max_width = max_width

    def solve(
        self, reduced: "ReducedGraph", profile: "ExecutionProfile"
    ) -> SolverDecision | None:
        if reduced.is_empty():  # nothing to place (mirrors build_efg)
            return None

        phis = reduced.phis
        n = len(phis)
        index = {id(phi): i for i, phi in enumerate(phis)}
        # Lexicographic (cut value, |T|) as one exact integer: every Φ
        # contributes at most 1 to |T|, so scaling cost by n+1 keeps the
        # two components from interfering.
        scale = n + 1

        unary = [[0, 0] for _ in range(n)]  # unary[i][side] cost
        for i in range(n):
            unary[i][_T] += 1  # the |T| tie-break term
        for operand in reduced.bottom_operands:
            # source ∈ S: cut iff the operand's Φ lands in T.
            unary[index[id(operand.phi)]][_T] += profile.node(operand.pred) * scale
        for edge in reduced.type2_edges:
            # occurrence forced into T: cut iff the defining Φ stays in S.
            unary[index[id(edge.source_phi)]][_S] += (
                profile.node(edge.occ.label) * scale
            )

        # Binary factors from type 1 edges.  Self-loops can never cross a
        # partition and zero-weight edges never change the optimum (they
        # contribute no cost and no residual arc), so both are dropped —
        # fewer adjacencies, smaller width, identical placement.
        pair_cost: dict[tuple[int, int], list[int]] = {}
        for edge in reduced.type1_edges:
            a = index[id(edge.source_phi)]
            b = index[id(edge.target_phi)]
            weight = profile.node(edge.operand.pred) * scale
            if a == b or weight == 0:
                continue
            lo, hi = (a, b) if a < b else (b, a)
            table = pair_cost.setdefault((lo, hi), [0, 0, 0, 0])
            # Row index: bit0 = lo's side, bit1 = hi's side.  Cut iff the
            # edge's source is S and its target is T.
            if a < b:
                table[_S | (_T << 1)] += weight  # a=S, b=T
            else:
                table[_T | (_S << 1)] += weight  # b=T, a=S

        factors = [_Factor((i,), unary[i]) for i in range(n)]
        for (lo, hi), table in sorted(pair_cost.items()):
            factors.append(_Factor((lo, hi), table))

        assignment = self._eliminate(n, factors)
        if assignment is None:
            return None
        width, total, sides = assignment

        # Translate the partition into the same side effects and decision
        # shape as solve_min_cut: clear every candidate flag, then set the
        # crossing edges' payloads.
        decision = SolverDecision(
            solver=self.name,
            cut_value=total // scale,
            nodes=2 + n + len(reduced.spr_occs),
            edges=(
                len(reduced.bottom_operands)
                + len(reduced.type1_edges)
                + 2 * len(reduced.type2_edges)
            ),
            width=width,
        )
        for operand in reduced.bottom_operands:
            operand.insert = False
        for edge in reduced.type1_edges:
            edge.operand.insert = False
        for operand in reduced.bottom_operands:
            if sides[index[id(operand.phi)]] == _T:
                operand.insert = True
                decision.insert_operands.append(operand)
        for edge in reduced.type1_edges:
            a = index[id(edge.source_phi)]
            b = index[id(edge.target_phi)]
            if sides[a] == _S and sides[b] == _T:
                edge.operand.insert = True
                decision.insert_operands.append(edge.operand)
        for edge in reduced.type2_edges:
            if sides[index[id(edge.source_phi)]] == _S:
                decision.in_place_occs.append(edge.occ)
        return decision

    def _eliminate(
        self, n: int, factors: list[_Factor]
    ) -> tuple[int, int, list[int]] | None:
        """Bucket elimination + backtracking.

        Returns ``(width, objective, sides)`` or ``None`` on width
        overflow.  ``sides[i]`` is 0 (S) or 1 (T) for Φ ``i``.
        """
        by_var: dict[int, list[_Factor]] = {i: [] for i in range(n)}
        adj: dict[int, set[int]] = {i: set() for i in range(n)}
        for factor in factors:
            for v in factor.vars:
                by_var[v].append(factor)
            if len(factor.vars) == 2:
                a, b = factor.vars
                adj[a].add(b)
                adj[b].add(a)

        # Min-degree with a lazy heap: ``adj[u]`` is kept equal to u's
        # adjacency *among remaining vars*, so an entry ``(d, u)`` is
        # current iff ``d == len(adj[u])``; stale entries are skipped on
        # pop.  Same (degree, index) order as a linear scan would pick,
        # but O(n·w·log n) instead of O(n²) — this is where the solver's
        # linear-time promise lives or dies.
        remaining = set(range(n))
        heap = [(len(adj[u]), u) for u in range(n)]
        heapq.heapify(heap)
        backtrack: list[tuple[int, tuple[int, ...], list[int]]] = []
        constant = 0
        width = 0
        while remaining:
            degree, v = heapq.heappop(heap)
            if v not in remaining or degree != len(adj[v]):
                continue  # stale: v eliminated or its degree changed
            rest = tuple(sorted(adj[v]))
            if len(rest) > self.max_width:
                return None
            width = max(width, len(rest))
            scope = (v, *rest)
            position = {u: p for p, u in enumerate(scope)}

            bucket = [f for f in by_var[v] if f.alive]
            for factor in bucket:
                factor.alive = False
            # Per-factor bit gather: scope assignment row -> factor row.
            gathers = [
                [position[u] for u in factor.vars] for factor in bucket
            ]

            size = 1 << len(scope)
            joined = [0] * size
            for row in range(size):
                total = 0
                for factor, gather in zip(bucket, gathers):
                    sub = 0
                    for bit, pos in enumerate(gather):
                        sub |= ((row >> pos) & 1) << bit
                    total += factor.values[sub]
                joined[row] = total

            half = 1 << len(rest)
            message = [0] * half
            choice = [0] * half
            for rest_row in range(half):
                keep_s = joined[rest_row << 1]
                keep_t = joined[(rest_row << 1) | 1]
                if keep_t < keep_s:
                    message[rest_row] = keep_t
                    choice[rest_row] = _T
                else:  # ties prefer S; on the optimal path ties cannot
                    message[rest_row] = keep_s  # occur (the optimum is
                    choice[rest_row] = _S  # a unique partition).
            backtrack.append((v, rest, choice))

            remaining.discard(v)
            if rest:
                new_factor = _Factor(rest, message)
                factors.append(new_factor)
                for u in rest:
                    by_var[u].append(new_factor)
                    adj[u].discard(v)
                for i, a in enumerate(rest):
                    for b in rest[i + 1 :]:
                        adj[a].add(b)
                        adj[b].add(a)
                for u in rest:
                    heapq.heappush(heap, (len(adj[u]), u))
            else:
                constant += message[0]

        sides = [0] * n
        for v, rest, choice in reversed(backtrack):
            rest_row = 0
            for bit, u in enumerate(rest):
                rest_row |= sides[u] << bit
            sides[v] = choice[rest_row]
        return width, constant, sides
