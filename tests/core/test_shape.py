"""CFG shape classification and the ``auto`` solver-selection policy.

Pins the classifier's verdicts on a fixed corpus: structured control
flow (straight line, diamonds, loop nests) is accepted with small
constant width; dense flowgraphs (grids) and dense irreducible tangles
exceed the bound and are routed to the min cut.  The property test
closes the loop: ``auto`` may never change the code the pipeline emits.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.core.solvers.shape import (
    DEFAULT_CFG_WIDTH_BOUND,
    cfg_elimination_width,
    classify_cfg,
    select_solver,
)
from repro.ir.builder import FunctionBuilder
from repro.passes.compiler import compile as compile_func
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from tests.conftest import (
    as_ssa,
    build_diamond,
    build_straightline,
    build_while_loop,
)


def build_grid(k: int):
    """A k x k grid CFG: every interior block branches right or down.

    Grids are the canonical unbounded-treewidth family — planar, fully
    reducible, yet width ~k under any elimination order.
    """
    b = FunctionBuilder("grid", params=["c"])
    b.block("entry")
    b.jump("g_0_0")
    for i in range(k):
        for j in range(k):
            b.block(f"g_{i}_{j}")
            down = f"g_{i + 1}_{j}" if i + 1 < k else None
            right = f"g_{i}_{j + 1}" if j + 1 < k else None
            if down and right:
                b.branch("c", down, right)
            elif down or right:
                b.jump(down or right)
            else:
                b.ret("c")
    return b.build()


def build_tangle(m: int, stride: int):
    """A dense irreducible flowgraph: block i branches to i+1 and
    i+stride, both mod m — the wraparound chords enter every cycle at
    multiple points, so no node dominates the loops it sits in."""
    b = FunctionBuilder("tangle", params=["c"])
    b.block("entry")
    b.jump("h0")
    for i in range(m):
        b.block(f"h{i}")
        if i == m - 1:
            b.ret("c")
        else:
            b.branch("c", f"h{(i + 1) % m}", f"h{(i + stride) % m}")
    return b.build()


def build_small_irreducible():
    """The textbook two-entry loop {a, b} — irreducible but tiny."""
    b = FunctionBuilder("irr", params=["c"])
    b.block("entry")
    b.branch("c", "a", "bb")
    b.block("a")
    b.jump("bb")
    b.block("bb")
    b.branch("c", "a", "exit")
    b.block("exit")
    b.ret("c")
    return b.build()


class TestEliminationWidth:
    def test_path_graph_has_width_one(self):
        adj = {0: {1}, 1: {0, 2}, 2: {1}}
        assert cfg_elimination_width(adj, 8) == (True, 1)

    def test_triangle_has_width_two(self):
        adj = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
        assert cfg_elimination_width(adj, 8) == (True, 2)

    def test_bound_overflow_reports_witness_width(self):
        clique = {u: {v for v in range(6) if v != u} for u in range(6)}
        ok, width = cfg_elimination_width(clique, 2)
        assert not ok and width == 5  # the witness scope that overflowed

    def test_deterministic(self):
        func = prepare(build_while_loop())
        assert classify_cfg(func) == classify_cfg(func)


class TestPinnedCorpus:
    """The classifier's verdict on each corpus shape, width included."""

    @pytest.mark.parametrize("build, accepted, width", [
        (build_straightline, True, 0),
        (build_diamond, True, 2),
        (build_while_loop, True, 1),       # raw while shape, no restructure
        (build_small_irreducible, True, 2),
        (lambda: build_grid(3), True, 3),
    ])
    def test_structured_shapes_accepted(self, build, accepted, width):
        report = classify_cfg(prepare(build(), restructure=False))
        assert report.accepted is accepted
        assert report.width == width
        assert report.solver_name() == "lospre"
        assert str(report.width) in report.reason

    @pytest.mark.parametrize("func", [
        build_grid(10),          # dense, reducible
        build_tangle(100, 10),   # dense, irreducible
    ])
    def test_dense_shapes_rejected(self, func):
        report = classify_cfg(func)
        assert report.accepted is False
        assert report.width > DEFAULT_CFG_WIDTH_BOUND
        assert report.solver_name() == "mincut"

    def test_while_loop_prepared_width(self):
        # prepare() restructures to do-while and splits critical edges;
        # the classifier must see the shape the pipeline compiles.
        report = classify_cfg(prepare(build_while_loop()))
        assert report.accepted and report.width == 2
        assert report.blocks == 9


class TestSelectSolver:
    def test_forced_mincut_skips_classification(self):
        assert select_solver(build_diamond(), "mincut") == ("mincut", None)

    def test_forced_lospre_still_reports_shape(self):
        name, report = select_solver(build_grid(10), "lospre")
        assert name == "lospre"  # forced: the per-class DP is the net
        assert report is not None and report.accepted is False

    def test_auto_picks_by_shape(self):
        name, report = select_solver(prepare(build_diamond()), "auto")
        assert name == "lospre" and report.accepted
        name, report = select_solver(build_grid(10), "auto")
        assert name == "mincut" and not report.accepted

    def test_unknown_request_raises(self):
        with pytest.raises(ValueError, match="unknown solver"):
            select_solver(build_diamond(), "dinic")

    def test_auto_rejection_recorded_by_driver(self):
        grid = build_grid(10)
        profile = run_function(copy.deepcopy(grid), [1]).profile
        ssa = as_ssa(grid)
        result = run_mc_ssapre(ssa, profile, solver="auto")
        assert result.solver_requested == "auto"
        assert result.solver_used == "mincut"
        assert result.shape_width is not None
        assert result.shape_width > DEFAULT_CFG_WIDTH_BOUND


class TestAutoNeverChangesCode:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_auto_equals_forced_mincut(self, seed):
        spec = ProgramSpec(name="shape", seed=seed, max_depth=3)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        prepared = prepare(prog.func, restructure=False)
        train = run_function(copy.deepcopy(prepared), args)

        forced = compile_func(
            prepared, "mc-ssapre", train.profile, solver="mincut"
        )
        auto = compile_func(
            prepared, "mc-ssapre", train.profile, solver="auto"
        )
        assert str(auto.func) == str(forced.func)
        ref_forced = run_function(copy.deepcopy(forced.func), args)
        ref_auto = run_function(copy.deepcopy(auto.func), args)
        assert ref_auto.observable() == ref_forced.observable()
        assert ref_auto.dynamic_cost == ref_forced.dynamic_cost
