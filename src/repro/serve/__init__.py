"""Content-addressed compile-and-run serving layer.

The package turns the experiment pipeline into a service: requests carry
a source program, a :class:`~repro.pipeline.PipelineConfig` and an input
vector; compiled artifacts are cached under structural content addresses
(:mod:`repro.serve.keys`) in a two-tier store (:mod:`repro.serve.store`),
concurrent identical requests coalesce onto one compile
(:mod:`repro.serve.server`), everything is observable
(:mod:`repro.serve.metrics`), and the adaptation tier keeps served
artifacts matched to live traffic (:mod:`repro.serve.adapt`).
``python -m repro.serve`` is the CLI; ``docs/SERVING.md`` is the design
document.
"""

from repro.serve.adapt import AdaptConfig
from repro.serve.keys import (
    KEY_SCHEMA,
    artifact_key,
    function_fingerprint,
    structural_key,
)
from repro.serve.metrics import METRICS_SCHEMA, ServeMetrics
from repro.serve.server import (
    CompileRequest,
    CompileService,
    ServeResponse,
    build_artifact,
    execute_artifact,
)
from repro.serve.store import Artifact, ArtifactStore, DiskStore, MemoryStore

__all__ = [
    "KEY_SCHEMA",
    "METRICS_SCHEMA",
    "AdaptConfig",
    "Artifact",
    "ArtifactStore",
    "CompileRequest",
    "CompileService",
    "DiskStore",
    "MemoryStore",
    "ServeMetrics",
    "ServeResponse",
    "artifact_key",
    "build_artifact",
    "execute_artifact",
    "function_fingerprint",
    "structural_key",
]
