"""Max-flow algorithms over :class:`~repro.flownet.network.FlowNetwork`.

Dinic's algorithm is the default (the paper quotes an O(V²·√E)-class
min-cut as acceptable because EFGs are tiny; Dinic is comfortably inside
that envelope).  Edmonds–Karp is kept as an independent implementation for
differential testing.

Both operate on a shared residual representation so the cut-extraction
code in :mod:`repro.flownet.mincut` works with either.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.flownet.network import FlowNetwork


@dataclass
class Residual:
    """Adjacency-array residual graph.

    ``twin[i]`` is the index of arc *i*'s reverse arc; original network
    edges map to even arc indices in insertion order (``arc_of_edge``).
    """

    node_index: dict
    nodes: list
    head: list[int]
    next_arc: list[int]
    to: list[int]
    cap: list[int]
    arc_of_edge: list[int]
    _arcs_out: list[list[int]] | None = field(
        default=None, repr=False, compare=False
    )

    def arcs_out(self) -> list[list[int]]:
        """Per-node outgoing arc ids, built once and shared thereafter.

        The arc *topology* is fixed after :func:`build_residual` — flow
        augmentation only mutates ``cap`` — so one index serves the BFS
        of both solvers and both reachability helpers.  The per-node
        order matches ``head``/``next_arc`` traversal, keeping results
        deterministic and identical to linked-list iteration.
        """
        index = self._arcs_out
        if index is None:
            index = [[] for _ in self.nodes]
            for node, arcs in enumerate(index):
                arc = self.head[node]
                while arc != -1:
                    arcs.append(arc)
                    arc = self.next_arc[arc]
            self._arcs_out = index
        return index

    def residual_reachable_from_source(self, source_index: int) -> set[int]:
        """Nodes reachable from the source through positive residual arcs."""
        arcs_out = self.arcs_out()
        seen = {source_index}
        queue = deque([source_index])
        while queue:
            node = queue.popleft()
            for arc in arcs_out[node]:
                if self.cap[arc] > 0 and self.to[arc] not in seen:
                    seen.add(self.to[arc])
                    queue.append(self.to[arc])
        return seen

    def residual_reaching_sink(self, sink_index: int) -> set[int]:
        """Nodes that can reach the sink through positive residual arcs.

        This is the *Reverse Labeling Procedure* of Ford and Fulkerson
        [7] the paper applies in step 7: label backwards from the sink
        along arcs with residual capacity.
        """
        # Arc u->v with cap>0 lets u reach whatever v reaches; we need the
        # set {u : u ->* sink}.  Walk backwards: v is labelled; find arcs
        # into v with positive residual capacity.  The reverse of arc i is
        # twin(i) = i ^ 1, so "arc into v with cap>0" = arc out of v whose
        # twin has cap>0.
        arcs_out = self.arcs_out()
        seen = {sink_index}
        queue = deque([sink_index])
        while queue:
            node = queue.popleft()
            for arc in arcs_out[node]:
                if self.cap[arc ^ 1] > 0 and self.to[arc] not in seen:
                    seen.add(self.to[arc])
                    queue.append(self.to[arc])
        return seen


def build_residual(network: FlowNetwork) -> Residual:
    network.freeze()
    node_index: dict = {}
    nodes: list = []
    for node in network.nodes:
        node_index[node] = len(nodes)
        nodes.append(node)
    head = [-1] * len(nodes)
    next_arc: list[int] = []
    to: list[int] = []
    cap: list[int] = []
    arc_of_edge: list[int] = []

    def add_arc(u: int, v: int, c: int) -> None:
        next_arc.append(head[u])
        head[u] = len(to)
        to.append(v)
        cap.append(c)

    for edge in network.edges:
        u = node_index[edge.src]
        v = node_index[edge.dst]
        arc_of_edge.append(len(to))
        add_arc(u, v, edge.capacity)
        add_arc(v, u, 0)
    return Residual(
        node_index=node_index,
        nodes=nodes,
        head=head,
        next_arc=next_arc,
        to=to,
        cap=cap,
        arc_of_edge=arc_of_edge,
    )


def dinic_max_flow(network: FlowNetwork) -> tuple[int, Residual]:
    """Dinic's blocking-flow algorithm; returns (flow value, residual)."""
    res = build_residual(network)
    arcs_out = res.arcs_out()
    source = res.node_index[network.source]
    sink = res.node_index[network.sink]
    n = len(res.nodes)
    total = 0

    while True:
        # BFS level graph.
        level = [-1] * n
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in arcs_out[u]:
                v = res.to[arc]
                if res.cap[arc] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[sink] < 0:
            return total, res

        # DFS blocking flow with current-arc optimisation.
        current = [0] * n

        def dfs(u: int, pushed: int) -> int:
            if u == sink:
                return pushed
            row = arcs_out[u]
            while current[u] < len(row):
                arc = row[current[u]]
                v = res.to[arc]
                if res.cap[arc] > 0 and level[v] == level[u] + 1:
                    flow = dfs(v, min(pushed, res.cap[arc]))
                    if flow > 0:
                        res.cap[arc] -= flow
                        res.cap[arc ^ 1] += flow
                        return flow
                current[u] += 1
            return 0

        import sys

        limit = sys.getrecursionlimit()
        if n + 50 > limit:
            sys.setrecursionlimit(n + 50)
        while True:
            pushed = dfs(source, _INF)
            if pushed == 0:
                break
            total += pushed


_INF = 1 << 62


def edmonds_karp_max_flow(network: FlowNetwork) -> tuple[int, Residual]:
    """Edmonds–Karp (BFS augmenting paths); differential-test oracle."""
    res = build_residual(network)
    arcs_out = res.arcs_out()
    source = res.node_index[network.source]
    sink = res.node_index[network.sink]
    n = len(res.nodes)
    total = 0
    while True:
        parent_arc = [-1] * n
        parent_arc[source] = -2
        queue = deque([source])
        found = False
        while queue and not found:
            u = queue.popleft()
            for arc in arcs_out[u]:
                v = res.to[arc]
                if res.cap[arc] > 0 and parent_arc[v] == -1:
                    parent_arc[v] = arc
                    if v == sink:
                        found = True
                        break
                    queue.append(v)
        if not found:
            return total, res
        # Find bottleneck.
        bottleneck = _INF
        v = sink
        while v != source:
            arc = parent_arc[v]
            bottleneck = min(bottleneck, res.cap[arc])
            v = res.to[arc ^ 1]
        v = sink
        while v != source:
            arc = parent_arc[v]
            res.cap[arc] -= bottleneck
            res.cap[arc ^ 1] += bottleneck
            v = res.to[arc ^ 1]
        total += bottleneck
