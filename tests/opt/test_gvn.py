"""Tests for global value numbering."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.opt.gvn import global_value_numbering
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.ssa_verifier import verify_ssa
from tests.conftest import as_ssa

AB = ("add", ("var", "a"), ("var", "b"))


def test_requires_ssa(straightline):
    with pytest.raises(ValueError):
        global_value_numbering(straightline)


def test_dominated_recomputation_replaced(straightline):
    ssa = as_ssa(straightline)
    result = global_value_numbering(ssa)
    assert result.replaced == 1
    verify_ssa(ssa)
    run = run_function(ssa, [2, 3])
    assert run.return_value == 25
    assert run.expr_counts.get(AB, 0) == 1


def test_sees_through_copies():
    """GVN's value-based advantage over lexical PRE."""
    b = FunctionBuilder("f", params=["u", "v"])
    b.block("entry")
    b.copy("a", "u")
    b.copy("b", "v")
    b.assign("x", "add", "a", "b")
    b.assign("y", "add", "u", "v")   # same value, different names
    b.assign("r", "mul", "x", "y")
    b.ret("r")
    ssa = as_ssa(b.build())
    result = global_value_numbering(ssa)
    assert result.replaced == 1
    run = run_function(ssa, [3, 4])
    assert run.return_value == 49


def test_commutative_canonicalisation():
    b = FunctionBuilder("f", params=["u", "v"])
    b.block("entry")
    b.assign("x", "add", "u", "v")
    b.assign("y", "add", "v", "u")   # commuted: same value
    b.assign("s", "sub", "u", "v")
    b.assign("t", "sub", "v", "u")   # NOT commutative: different value
    b.output("x")
    b.output("y")
    b.output("s")
    b.output("t")
    b.ret()
    ssa = as_ssa(b.build())
    result = global_value_numbering(ssa)
    assert result.replaced == 1  # only the commuted add folds
    run = run_function(ssa, [7, 2])
    assert run.output == [9, 9, 5, -5]


def test_no_replacement_across_siblings(diamond):
    """Dominance-scoped: a computation in one arm cannot serve the other
    arm or the join — that is PRE's job, not GVN's."""
    ssa = as_ssa(diamond)
    result = global_value_numbering(ssa)
    assert result.replaced == 0


def test_constant_value_numbers_shared():
    b = FunctionBuilder("f")
    b.block("entry")
    b.copy("x", 5)
    b.copy("y", 5)
    b.assign("p", "add", "x", 1)
    b.assign("q", "add", "y", 1)   # same value number chain
    b.output("p")
    b.output("q")
    b.ret()
    ssa = as_ssa(b.build())
    result = global_value_numbering(ssa)
    assert result.replaced == 1


def test_phi_with_identical_inputs_folded():
    b = FunctionBuilder("f", params=["u", "c"])
    b.block("entry")
    b.branch("c", "l", "r")
    b.block("l")
    b.copy("x", "u")
    b.jump("j")
    b.block("r")
    b.copy("x", "u")
    b.jump("j")
    b.block("j")
    b.assign("y", "add", "u", 1)
    b.assign("z", "add", "x", 1)   # x == u by value through the phi
    b.output("y")
    b.output("z")
    b.ret()
    ssa = as_ssa(b.build())
    result = global_value_numbering(ssa)
    assert result.phis_folded >= 1
    assert result.replaced == 1


def test_version_kill_prevents_folding():
    b = FunctionBuilder("f", params=["a", "b"])
    b.block("entry")
    b.assign("x", "add", "a", "b")
    b.assign("a", "add", "a", 1)
    b.assign("y", "add", "a", "b")   # different a version: keep
    b.assign("r", "mul", "x", "y")
    b.ret("r")
    ssa = as_ssa(b.build())
    result = global_value_numbering(ssa)
    assert result.replaced == 0


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=40_000))
def test_semantics_preserved(seed):
    spec = ProgramSpec(name="gvn", seed=seed, max_depth=2)
    prog = generate_program(spec)
    construct_ssa(prog.func)
    args = random_args(spec, 1)
    expected = run_function(copy.deepcopy(prog.func), args)
    global_value_numbering(prog.func)
    verify_ssa(prog.func)
    after = run_function(prog.func, args)
    assert after.observable() == expected.observable()
    assert after.dynamic_cost <= expected.dynamic_cost


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=40_000))
def test_gvn_then_pre_never_worse(seed):
    """GVN before MC-SSAPRE composes cleanly and never loses."""
    from repro.core.mcssapre.driver import run_mc_ssapre
    from repro.pipeline import prepare
    from repro.ssa.destruct import destruct_ssa

    spec = ProgramSpec(name="gvnp", seed=seed, max_depth=2)
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    args = random_args(spec, 1)
    train = run_function(prepared, args)

    def compile_cost(with_gvn: bool) -> int:
        work = copy.deepcopy(prepared)
        construct_ssa(work)
        if with_gvn:
            global_value_numbering(work)
        run_mc_ssapre(work, train.profile.nodes_only(), validate=True)
        destruct_ssa(work)
        out = run_function(work, args)
        assert out.observable() == train.observable()
        return out.dynamic_cost

    assert compile_cost(True) <= compile_cost(False)
