"""Live-variable analysis over base variable names.

Used to prune SSA phi placement (a phi is only placed where the variable is
live-in) and by the lifetime-measurement utilities of the benchmark
harness.  Works on SSA and non-SSA programs alike; on SSA programs the
analysis can optionally distinguish versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Assign
from repro.ir.values import Var


@dataclass
class Liveness:
    """``live_in``/``live_out`` per block label, over variable keys."""

    live_in: dict[str, set]
    live_out: dict[str, set]


def _var_key(var: Var, by_version: bool):
    return (var.name, var.version) if by_version else var.name


def compute_liveness(func: Function, by_version: bool = False) -> Liveness:
    """Iterative backward liveness.

    Phi semantics: a phi's target is defined at the head of its block; a
    phi's argument for predecessor ``P`` is live-out of ``P`` (it travels
    along the edge), so arguments are added directly to the predecessor's
    ``live_out`` rather than to this block's ``live_in``.
    """
    cfg = CFG(func)
    labels = cfg.reverse_postorder()

    use: dict[str, set] = {}
    defs: dict[str, set] = {}
    phi_uses_from: dict[str, set] = {label: set() for label in labels}
    for label in labels:
        block = func.blocks[label]
        used: set = set()
        defined: set = set()
        for phi in block.phis:
            defined.add(_var_key(phi.target, by_version))
        for stmt in block.body:
            for operand in stmt.used_operands():
                if isinstance(operand, Var):
                    key = _var_key(operand, by_version)
                    if key not in defined:
                        used.add(key)
            if isinstance(stmt, Assign):
                defined.add(_var_key(stmt.target, by_version))
        for operand in block.terminator.used_operands():
            if isinstance(operand, Var):
                key = _var_key(operand, by_version)
                if key not in defined:
                    used.add(key)
        use[label] = used
        defs[label] = defined
        for succ in cfg.successors(label):
            if succ not in func.blocks:
                continue
            for phi in func.blocks[succ].phis:
                arg = phi.args.get(label)
                if isinstance(arg, Var):
                    phi_uses_from[label].add(_var_key(arg, by_version))

    live_in = {label: set() for label in labels}
    live_out = {label: set() for label in labels}
    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            out = set(phi_uses_from[label])
            for succ in cfg.successors(label):
                if succ in live_in:
                    out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return Liveness(live_in=live_in, live_out=live_out)
