"""Regeneration of the paper's Figures 9, 10 and 11 (text rendering).

* **Figure 9 / Figure 10** — the Table 1 / Table 2 data as bar charts of
  running time normalised to safe SSAPRE = 1.0 (one group of three bars
  per benchmark).
* **Figure 11** — the distribution of EFG sizes over all 29 benchmarks:
  a histogram of node counts plus the cumulative percentage curve, with
  the paper's headline statistics (minimum size 4, share of EFGs at
  exactly 4 nodes, cumulative share ≤ 10/50/100 nodes).

Everything renders as plain text so the harness has no plotting
dependency; each figure also exposes its raw series for tests and for
anyone who wants to replot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.tables import Table, TableRow


@dataclass
class BarChart:
    """Normalised running-time chart (Figures 9 and 10)."""

    title: str
    rows: list[TableRow]

    def series(self) -> list[tuple[str, float, float, float]]:
        """(benchmark, A=1.0, B/A, C/A) per row."""
        out = []
        for row in self.rows:
            a = row.a_cost or 1
            out.append((row.benchmark, 1.0, row.b_cost / a, row.c_cost / a))
        return out

    def render(self, width: int = 40) -> str:
        lines = [self.title, "=" * max(len(self.title), 20)]
        lines.append(f"{'':14} normalised running time (A. SSAPRE = 1.0)")
        for name, a, b, c in self.series():
            peak = max(a, b, c, 1.0)
            for label, value in (("A", a), ("B", b), ("C", c)):
                bar = "#" * max(1, round(value / peak * width))
                lines.append(f"{name:>12} {label} |{bar:<{width}}| {value:.3f}")
            lines.append("")
        return "\n".join(lines)


def figure9(table1: Table) -> BarChart:
    """Paper Figure 9: CINT2006 normalised performance comparison."""
    return BarChart(
        title="Figure 9: CINT2006 performance, normalised to safe SSAPRE",
        rows=table1.rows,
    )


def figure10(table2: Table) -> BarChart:
    """Paper Figure 10: CFP2006 normalised performance comparison."""
    return BarChart(
        title="Figure 10: CFP2006 performance, normalised to safe SSAPRE",
        rows=table2.rows,
    )


@dataclass
class EFGSizeDistribution:
    """Figure 11: histogram + cumulative percentages of EFG sizes."""

    sizes: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.sizes)

    def histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for size in self.sizes:
            hist[size] = hist.get(size, 0) + 1
        return dict(sorted(hist.items()))

    def share_at(self, size: int) -> float:
        if not self.sizes:
            return 0.0
        return sum(1 for s in self.sizes if s == size) / self.total

    def cumulative_at_most(self, size: int) -> float:
        if not self.sizes:
            return 0.0
        return sum(1 for s in self.sizes if s <= size) / self.total

    @property
    def minimum(self) -> int:
        return min(self.sizes) if self.sizes else 0

    @property
    def maximum(self) -> int:
        return max(self.sizes) if self.sizes else 0

    def render(self, width: int = 50) -> str:
        hist = self.histogram()
        if not hist:
            return "Figure 11: no EFGs were formed"
        peak = max(hist.values())
        lines = [
            "Figure 11: EFG size distribution over the full benchmark suite",
            "=" * 62,
            f"total EFGs: {self.total}   min size: {self.minimum}   "
            f"max size: {self.maximum}",
            "",
            f"{'nodes':>6} {'count':>7}  {'cum%':>7}",
        ]
        # Bucket the tail so the chart stays readable.
        buckets: list[tuple[str, int, float]] = []
        for size in sorted(hist):
            if size <= 12:
                buckets.append(
                    (str(size), hist[size], self.cumulative_at_most(size))
                )
        for lo, hi in ((13, 20), (21, 50), (51, 100), (101, 10**9)):
            count = sum(c for s, c in hist.items() if lo <= s <= hi)
            if count:
                label = f"{lo}-{hi}" if hi < 10**9 else f">{lo - 1}"
                buckets.append((label, count, self.cumulative_at_most(hi)))
        for label, count, cum in buckets:
            bar = "#" * max(1, round(count / peak * width)) if count else ""
            lines.append(f"{label:>6} {count:>7}  {cum:>6.1%} |{bar}")
        lines.append("")
        lines.append(
            f"share of EFGs with exactly 4 nodes: {self.share_at(4):.1%}"
        )
        for cutoff in (10, 50, 100):
            lines.append(
                f"EFGs with <= {cutoff} nodes: "
                f"{self.cumulative_at_most(cutoff):.2%}"
            )
        return "\n".join(lines)


def figure11(tables: list[Table]) -> EFGSizeDistribution:
    """Collect EFG sizes recorded during the Table 1 + Table 2 runs."""
    dist = EFGSizeDistribution()
    for table in tables:
        for row in table.rows:
            dist.sizes.extend(row.efg_sizes)
    return dist
