"""repro.passes — pass manager, cached analyses, observability.

See ``docs/PASSES.md`` for the Pass/AnalysisPass contract, the
invalidation rules, and the PassReport schema.
"""

from repro.passes.analyses import (
    CFG_ANALYSIS,
    COMPILED_ANALYSIS,
    DOMFRONTIER_ANALYSIS,
    DOMTREE_ANALYSIS,
    LIVENESS_ANALYSIS,
    LIVENESS_SSA_ANALYSIS,
    LOOPS_ANALYSIS,
)
from repro.passes.base import (
    PRESERVE_ALL,
    PRESERVE_CFG,
    AnalysisPass,
    Pass,
    PassError,
    PassVerificationError,
    StaleAnalysisError,
)
from repro.passes.cache import AnalysisCache, AnalysisHandle
from repro.passes.compiler import (
    VARIANTS,
    CompiledFunction,
    build_pipeline,
    compile,
    resolve_stage,
)
from repro.passes.manager import (
    PassContext,
    PassExecution,
    PassManager,
    PassReport,
)

__all__ = [
    "AnalysisCache",
    "AnalysisHandle",
    "AnalysisPass",
    "CFG_ANALYSIS",
    "COMPILED_ANALYSIS",
    "CompiledFunction",
    "DOMFRONTIER_ANALYSIS",
    "DOMTREE_ANALYSIS",
    "LIVENESS_ANALYSIS",
    "LIVENESS_SSA_ANALYSIS",
    "LOOPS_ANALYSIS",
    "PRESERVE_ALL",
    "PRESERVE_CFG",
    "Pass",
    "PassContext",
    "PassError",
    "PassExecution",
    "PassManager",
    "PassReport",
    "PassVerificationError",
    "StaleAnalysisError",
    "VARIANTS",
    "build_pipeline",
    "compile",
    "resolve_stage",
]
