"""The measurements behind ``BENCH.json``.

Every benchmark here is deterministic in everything but the clock: the
programs come from the seeded generator suite
(:mod:`repro.bench.workloads`), the flow networks from a seeded layered
generator, and every timed section is re-run ``repeat`` times with the
minimum reported (the standard way to suppress scheduler noise on a
shared machine).
"""

from __future__ import annotations

import platform
import time
from collections import Counter
from dataclasses import dataclass

from repro.bench.workloads import (
    CFP2006,
    CINT2006,
    COMPOSITE,
    MEMORY,
    load_workload,
)
from repro.core.solvers.base import SpeculationSolver
from repro.core.solvers.lospre import LospreSolver
from repro.core.solvers.mincut import MinCutSolver
from repro.core.worklist import DEFAULT_ITERATIVE_ROUNDS
from repro.flownet.maxflow import dinic_max_flow, edmonds_karp_max_flow
from repro.flownet.network import FlowNetwork
from repro.passes.compiler import compile as compile_func
from repro.passes.stages import (
    ConstructSSAPass,
    DestructSSAPass,
    MCSSAPREPass,
)
from repro.pipeline import prepare
from repro.profiles.compiled import compile_function
from repro.profiles.interp import RunResult, run_function
from repro.profiles.probes import run_probed, try_place_probes
from repro.profiles.profile import ExecutionProfile

#: Version of the BENCH.json layout (documented in docs/PERF.md).
#: v2 added the "iterative" table (one-shot vs rank-ordered iterative
#: MC-SSAPRE: compile time, rounds, dynamic-cost deltas).  v3 added the
#: "serving" section (cold vs warm artifact-cache throughput, hit-rate
#: and single-flight coalescing gates over :mod:`repro.serve`).  v4
#: added the "solver_scaling" section (lospre vs min-cut compile-time
#: and solve-time curves over a pinned CFG family, with exact-placement
#: and speedup gates), the ``solver`` knob on the compile section, the
#: ``cold_auto_s`` solver=auto cold-request latency in the serving
#: section, and fixed per-stage accounting so stage sums can no longer
#: exceed the compile wall total.  v5 added the serving section's
#: "adaptation" block: the online re-optimisation loop gated on
#: promotion, non-blocking drift recompiles, >=1 hot swap, and
#: post-swap bit-identity vs a from-scratch build (metrics schema 2).
#: v6 added the serving section's "cluster" block: the sharded
#: multi-process cluster driven open-loop, gated on aggregate RPS >=
#: 3x the single-process pin at 4 workers, a p99 latency bound, zero
#: mismatches, and a cross-process cold-key race compiling exactly
#: once (metrics schema 3), plus the closed-loop report's
#: latency/service_rps fields.  v7 added the "memory" section: the
#: MEMORY workload suite (array loads/stores under the alias model)
#: gated on interpreter-vs-compiled bit-parity and a compiled-engine
#: speedup floor, plus the pinned speculative-load-hoist case — a
#: strict dynamic-cost win for MC-SSAPRE over safe PRE on a
#: loop-invariant in-bounds load, and zero motion on its aliased twin.
#: v8 added the "profiling" section: minimum-coverage probe placement
#: over the CINT/CFP/MEMORY suites, gated on the spanning-tree probe
#: bound (probes <= |E|-|V|+1), bit-identical reconstructed profiles on
#: both engines, a >=2x counting-event reduction over full counting,
#: and the profile-quality study (exact vs reconstructed vs sampled vs
#: stale training profiles -> MC-SSAPRE dynamic-cost optimality delta,
#: with the reconstructed delta pinned to zero).
BENCH_SCHEMA_VERSION = 8

#: Step budget for the measured runs (matches the pipeline default).
MAX_STEPS = 5_000_000

#: The standard workload: first benchmarks of each family, in suite
#: order.  Small enough that the full suite runs in seconds, large
#: enough that the interpreter dispatch overhead dominates.
STANDARD_WORKLOADS = CINT2006[:3] + CFP2006[:3]
QUICK_WORKLOADS = (CINT2006[0], CFP2006[0])

#: (layers, width) of the scaling flow networks.
STANDARD_NETWORKS = ((6, 6), (10, 10), (14, 14))
QUICK_NETWORKS = ((4, 4), (6, 6))

#: Workloads for the iterative-vs-one-shot comparison: one benchmark per
#: classic family (where the iterative driver must change nothing) plus
#: the whole composite-chain suite (where second-order redundancy lives).
ITERATIVE_WORKLOADS = (CINT2006[0], CFP2006[0]) + COMPOSITE
QUICK_ITERATIVE_WORKLOADS = (CINT2006[0],) + COMPOSITE[:1]


def _best_of(repeat: int, fn) -> tuple[float, object]:
    """Minimum wall time over ``repeat`` calls, plus *that call's* result.

    Returning the fastest repeat's result keeps derived numbers (e.g. the
    per-stage wall times inside a pass report) consistent with the
    reported total: stage sums can never exceed the wall time they were
    measured under.  Mixing the minimum time with another repeat's report
    is how BENCH.json once showed 3.19s of mc-ssapre inside a 2.97s
    compile total.
    """
    best = float("inf")
    best_result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, best_result = elapsed, result
    return best, best_result


def runresult_mismatches(a: RunResult, b: RunResult) -> list[str]:
    """Field names on which two RunResults disagree (empty = identical)."""
    out = []
    if a.return_value != b.return_value:
        out.append("return_value")
    if a.output != b.output:
        out.append("output")
    if dict(a.profile.node_freq) != dict(b.profile.node_freq):
        out.append("profile.node_freq")
    if dict(a.profile.edge_freq) != dict(b.profile.edge_freq):
        out.append("profile.edge_freq")
    if a.dynamic_cost != b.dynamic_cost:
        out.append("dynamic_cost")
    if dict(a.expr_counts) != dict(b.expr_counts):
        out.append("expr_counts")
    if a.steps != b.steps:
        out.append("steps")
    return out


# ----------------------------------------------------------------------
# Execution: reference interpreter vs compiled back end.
# ----------------------------------------------------------------------

def bench_execution(names: tuple[str, ...], repeat: int) -> dict:
    rows = []
    total_ref = total_compiled = 0.0
    equivalent = True
    for name in names:
        workload = load_workload(name)
        prepared = prepare(workload.program.func)
        args = workload.ref_args

        lowering_s, program = _best_of(
            repeat, lambda: compile_function(prepared)
        )
        ref_s, ref_result = _best_of(
            repeat, lambda: run_function(prepared, args, max_steps=MAX_STEPS)
        )
        compiled_s, compiled_result = _best_of(
            repeat, lambda: program.run(args, max_steps=MAX_STEPS)
        )
        mismatches = runresult_mismatches(ref_result, compiled_result)
        equivalent = equivalent and not mismatches
        total_ref += ref_s
        total_compiled += compiled_s
        rows.append({
            "name": name,
            "family": workload.family,
            "steps": ref_result.steps,
            "dynamic_cost": ref_result.dynamic_cost,
            "reference_s": round(ref_s, 6),
            "compiled_s": round(compiled_s, 6),
            "lowering_s": round(lowering_s, 6),
            "speedup": round(ref_s / compiled_s, 2) if compiled_s else 0.0,
            "mismatches": mismatches,
        })
    return {
        "workloads": rows,
        "total_reference_s": round(total_ref, 6),
        "total_compiled_s": round(total_compiled, 6),
        "speedup": (
            round(total_ref / total_compiled, 2) if total_compiled else 0.0
        ),
        "equivalent": equivalent,
    }


# ----------------------------------------------------------------------
# Compile pipeline: per-stage wall time from the PassReport.
# ----------------------------------------------------------------------

def bench_compile(
    names: tuple[str, ...], repeat: int, solver: str = "mincut"
) -> dict:
    per_stage: dict[str, dict[str, float]] = {}
    total_s = 0.0
    for name in names:
        workload = load_workload(name)
        prepared = prepare(workload.program.func)
        profile = run_function(
            prepared, workload.train_args, max_steps=MAX_STEPS
        ).profile

        def compile_once():
            return compile_func(prepared, "mc-ssapre", profile, solver=solver)

        elapsed, compiled = _best_of(repeat, compile_once)
        total_s += elapsed
        # Stage times come from the same (fastest) repeat that produced
        # ``elapsed``, so their sum is bounded by the reported total.
        for execution in compiled.report.executions:
            stage = per_stage.setdefault(
                execution.name, {"calls": 0, "total_s": 0.0}
            )
            stage["calls"] += 1
            stage["total_s"] += execution.wall_time
    return {
        "variant": "mc-ssapre",
        "solver": solver,
        "functions": len(names),
        "total_s": round(total_s, 6),
        "per_stage": {
            name: {
                "calls": stage["calls"],
                "total_s": round(stage["total_s"], 6),
            }
            for name, stage in sorted(per_stage.items())
        },
    }


# ----------------------------------------------------------------------
# Memory: array workloads under the alias model + the pinned hoist case.
# ----------------------------------------------------------------------

MEMORY_WORKLOADS = MEMORY
QUICK_MEMORY_WORKLOADS = MEMORY[:1]

#: Compiled-engine speedup floor over the reference interpreter on the
#: memory suite (total interpreter seconds / total compiled seconds).
#: The compiled back end runs memory programs an order of magnitude
#: faster; 2x leaves ample headroom for a noisy shared CI machine.
MEMORY_MIN_SPEEDUP = 2.0

#: The pinned speculative-load-hoist case.  The load's index is a
#: constant in bounds for ``A`` (length 8), so the class is provably
#: non-trapping and MC-SSAPRE may speculate it; it sits under a branch
#: inside the loop, so it is *partially* redundant and safe PRE — for
#: which the head Φ is not down-safe (the skip and exit paths never
#: evaluate it) — must leave all dynamic loads in place.  Trained on
#: ``flag=1`` (the hot arm every iteration), MC-SSAPRE hoists the load
#: to the entry and wins strictly.
_HOIST_SOURCE = """
func memgold(n, flag) arrays(A: 8) {
entry:
  i = 0
  s = 0
  jump head
head:
  c = lt i, n
  br c, body, exit
body:
  br flag, hot, skip
hot:
  t = load A, 5
  s = add s, t
  jump latch
skip:
  s = add s, 1
  jump latch
latch:
  i = add i, 1
  jump head
exit:
  ret s
}
"""

#: The aliased twin: an every-iteration ``store A, i, s`` in the latch
#: may-aliases ``load A, 5`` (variable vs constant index, same array),
#: killing the class on the loop's back edge — no variant may move the
#: load, so all load counts and dynamic costs must equal the control's.
_BLOCKED_SOURCE = _HOIST_SOURCE.replace(
    "i = add i, 1", "store A, i, s\n  i = add i, 1"
)

#: ``(n, flag)`` argument vectors: index 0 trains the profile (hot arm
#: every iteration); the others exercise the cold arm and a shorter trip
#: count, so speculation is checked on inputs it was *not* tuned for.
_HOIST_INPUTS = ([8, 1], [8, 0], [5, 1])


def _dynamic_loads(result: RunResult) -> int:
    return sum(v for k, v in result.expr_counts.items() if k[0] == "load")


def bench_memory(names: tuple[str, ...], repeat: int) -> dict:
    """The memory suite: parity + throughput rows, then the pinned pair.

    Every generated memory workload runs on both engines and must agree
    bit-for-bit (``runresult_mismatches``); total speedup is gated by
    :data:`MEMORY_MIN_SPEEDUP`.  The hand-written hoist/blocked pair pins
    the speculative-load-motion semantics: a strict dynamic-cost win over
    safe PRE on the hoistable program, zero motion on the aliased twin,
    identical observables everywhere.
    """
    from repro.lang.parser import parse_function

    rows = []
    total_ref = total_compiled = 0.0
    equivalent = True
    for name in names:
        workload = load_workload(name)
        prepared = prepare(workload.program.func)
        args = workload.ref_args
        _lower_s, program = _best_of(
            repeat, lambda: compile_function(prepared)
        )
        ref_s, ref_result = _best_of(
            repeat, lambda: run_function(prepared, args, max_steps=MAX_STEPS)
        )
        compiled_s, compiled_result = _best_of(
            repeat, lambda: program.run(args, max_steps=MAX_STEPS)
        )
        mismatches = runresult_mismatches(ref_result, compiled_result)
        equivalent = equivalent and not mismatches
        total_ref += ref_s
        total_compiled += compiled_s
        rows.append({
            "name": name,
            "steps": ref_result.steps,
            "dynamic_cost": ref_result.dynamic_cost,
            "loads": _dynamic_loads(ref_result),
            "reference_s": round(ref_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(ref_s / compiled_s, 2) if compiled_s else 0.0,
            "mismatches": mismatches,
        })
    speedup = total_ref / total_compiled if total_compiled else 0.0

    pinned = {}
    pinned_ok = True
    for label, source in (
        ("hoist", _HOIST_SOURCE), ("blocked", _BLOCKED_SOURCE)
    ):
        prepared = prepare(parse_function(source))
        train_args = list(_HOIST_INPUTS[0])
        profile = run_function(prepared, train_args).profile
        safe = compile_func(prepared, "ssapre", profile)
        mc = compile_func(prepared, "mc-ssapre", profile)
        control = run_function(prepared, train_args)
        safe_run = run_function(safe.func, train_args)
        mc_run = run_function(mc.func, train_args)
        observables_match = all(
            run_function(prepared, list(a)).observable()
            == run_function(safe.func, list(a)).observable()
            == run_function(mc.func, list(a)).observable()
            for a in _HOIST_INPUTS
        )
        if label == "hoist":
            # Safe PRE must be unable to touch the branch-guarded load;
            # MC-SSAPRE must speculate it down to one evaluation.
            gate = (
                mc_run.dynamic_cost < safe_run.dynamic_cost
                and _dynamic_loads(mc_run) < _dynamic_loads(safe_run)
                and _dynamic_loads(safe_run) == _dynamic_loads(control)
            )
        else:
            # The aliasing store blocks every variant completely.
            gate = (
                mc_run.dynamic_cost == control.dynamic_cost
                and safe_run.dynamic_cost == control.dynamic_cost
                and _dynamic_loads(mc_run) == _dynamic_loads(control)
            )
        pinned_ok = pinned_ok and gate and observables_match
        pinned[label] = {
            "control_cost": control.dynamic_cost,
            "safe_cost": safe_run.dynamic_cost,
            "mc_cost": mc_run.dynamic_cost,
            "control_loads": _dynamic_loads(control),
            "safe_loads": _dynamic_loads(safe_run),
            "mc_loads": _dynamic_loads(mc_run),
            "observables_match": observables_match,
            "ok": bool(gate and observables_match),
        }

    return {
        "workloads": rows,
        "total_reference_s": round(total_ref, 6),
        "total_compiled_s": round(total_compiled, 6),
        "speedup": round(speedup, 2),
        "min_speedup": MEMORY_MIN_SPEEDUP,
        "equivalent": equivalent,
        "speculation": pinned,
        "ok": bool(
            equivalent and speedup >= MEMORY_MIN_SPEEDUP and pinned_ok
        ),
    }


# ----------------------------------------------------------------------
# Profiling: minimum-coverage probe placement vs full counting.
# ----------------------------------------------------------------------

#: Workloads for the profiling section: the head of each generated
#: suite, so the probe bound and reconstruction parity are checked on
#: integer, floating-point and memory-shaped CFGs alike.
PROFILING_WORKLOADS = CINT2006[:3] + CFP2006[:3] + MEMORY
QUICK_PROFILING_WORKLOADS = (CINT2006[0], CFP2006[0], MEMORY[0])

#: Counting-event floor: full counting must perform at least this many
#: times more counter increments than the probe set across the whole
#: suite.  Events, not wall time — the event ratio is deterministic
#: (full counting bumps one node and one edge counter per block entry;
#: a probed run bumps one counter per *probed* block entry) so the gate
#: cannot flake on a loaded CI machine.  Wall times are recorded per
#: row but never gated.
PROFILING_MIN_EVENT_RATIO = 2.0

#: Sampling period for the profile-quality study: the "sampled" profile
#: keeps ``count // period`` for every node and edge, modelling a
#: timer-based profiler that sees one event in ``period`` — small
#: counts quantise to zero and cold-path structure is lost.
PROFILING_SAMPLE_PERIOD = 64


def _sparse_mismatches(full: RunResult, sparse: RunResult) -> list[str]:
    """``runresult_mismatches`` with the reconstruction contract applied.

    A reconstructed profile reports ``edge_freq`` all-or-nothing: when
    some real edge is not determined by the probe measurements the whole
    table is empty rather than partial.  Everything else — observables,
    node frequencies, dynamic cost, expression counts, steps — must be
    bit-identical to full counting.
    """
    out = []
    if full.return_value != sparse.return_value:
        out.append("return_value")
    if full.output != sparse.output:
        out.append("output")
    if dict(full.profile.node_freq) != dict(sparse.profile.node_freq):
        out.append("profile.node_freq")
    if sparse.profile.edge_freq and (
        dict(full.profile.edge_freq) != dict(sparse.profile.edge_freq)
    ):
        out.append("profile.edge_freq")
    if full.dynamic_cost != sparse.dynamic_cost:
        out.append("dynamic_cost")
    if dict(full.expr_counts) != dict(sparse.expr_counts):
        out.append("expr_counts")
    if full.steps != sparse.steps:
        out.append("steps")
    return out


def _sampled_profile(
    profile: ExecutionProfile, period: int
) -> ExecutionProfile:
    return ExecutionProfile(
        node_freq=Counter({
            label: count // period
            for label, count in profile.node_freq.items()
            if count // period
        }),
        edge_freq=Counter({
            edge: count // period
            for edge, count in profile.edge_freq.items()
            if count // period
        }),
    )


def bench_profiling(names: tuple[str, ...], repeat: int) -> dict:
    """Minimum-coverage probe placement: coverage, parity, quality.

    Per workload: place probes weighted by the training profile, run the
    ref input under full counting and under probes on *both* engines,
    and gate (a) the spanning-tree bound ``probes <= |E| - |V| + 1``,
    (b) bit-identical reconstructed results (:func:`_sparse_mismatches`),
    (c) the suite-aggregate counting-event ratio.  The quality study
    then compiles MC-SSAPRE under exact / reconstructed / sampled /
    stale training profiles and measures the dynamic-cost delta on the
    training input; exact reconstruction must cost nothing (delta 0),
    while the sampled and stale columns quantify what cheaper profiling
    strategies give up.
    """
    rows = []
    fallbacks = []
    quality = []
    total_full_events = total_probe_events = 0
    bounds_ok = True
    equivalent = True
    quality_ok = True
    for name in names:
        workload = load_workload(name)
        prepared = prepare(workload.program.func)
        args = workload.ref_args
        train_args = workload.train_args
        exact = run_function(
            prepared, train_args, max_steps=MAX_STEPS
        ).profile
        placement, reason = try_place_probes(prepared, profile=exact)
        if placement is not None:
            full_ref_s, full_ref = _best_of(
                repeat,
                lambda: run_function(prepared, args, max_steps=MAX_STEPS),
            )
            probed_ref_s, probed_ref = _best_of(
                repeat,
                lambda: run_function(
                    prepared, args, max_steps=MAX_STEPS, probes=placement
                ),
            )
            program_full = compile_function(prepared)
            program_sparse = compile_function(prepared, probes=placement)
            full_compiled_s, _full_compiled = _best_of(
                repeat, lambda: program_full.run(args, max_steps=MAX_STEPS)
            )
            probed_compiled_s, probed_compiled = _best_of(
                repeat, lambda: program_sparse.run(args, max_steps=MAX_STEPS)
            )
            mismatches = sorted(set(
                _sparse_mismatches(full_ref, probed_ref)
                + _sparse_mismatches(full_ref, probed_compiled)
            ))
            equivalent = equivalent and not mismatches
            bound_ok = len(placement.probes) <= placement.bound
            bounds_ok = bounds_ok and bound_ok
            full_events = (
                sum(full_ref.profile.node_freq.values())
                + sum(full_ref.profile.edge_freq.values())
            )
            probe_events = sum(
                full_ref.profile.node_freq.get(label, 0)
                for label in placement.probes
            )
            total_full_events += full_events
            total_probe_events += probe_events
            rows.append({
                "name": name,
                "blocks": len(placement.blocks),
                "edges": placement.n_edges,
                "probes": len(placement.probes),
                "bound": placement.bound,
                "bound_ok": bound_ok,
                "full_events": full_events,
                "probe_events": probe_events,
                "event_ratio": round(
                    full_events / max(probe_events, 1), 2
                ),
                "reference_full_s": round(full_ref_s, 6),
                "reference_probed_s": round(probed_ref_s, 6),
                "compiled_full_s": round(full_compiled_s, 6),
                "compiled_probed_s": round(probed_compiled_s, 6),
                "mismatches": mismatches,
            })
        else:
            fallbacks.append({"name": name, "reason": reason})

        probed_train = run_probed(
            prepared, train_args, MAX_STEPS, profile=exact
        )
        reconstructed = probed_train.result.profile
        sampled = _sampled_profile(exact, PROFILING_SAMPLE_PERIOD)
        stale = run_function(
            prepared, workload.ref_args, max_steps=MAX_STEPS
        ).profile
        costs = {}
        for label, prof in (
            ("exact", exact),
            ("reconstructed", reconstructed),
            ("sampled", sampled),
            ("stale", stale),
        ):
            compiled = compile_func(prepared, "mc-ssapre", prof)
            costs[label] = run_function(
                compiled.func, train_args, max_steps=MAX_STEPS
            ).dynamic_cost
        deltas = {
            key: costs[key] - costs["exact"]
            for key in ("reconstructed", "sampled", "stale")
        }
        row_ok = deltas["reconstructed"] == 0
        quality_ok = quality_ok and row_ok
        quality.append({
            "name": name,
            "cost_exact": costs["exact"],
            "delta_reconstructed": deltas["reconstructed"],
            "delta_sampled": deltas["sampled"],
            "delta_stale": deltas["stale"],
            "fallback": probed_train.fallback_reason,
            "ok": row_ok,
        })

    event_ratio = total_full_events / max(total_probe_events, 1)
    return {
        "workloads": rows,
        "fallbacks": fallbacks,
        "total_full_events": total_full_events,
        "total_probe_events": total_probe_events,
        "event_ratio": round(event_ratio, 2),
        "min_event_ratio": PROFILING_MIN_EVENT_RATIO,
        "bounds_ok": bounds_ok,
        "equivalent": equivalent,
        "sample_period": PROFILING_SAMPLE_PERIOD,
        "quality": quality,
        "quality_ok": quality_ok,
        "ok": bool(
            bounds_ok
            and equivalent
            and event_ratio >= PROFILING_MIN_EVENT_RATIO
            and quality_ok
        ),
    }


# ----------------------------------------------------------------------
# Iterative vs one-shot MC-SSAPRE: compile time and dynamic-cost deltas.
# ----------------------------------------------------------------------

def bench_iterative(names: tuple[str, ...], repeat: int) -> dict:
    """One-shot vs rank-ordered iterative MC-SSAPRE on each workload.

    Dynamic cost is measured on the *train* input — the input the profile
    (and hence the optimisation objective) comes from, which is where the
    paper's optimality claim lives.  ``never_higher`` is the hard gate:
    the iterative driver's round 1 is the one-shot driver, so extra
    rounds can only remove weighted computations, never add them.
    ``strict_win`` records that at least one workload actually improved.
    """
    rows = []
    never_higher = equivalent = True
    strict_win = False
    for name in names:
        workload = load_workload(name)
        prepared = prepare(workload.program.func)
        profile = run_function(
            prepared, workload.train_args, max_steps=MAX_STEPS
        ).profile

        oneshot_s, oneshot = _best_of(
            repeat, lambda: compile_func(prepared, "mc-ssapre", profile)
        )
        iterative_s, iterative = _best_of(
            repeat,
            lambda: compile_func(
                prepared, "mc-ssapre", profile,
                rounds=DEFAULT_ITERATIVE_ROUNDS,
            ),
        )
        one_run = run_function(
            oneshot.func, workload.train_args, max_steps=MAX_STEPS
        )
        iter_run = run_function(
            iterative.func, workload.train_args, max_steps=MAX_STEPS
        )
        same_observables = (
            one_run.return_value == iter_run.return_value
            and one_run.output == iter_run.output
        )
        equivalent = equivalent and same_observables
        delta = one_run.dynamic_cost - iter_run.dynamic_cost
        never_higher = never_higher and delta >= 0
        strict_win = strict_win or delta > 0
        pre = iterative.pre_result
        rows.append({
            "name": name,
            "family": workload.family,
            "oneshot_compile_s": round(oneshot_s, 6),
            "iterative_compile_s": round(iterative_s, 6),
            "compile_overhead": (
                round(iterative_s / oneshot_s, 2) if oneshot_s else 0.0
            ),
            "rounds_run": pre.rounds_run,
            "fixpoint": pre.fixpoint,
            "oneshot_dynamic_cost": one_run.dynamic_cost,
            "iterative_dynamic_cost": iter_run.dynamic_cost,
            "cost_delta": delta,
            "observables_match": same_observables,
        })
    return {
        "variant": "mc-ssapre",
        "rounds": DEFAULT_ITERATIVE_ROUNDS,
        "workloads": rows,
        "never_higher": never_higher,
        "strict_win": strict_win,
        "equivalent": equivalent,
        "ok": never_higher and strict_win and equivalent,
    }


# ----------------------------------------------------------------------
# Solver scaling: lospre vs min-cut over a pinned CFG family.
# ----------------------------------------------------------------------

#: Solve-time advantage lospre must hold over the min cut at the largest
#: CFG size of the scaling family.  The family below is exactly the
#: regime the lospre paper targets: the min cut needs one augmenting
#: phase per kill site (quadratic), the width-1 DP stays linear.
SOLVER_MIN_SPEEDUP = 5.0

#: Kill-site counts of the scaling family (the CFG has ~3k+4 blocks).
SOLVER_SCALING_SIZES = (64, 128, 256, 512)
QUICK_SOLVER_SCALING_SIZES = (64, 384)


def solver_scaling_text(kills: int) -> str:
    """The pinned scaling program: a hot loop over ``kills`` kill sites.

    Each diamond ``j`` redefines ``b`` on exactly one loop iteration
    (``i == j``), so ``mul a, b``'s availability at the loop-tail use is
    broken once per site: its reduced graph is a chain of ``kills + 1``
    Φs with one cheap ⊥ edge per kill.  The profile (``n = kills + 3``
    iterations) makes inserting at every kill site the unique optimum —
    the min cut is all source edges, reached only after one augmenting
    phase per distinct path length, while the DP eliminates the width-1
    chain in one linear sweep.
    """
    lines = [
        "func scale(a, b, n) {",
        "entry:",
        "  i = 0",
        "  s = 0",
        "  jump head",
        "head:",
        "  c = lt i, n",
        "  br c, d0, exit",
    ]
    for j in range(kills):
        nxt = f"d{j + 1}" if j + 1 < kills else "tail"
        lines += [
            f"d{j}:",
            f"  cc{j} = eq i, {j}",
            f"  br cc{j}, x{j}, m{j}",
            f"x{j}:",
            "  b = add b, 1",
            f"  jump m{j}",
            f"m{j}:",
            f"  jump {nxt}",
        ]
    lines += [
        "tail:",
        "  u = mul a, b",
        "  s = add s, u",
        "  i = add i, 1",
        "  jump head",
        "exit:",
        "  ret s",
        "}",
    ]
    return "\n".join(lines)


class _HarvestSolver(SpeculationSolver):
    """MinCutSolver proxy that keeps every reduced graph it solved.

    The driver mutates nothing the solvers read (insert flags are
    outputs, cleared on every solve), so the harvested graphs can be
    re-solved repeatedly for head-to-head solve-time measurement.
    """

    name = "mincut"

    def __init__(self) -> None:
        self.inner = MinCutSolver()
        self.graphs: list = []

    def solve(self, reduced, profile):
        self.graphs.append(reduced)
        return self.inner.solve(reduced, profile)


def bench_solver_scaling(
    sizes: tuple[int, ...], repeat: int
) -> dict:
    """Compile-time and solve-time curves, lospre vs min-cut, by CFG size.

    Three gates, all pinned: (1) at every size the two solvers' outputs
    run to *identical observables and dynamic cost* on the train input;
    (2) lospre accepts every graph of the family (zero width refusals);
    (3) at the largest size lospre's total solve time beats the min
    cut's by :data:`SOLVER_MIN_SPEEDUP`.
    """
    from repro.lang.parser import parse_function

    rows = []
    equivalent = accepted = True
    for kills in sizes:
        source = solver_scaling_text(kills)
        prepared = prepare(parse_function(source))
        args = [3, 5, kills + 3]
        profile = run_function(prepared, args, max_steps=MAX_STEPS).profile

        harvest = _HarvestSolver()
        spec = [
            ConstructSSAPass(),
            MCSSAPREPass(solver=harvest),
            DestructSSAPass(),
        ]
        mincut_compile_s, mincut_compiled = _best_of(
            1,
            lambda: compile_func(
                prepared, "mc-ssapre", profile, pipeline_spec=spec
            ),
        )
        lospre_compile_s, lospre_compiled = _best_of(
            1,
            lambda: compile_func(
                prepared, "mc-ssapre", profile, solver="lospre"
            ),
        )
        graphs = [g for g in harvest.graphs if not g.is_empty()]

        solve_s = {}
        solve_repeat = max(2, repeat)
        for name, solver in (
            ("mincut", MinCutSolver()),
            ("lospre", LospreSolver()),
        ):
            def solve_all():
                for reduced in graphs:
                    solver.solve(reduced, profile)

            solve_s[name], _ = _best_of(solve_repeat, solve_all)

        pre = lospre_compiled.pre_result
        refusals = pre.lospre_refusals
        widths = [
            s.width for s in pre.efg_stats if s.width is not None
        ]
        accepted = accepted and refusals == 0

        mincut_run = run_function(
            mincut_compiled.func, args, max_steps=MAX_STEPS
        )
        lospre_run = run_function(
            lospre_compiled.func, args, max_steps=MAX_STEPS
        )
        mismatches = runresult_mismatches(mincut_run, lospre_run)
        equivalent = equivalent and not mismatches

        speedup = (
            round(solve_s["mincut"] / solve_s["lospre"], 2)
            if solve_s["lospre"]
            else 0.0
        )
        rows.append({
            "kills": kills,
            "blocks": len(prepared.blocks),
            "classes_solved": len(graphs),
            "largest_phis": max(
                (len(g.phis) for g in graphs), default=0
            ),
            "mincut_solve_s": round(solve_s["mincut"], 6),
            "lospre_solve_s": round(solve_s["lospre"], 6),
            "solver_speedup": speedup,
            "mincut_compile_s": round(mincut_compile_s, 6),
            "lospre_compile_s": round(lospre_compile_s, 6),
            "max_width": max(widths, default=0),
            "refusals": refusals,
            "mincut_dynamic_cost": mincut_run.dynamic_cost,
            "lospre_dynamic_cost": lospre_run.dynamic_cost,
            "mismatches": mismatches,
        })
    largest = rows[-1]
    return {
        "sizes": rows,
        "min_speedup": SOLVER_MIN_SPEEDUP,
        "speedup_at_largest": largest["solver_speedup"],
        "equivalent": equivalent,
        "accepted": accepted,
        "ok": (
            equivalent
            and accepted
            and largest["solver_speedup"] >= SOLVER_MIN_SPEEDUP
        ),
    }


# ----------------------------------------------------------------------
# Serving: cold vs warm artifact-cache throughput + consistency gates.
# ----------------------------------------------------------------------

#: Cold-to-warm throughput the artifact cache must deliver.  A warm
#: request skips training + optimisation + lowering and pays only
#: parse/prepare/key/execute, so well below this means the cache (or the
#: key computation) has regressed into the request path.
SERVING_MIN_SPEEDUP = 5.0

#: Clients racing one key in the coalescing gate.
SERVING_COALESCE_CLIENTS = 8


def bench_serving(
    repeat: int, requests: int = 96, unique: int = 6
) -> dict:
    """The :mod:`repro.serve` workload, gated four ways.

    * **speedup** — serving the ``unique`` distinct requests warm (every
      artifact cached) must beat serving them cold (every artifact
      compiled) by :data:`SERVING_MIN_SPEEDUP`;
    * **equivalent** — warm answers must be bit-identical to cold ones
      (observables, dynamic cost, step count);
    * **hit rate** — the interleaved load-generator run must achieve
      exactly the hit rate its request mix admits, with zero mismatches
      against the reference interpreter;
    * **coalescing** — :data:`SERVING_COALESCE_CLIENTS` concurrent
      identical requests must trigger exactly one compile;
    * **solver=auto** — a cold request with ``solver="auto"`` must
      serve successfully (the shape classifier resolves the lane before
      the cache key is computed); its latency is pinned as
      ``cold_auto_s``.
    """
    import dataclasses
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve.loadgen import WorkloadSpec, build_workload, run_load
    from repro.serve.server import CompileService

    spec = WorkloadSpec(requests=requests, unique=unique)
    workload = build_workload(spec)
    pool = workload.requests[:unique]

    def cold_pass():
        with CompileService() as service:
            return [service.handle(request) for request in pool]

    cold_s, cold_responses = _best_of(repeat, cold_pass)

    warm_service = CompileService()
    for request in pool:  # populate the cache once
        warm_service.handle(request)
    warm_s, warm_responses = _best_of(
        repeat,
        lambda: [warm_service.handle(request) for request in pool],
    )
    warm_service.close()

    def answer(response):
        return (
            response.status,
            response.observable(),
            response.dynamic_cost,
            response.steps,
        )

    equivalent = all(
        answer(cold) == answer(warm)
        for cold, warm in zip(cold_responses, warm_responses)
    ) and all(r.status == "ok" for r in cold_responses)

    # Cold request latency under solver="auto": the classifier resolves
    # the lane before keying, and the answer must match the forced
    # default lane bit for bit (the solver exactness contract, observed
    # from the serving layer).
    auto_request = dataclasses.replace(pool[0], solver="auto")

    def cold_auto():
        with CompileService() as service:
            return service.handle(auto_request)

    cold_auto_s, auto_response = _best_of(repeat, cold_auto)
    auto_ok = (
        auto_response.status == "ok"
        and auto_response.observable() == cold_responses[0].observable()
        and auto_response.dynamic_cost == cold_responses[0].dynamic_cost
    )

    with CompileService() as service:
        load_report, _responses = run_load(service, workload, jobs=1)

    with CompileService(max_workers=SERVING_COALESCE_CLIENTS) as service:
        with ThreadPoolExecutor(
            max_workers=SERVING_COALESCE_CLIENTS
        ) as clients:
            raced = list(
                clients.map(
                    service.handle, [pool[0]] * SERVING_COALESCE_CLIENTS
                )
            )
        race_compiles = service.metrics.get("compiles")
        race_coalesced = service.metrics.get("coalesced")
        race_ok = (
            race_compiles == 1
            and all(r.status == "ok" for r in raced)
        )

    speedup = round(cold_s / warm_s, 2) if warm_s else 0.0
    hit_rate_ok = (
        load_report.hit_rate >= load_report.expected_hit_rate
        and load_report.mismatches == 0
        and load_report.errors == 0
        and load_report.timeouts == 0
    )
    return {
        "requests": requests,
        "unique": unique,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "cold_auto_s": round(cold_auto_s, 6),
        "auto_ok": auto_ok,
        "speedup": speedup,
        "min_speedup": SERVING_MIN_SPEEDUP,
        "equivalent": equivalent,
        "hit_rate": round(load_report.hit_rate, 4),
        "expected_hit_rate": round(load_report.expected_hit_rate, 4),
        "mismatches": load_report.mismatches,
        "load_rps": round(load_report.rps, 2),
        "coalescing": {
            "clients": SERVING_COALESCE_CLIENTS,
            "compiles": race_compiles,
            "coalesced": race_coalesced,
            "ok": race_ok,
        },
        "ok": (
            speedup >= SERVING_MIN_SPEEDUP
            and equivalent
            and hit_rate_ok
            and race_ok
            and auto_ok
        ),
    }


# ----------------------------------------------------------------------
# Cluster: sharded multi-process serving, driven open-loop.
# ----------------------------------------------------------------------

#: Worker processes in the pinned cluster scenario.
CLUSTER_WORKERS = 4

#: Aggregate open-loop throughput the 4-worker cluster must sustain,
#: as a multiple of the single-process closed-loop ``load_rps`` pin.
CLUSTER_MIN_RPS_RATIO = 3.0

#: Offered open-loop rate, as a multiple of the single-process pin:
#: above the required ratio (the cluster must *sustain* it, not just be
#: offered it) with margin below the cluster's measured ceiling.
CLUSTER_OFFERED_RATIO = 3.6

#: Hard p99 bound on the warm open-loop phase (coordinated-omission-
#: free: measured from each request's scheduled arrival).
CLUSTER_P99_MAX_S = 0.25


def bench_cluster(load_rps: float, requests: int = 96, unique: int = 6) -> dict:
    """The sharded serving cluster (docs/SERVING.md "Cluster"), gated.

    Four workers behind the consistent-hash front end, sharing one disk
    tier and one lock directory.  Three phases:

    * **cold race** — the first pool request fired at every worker port
      simultaneously (bypassing the ring): merged per-worker
      ``compiles`` must rise by exactly 1, the losers must rehydrate
      from disk, and all answers must agree;
    * **warm pool** — each remaining unique key primed once through the
      front end (ring routing + in-process single-flight: still one
      compile per key);
    * **open loop** — the full workload offered at
      :data:`CLUSTER_OFFERED_RATIO` x the single-process ``load_rps``
      pin on a seeded Poisson schedule.  Gates: achieved RPS >=
      :data:`CLUSTER_MIN_RPS_RATIO` x the pin, CO-free p99 <=
      :data:`CLUSTER_P99_MAX_S`, zero mismatches/errors/timeouts, and
      total compiles == the unique pool (exactly one compile per cold
      key, cluster-wide).
    """
    import shutil
    import tempfile

    from repro.serve.cluster import Cluster, race_cold_key
    from repro.serve.loadgen import (
        TCPServiceClient,
        WorkloadSpec,
        build_workload,
        run_open_loop,
    )

    spec = WorkloadSpec(requests=requests, unique=unique)
    workload = build_workload(spec)
    offered = max(50.0, CLUSTER_OFFERED_RATIO * load_rps)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-cache-")
    lock_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-locks-")
    try:
        with Cluster(
            CLUSTER_WORKERS, cache_dir=cache_dir, lock_dir=lock_dir
        ) as cluster:
            first = workload.requests[0]
            before = cluster.merged_metrics()["counters"]
            answers = race_cold_key(
                cluster.worker_ports(),
                {
                    "source": first.source,
                    "args": list(first.args),
                    "variant": first.variant,
                    "rounds": first.rounds,
                    "train_args": (
                        list(first.train_args)
                        if first.train_args is not None else None
                    ),
                },
            )
            after = cluster.merged_metrics()["counters"]
            observables = {
                (a.get("return_value"), tuple(a.get("output") or ()))
                for a in answers
            }
            race = {
                "clients": len(answers),
                "compiles": after["compiles"] - before["compiles"],
                "rehydrates": (
                    after["lock_rehydrates"] - before["lock_rehydrates"]
                ),
                "agreed": len(observables) == 1,
                "all_ok": all(a.get("status") == "ok" for a in answers),
            }
            race["ok"] = (
                race["compiles"] == 1 and race["agreed"] and race["all_ok"]
            )

            with TCPServiceClient(cluster.host, cluster.port) as client:
                for request in workload.requests[:unique]:
                    client.handle(request)

            report = run_open_loop(
                cluster.host, cluster.port, workload,
                rps=offered, seed=1,
            )
            merged = cluster.merged_metrics()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(lock_dir, ignore_errors=True)

    counters = merged["counters"]
    ratio = round(report.achieved_rps / load_rps, 2) if load_rps else 0.0
    clean = (
        report.mismatches == 0
        and report.errors == 0
        and report.timeouts == 0
    )
    return {
        "workers": CLUSTER_WORKERS,
        "requests": requests,
        "unique": unique,
        "single_rps": round(load_rps, 2),
        "offered_rps": round(offered, 2),
        "achieved_rps": round(report.achieved_rps, 2),
        "rps_ratio": ratio,
        "min_rps_ratio": CLUSTER_MIN_RPS_RATIO,
        "p99_s": report.latency["p99_s"],
        "p99_max_s": CLUSTER_P99_MAX_S,
        "mean_s": report.latency["mean_s"],
        "max_in_flight": report.max_in_flight,
        "mismatches": report.mismatches,
        "errors": report.errors,
        "timeouts": report.timeouts,
        "compiles": counters["compiles"],
        "plan_hits": counters["plan_hits"],
        "lock_rehydrates": counters["lock_rehydrates"],
        "race": race,
        "ok": (
            ratio >= CLUSTER_MIN_RPS_RATIO
            and report.latency["p99_s"] <= CLUSTER_P99_MAX_S
            and clean
            and counters["compiles"] == unique
            and race["ok"]
        ),
    }


# ----------------------------------------------------------------------
# Adaptation: drift-triggered recompilation + hot swap, gated.
# ----------------------------------------------------------------------

#: Tier/drift knobs for the adaptation scenario: small enough that the
#: whole loop (warmup -> promote -> drift -> swap) resolves in a couple
#: dozen requests.
ADAPT_WARMUP = 2
ADAPT_THRESHOLD = 0.2
ADAPT_MIN_SAMPLES = 4

#: Requests that must be served, correctly and from the old binding,
#: while the drift-triggered recompile is deliberately parked.
ADAPT_BLOCKED_REQUESTS = 8


def bench_adaptation() -> dict:
    """The serving layer's online re-optimisation loop, gated four ways.

    A loop program is promoted under a long-trip-count profile, then the
    workload phase-shifts to trip count zero.  The gates:

    * **promoted** — the key must move interpreter -> compiled via a
      background promotion build (>=1 ``tier_promotions``);
    * **non_blocking_ok** — the drift-triggered recompile is parked
      behind an event, and every request issued while it is parked must
      be answered correctly from the *old* binding (a recompile never
      blocks the serve path);
    * **swapped** — releasing the build must land >=1 hot swap
      (generation 2 under the same structural key);
    * **swap_identical** — the swapped-in artifact must be bit-identical
      (content address, observables, dynamic cost, step count) to a
      from-scratch :func:`~repro.serve.server.build_artifact` under the
      exact live-profile snapshot the swap recorded.

    One scenario, not a timing loop: the numbers reported (for the
    record) are the max in-park request latency and the end-to-end wall.
    """
    import threading

    from repro.ir.builder import FunctionBuilder
    from repro.ir.printer import format_function
    from repro.serve.adapt import AdaptConfig
    from repro.serve.server import (
        CompileRequest,
        CompileService,
        build_artifact,
        execute_artifact,
    )

    b = FunctionBuilder("adapt_loop", params=["a", "b", "n"])
    b.block("entry")
    b.copy("i", 0)
    b.copy("acc", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.assign("v", "mul", "a", "b")
    b.assign("acc", "add", "acc", "v")
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.assign("tail", "mul", "a", "b")
    b.assign("acc", "add", "acc", "tail")
    b.ret("acc")
    source = format_function(b.build())

    class _Gate:
        """Build wrapper that parks builds while ``active`` is set."""

        def __init__(self) -> None:
            self.active = threading.Event()
            self.parked = threading.Event()
            self.release = threading.Event()

        def __call__(self, prepared, config, **kwargs):
            if self.active.is_set():
                self.parked.set()
                self.release.wait(timeout=60.0)
            return build_artifact(prepared, config, **kwargs)

    def request(n: int) -> CompileRequest:
        return CompileRequest(source=source, args=(3, 4, n), variant="mc-ssapre")

    t0 = time.perf_counter()
    gate = _Gate()
    service = CompileService(
        build=gate,
        adapt=AdaptConfig(
            warmup=ADAPT_WARMUP,
            threshold=ADAPT_THRESHOLD,
            min_samples=ADAPT_MIN_SAMPLES,
        ),
    )
    try:
        # Phase one: long loops; warm up and promote under that profile.
        for _ in range(ADAPT_WARMUP + 1):
            service.handle(request(12))
        drained = service.adapt.drain(timeout=60.0)
        (state,) = service.adapt._states.values()
        promoted = (
            drained
            and state.binding is not None
            and state.binding.generation == 1
            and service.metrics.get("tier_promotions") >= 1
        )

        # Phase two: the loop collapses.  Park the recompile the drift
        # detector schedules and keep the requests coming.
        gate.active.set()
        expected = run_function(state.prepared, [3, 4, 0]).observable()
        warm_requests = 0
        while not gate.parked.wait(timeout=0.0) and warm_requests < 64:
            service.handle(request(0))
            warm_requests += 1
        drift_fired = gate.parked.wait(timeout=10.0)

        blocked_max_s = 0.0
        blocked_ok = True
        for _ in range(ADAPT_BLOCKED_REQUESTS):
            t_req = time.perf_counter()
            response = service.handle(request(0))
            blocked_max_s = max(blocked_max_s, time.perf_counter() - t_req)
            blocked_ok = blocked_ok and (
                response.status == "ok"
                and response.served_by == "memory"
                and response.observable() == expected
            )
        non_blocking_ok = drift_fired and blocked_ok

        gate.release.set()
        gate.active.clear()
        drained = service.adapt.drain(timeout=60.0) and drained
        binding = state.binding
        swapped = (
            drained
            and service.metrics.get("hot_swaps") >= 1
            and binding.generation >= 2
        )

        # Bit-identity: a cold build under the swap's recorded profile
        # must reproduce the swapped artifact exactly.
        fresh = build_artifact(
            state.prepared,
            state.config,
            key=binding.key,
            engine=state.engine,
            profile=binding.profile,
        )
        swap_identical = fresh.key == binding.key and not fresh.degraded
        for n in (0, 5, 12):
            served = execute_artifact(binding.artifact, (3, 4, n), MAX_STEPS)
            rebuilt = execute_artifact(fresh, (3, 4, n), MAX_STEPS)
            swap_identical = swap_identical and (
                served.observable() == rebuilt.observable()
                and served.dynamic_cost == rebuilt.dynamic_cost
                and served.steps == rebuilt.steps
            )

        counters = service.metrics.to_dict()["counters"]
        return {
            "warmup": ADAPT_WARMUP,
            "threshold": ADAPT_THRESHOLD,
            "min_samples": ADAPT_MIN_SAMPLES,
            "promotions": counters["tier_promotions"],
            "drift_events": counters["drift_events"],
            "recompiles": counters["recompiles"],
            "hot_swaps": counters["hot_swaps"],
            "generation": binding.generation if binding else 0,
            "requests_during_recompile": ADAPT_BLOCKED_REQUESTS,
            "blocked_request_max_s": round(blocked_max_s, 6),
            "promoted": promoted,
            "non_blocking_ok": non_blocking_ok,
            "swapped": swapped,
            "swap_identical": swap_identical,
            "wall_s": round(time.perf_counter() - t0, 6),
            "ok": promoted and non_blocking_ok and swapped and swap_identical,
        }
    finally:
        gate.release.set()
        service.close()


# ----------------------------------------------------------------------
# Max-flow: Dinic vs Edmonds-Karp on deterministic scaling networks.
# ----------------------------------------------------------------------

@dataclass
class _Lcg:
    """Tiny deterministic generator (keeps network shapes pinned)."""

    state: int

    def next(self, bound: int) -> int:
        self.state = (
            self.state * 6364136223846793005 + 1442695040888963407
        ) % (1 << 64)
        return (self.state >> 33) % bound


def scaling_network(layers: int, width: int, seed: int = 7) -> FlowNetwork:
    """A layered network: source → L dense layers of ``width`` → sink.

    Consecutive layers are fully connected with seeded capacities, which
    forces many short augmenting paths — the regime where Dinic's level
    graph pays off over Edmonds-Karp's one-path-per-BFS.
    """
    rng = _Lcg(seed + 1000003 * layers + width)
    net = FlowNetwork("s", "t")
    for j in range(width):
        net.add_edge("s", (0, j), 1 + rng.next(50))
    for i in range(layers - 1):
        for j in range(width):
            for k in range(width):
                net.add_edge((i, j), (i + 1, k), 1 + rng.next(20))
    for j in range(width):
        net.add_edge((layers - 1, j), "t", 1 + rng.next(50))
    return net


def bench_maxflow(sizes: tuple[tuple[int, int], ...], repeat: int) -> dict:
    rows = []
    agreed = True
    for layers, width in sizes:
        network = scaling_network(layers, width)
        dinic_s, (dinic_flow, _) = _best_of(
            repeat, lambda: dinic_max_flow(network)
        )
        ek_s, (ek_flow, _) = _best_of(
            repeat, lambda: edmonds_karp_max_flow(network)
        )
        agreed = agreed and dinic_flow == ek_flow
        rows.append({
            "layers": layers,
            "width": width,
            "nodes": network.node_count(),
            "edges": network.edge_count(),
            "max_flow": dinic_flow,
            "dinic_s": round(dinic_s, 6),
            "edmonds_karp_s": round(ek_s, 6),
            "ek_over_dinic": round(ek_s / dinic_s, 2) if dinic_s else 0.0,
            "flows_agree": dinic_flow == ek_flow,
        })
    return {"networks": rows, "agreed": agreed}


# ----------------------------------------------------------------------
# The whole suite.
# ----------------------------------------------------------------------

#: Section names accepted by :func:`run_perf`'s ``sections`` filter (and
#: the CLI's ``--only``), in run order.
SECTION_NAMES = (
    "execution", "compile", "memory", "iterative", "solver_scaling",
    "serving", "maxflow", "profiling",
)


def run_perf(
    quick: bool = False,
    repeat: int | None = None,
    solver: str = "mincut",
    sections: tuple[str, ...] | None = None,
) -> dict:
    """Run the benchmark suite; returns the BENCH.json payload.

    ``solver`` selects the speculation back end the compile section
    times (the solver-scaling section always measures both).
    ``sections`` restricts the run to a subset of :data:`SECTION_NAMES`
    (None = all); only the sections that ran appear in the payload and
    feed ``payload["ok"]``.  ``payload["ok"]`` is False when any
    correctness gate failed (the CLI turns that into exit status 1).
    """
    if repeat is None:
        repeat = 1 if quick else 3
    chosen = SECTION_NAMES if sections is None else tuple(sections)
    unknown = sorted(set(chosen) - set(SECTION_NAMES))
    if unknown:
        raise ValueError(f"unknown perf section(s): {', '.join(unknown)}")
    names = QUICK_WORKLOADS if quick else STANDARD_WORKLOADS
    sizes = QUICK_NETWORKS if quick else STANDARD_NETWORKS
    iter_names = (
        QUICK_ITERATIVE_WORKLOADS if quick else ITERATIVE_WORKLOADS
    )
    scaling_sizes = (
        QUICK_SOLVER_SCALING_SIZES if quick else SOLVER_SCALING_SIZES
    )
    memory_names = QUICK_MEMORY_WORKLOADS if quick else MEMORY_WORKLOADS
    profiling_names = (
        QUICK_PROFILING_WORKLOADS if quick else PROFILING_WORKLOADS
    )

    t0 = time.perf_counter()
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "repeat": repeat,
        "solver": solver,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    ok = True
    if "execution" in chosen:
        execution = bench_execution(names, repeat)
        payload["execution"] = execution
        ok = ok and execution["equivalent"]
    if "compile" in chosen:
        payload["compile"] = bench_compile(names, repeat, solver=solver)
    if "memory" in chosen:
        memory = bench_memory(memory_names, repeat)
        payload["memory"] = memory
        ok = ok and memory["ok"]
    if "iterative" in chosen:
        iterative = bench_iterative(iter_names, repeat)
        payload["iterative"] = iterative
        ok = ok and iterative["ok"]
    if "solver_scaling" in chosen:
        solver_scaling = bench_solver_scaling(scaling_sizes, repeat)
        payload["solver_scaling"] = solver_scaling
        ok = ok and solver_scaling["ok"]
    if "serving" in chosen:
        serving = bench_serving(repeat, requests=36 if quick else 96)
        adaptation = bench_adaptation()
        serving["adaptation"] = adaptation
        serving["ok"] = bool(serving["ok"] and adaptation["ok"])
        cluster = bench_cluster(
            serving["load_rps"], requests=36 if quick else 96
        )
        serving["cluster"] = cluster
        serving["ok"] = bool(serving["ok"] and cluster["ok"])
        payload["serving"] = serving
        ok = ok and serving["ok"]
    if "maxflow" in chosen:
        maxflow = bench_maxflow(sizes, repeat)
        payload["maxflow"] = maxflow
        ok = ok and maxflow["agreed"]
    if "profiling" in chosen:
        profiling = bench_profiling(profiling_names, repeat)
        payload["profiling"] = profiling
        ok = ok and profiling["ok"]
    payload["ok"] = bool(ok)
    payload["wall_time_s"] = round(time.perf_counter() - t0, 3)
    return payload
