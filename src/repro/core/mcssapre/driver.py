"""The MC-SSAPRE driver — the ten steps of paper Figure 4.

    1.  Φ-Insertion          (shared with SSAPRE)
    2.  Rename               (shared, plus rg_excluded marking)
    3.  Data flow            sparse full availability / partial anticipability
    4.  Graph reduction      reduced SSA graph
    5.  Single source        artificial source, edges to ⊥ operands
    6.  Single sink          artificial sink, infinite edges from SPR occs
    7.  Min-cut              reverse-labeling minimum cut → insert flags
    8.  WillBeAvail          forward propagation from the insert flags
    9.  Finalize             (shared with SSAPRE)
    10. CodeMotion           (shared with SSAPRE)

Speculation requires an execution profile with **node frequencies only**;
the driver deliberately accepts a profile whose edge map is empty.
Trapping expressions (div/mod/…) are never speculated: for those classes
the driver runs the safe SSAPRE steps 3–4 instead, mirroring how the
paper's compiler excludes exception-throwing computations (Section 2).

Even when an expression has no strictly-partially-redundant occurrence
(empty EFG), steps 8–10 still run so fully redundant occurrences are
deleted — MC-SSAPRE handles local and global redundancy uniformly
(Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.mcssapre.cut import CutDecision, solve_min_cut

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.efg import build_efg
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.mcssapre.willbeavail import compute_will_be_avail_from_cut
from repro.core.ssapre.codemotion import apply_code_motion
from repro.core.ssapre.downsafety import compute_down_safety
from repro.core.ssapre.driver import PREResult
from repro.core.ssapre.finalize import finalize
from repro.core.ssapre.frg import ExprClass, build_frgs, collect_expr_classes
from repro.core.ssapre.willbeavail import compute_will_be_avail
from repro.ir.function import Function
from repro.ir.verifier import has_critical_edges
from repro.profiles.profile import ExecutionProfile
from repro.ssa.ssa_verifier import verify_ssa


@dataclass
class EFGStats:
    """Per-class flow-network statistics (feeds Figure 11 / Section 4)."""

    expr: str
    nodes: int
    edges: int
    cut_value: int
    insertions: int


@dataclass
class MCPREResult(PREResult):
    """PRE result extended with MC-specific statistics."""

    efg_stats: list[EFGStats] = field(default_factory=list)
    trapping_fallbacks: int = 0

    def efg_sizes(self) -> list[int]:
        return [s.nodes for s in self.efg_stats]


def run_mc_ssapre(
    func: Function,
    profile: ExecutionProfile,
    validate: bool = False,
    classes: list[ExprClass] | None = None,
    sink_closest: bool = True,
    cache: "AnalysisCache | None" = None,
) -> MCPREResult:
    """Run MC-SSAPRE over every candidate class of *func*, in place.

    ``sink_closest=False`` selects the source-side min cut instead of the
    reverse-labeling cut; it exists only for the lifetime ablation
    benchmark and forfeits lifetime optimality (never computational
    optimality).
    """
    if has_critical_edges(func):
        raise ValueError(
            "MC-SSAPRE requires critical edges to be split first "
            "(use repro.ir.transforms.split_critical_edges)"
        )
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    if classes is None:
        classes = collect_expr_classes(func)
    result = MCPREResult(algorithm="MC-SSAPRE")

    # Steps 1 and 2 for every class in one shared rename walk, and one
    # shared bit-vector solve for the trapping-class safe fallback (see
    # the comment in run_ssapre for why later CodeMotion cannot
    # invalidate these).
    frgs = build_frgs(func, classes, cache=cache)
    dataflow = None

    for expr in classes:
        frg = frgs[expr.key]
        if not frg.real_occs:
            continue
        if expr.trapping:
            # Unspeculatable: fall back to the safe placement for this
            # class (SSAPRE steps 3-4), still deleting full redundancies.
            if dataflow is None:
                from repro.analysis.dataflow import solve_pre_dataflow

                dataflow = solve_pre_dataflow(
                    func, [e.key for e in classes]
                )
            compute_down_safety(frg, dataflow)
            compute_will_be_avail(frg)
            result.trapping_fallbacks += 1
        else:
            solve_step3(frg)  # step 3
            reduced = build_reduced_graph(frg)  # step 4
            efg = build_efg(reduced, profile)  # steps 5 and 6
            decision: CutDecision | None = None
            if efg is not None:
                decision = solve_min_cut(efg, sink_closest=sink_closest)  # step 7
                result.efg_stats.append(
                    EFGStats(
                        expr=str(expr),
                        nodes=efg.node_count,
                        edges=efg.edge_count,
                        cut_value=decision.cut.value,
                        insertions=len(decision.insert_operands),
                    )
                )
            compute_will_be_avail_from_cut(frg)  # step 8
        plan = finalize(frg)  # step 9
        report = apply_code_motion(func, plan)  # step 10
        result.reports.append(report)
        if validate and report.changed:
            verify_ssa(func)
    func.mark_code_mutated()
    return result
