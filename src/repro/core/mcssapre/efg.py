"""MC-SSAPRE steps 5–6 — the essential flow graph (EFG).

The reduced SSA graph becomes a single-source single-sink flow network:

* step 5 adds an artificial **source** with one edge to each ⊥ Φ operand,
  weighted with the node frequency of the operand's predecessor block
  (these are the earliest useful insertion points — Lemma 3 territory);
* step 6 adds an artificial **sink** with an infinite-weight edge from
  every strictly-partially-redundant real occurrence, forcing every SPR
  occurrence downstream of any minimum cut.

Edge weights need **node frequencies only** (paper contribution 3): a
type 1 edge costs the frequency of the predecessor block where the
insertion would go; a type 2 edge costs the frequency of the block whose
real occurrence would compute in place.

EFG nodes are the source, the sink, the included Φs and the SPR
occurrences; Φ-operand edges are parallel edges, not nodes, so the minimum
possible non-empty EFG has exactly 4 nodes — the fact Figure 11's
histogram rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mcssapre.reduction import ReducedGraph
from repro.core.ssapre.frg import PhiNode, RealOcc
from repro.flownet.network import INFINITE, FlowNetwork
from repro.profiles.profile import ExecutionProfile

SOURCE = "__source__"
SINK = "__sink__"


@dataclass
class EFG:
    """The essential flow graph plus bookkeeping for cut interpretation."""

    network: FlowNetwork
    reduced: ReducedGraph
    #: payloads: edge.payload is a PhiOperand (insertable edge) or a
    #: RealOcc (type 2 / sink edge).
    node_count: int = 0
    edge_count: int = 0

    def describe(self) -> str:
        lines = [f"EFG for {self.reduced.frg.expr}:"]
        for edge in self.network.edges:
            cap = "inf" if edge.infinite else str(edge.capacity)
            lines.append(f"  {edge.src} -> {edge.dst}  [{cap}]")
        return "\n".join(lines)


def _phi_node_name(phi: PhiNode) -> str:
    return f"phi:{phi.label}:h{phi.version}"


def _occ_node_name(occ: RealOcc) -> str:
    return f"occ:{occ.label}:{occ.stmt_index}:h{occ.version}"


def build_efg(reduced: ReducedGraph, profile: ExecutionProfile) -> EFG | None:
    """Form the single-source single-sink flow network (steps 5 and 6).

    Returns ``None`` when the reduced graph has no SPR occurrence (nothing
    to optimise speculatively).  Only ``profile.node_freq`` is consulted.
    """
    if reduced.is_empty():
        return None

    network = FlowNetwork(SOURCE, SINK)
    phi_names: dict[int, str] = {}
    for phi in reduced.phis:
        name = _phi_node_name(phi)
        phi_names[id(phi)] = name
        network.add_node(name)

    # Step 5: source edges to every ⊥ operand of an included Φ.
    for operand in reduced.bottom_operands:
        weight = profile.node(operand.pred)
        network.add_edge(
            SOURCE, phi_names[id(operand.phi)], weight, payload=operand
        )

    # Type 1 edges: def Φ -> operand of another included Φ.
    for edge in reduced.type1_edges:
        src = phi_names[id(edge.source_phi)]
        dst = phi_names[id(edge.target_phi)]
        weight = profile.node(edge.operand.pred)
        network.add_edge(src, dst, weight, payload=edge.operand)

    # Type 2 edges and step 6 sink edges.
    for edge in reduced.type2_edges:
        src = phi_names[id(edge.source_phi)]
        occ_name = _occ_node_name(edge.occ)
        weight = profile.node(edge.occ.label)
        network.add_edge(src, occ_name, weight, payload=edge.occ)
        network.add_edge(occ_name, SINK, INFINITE, payload=edge.occ)

    network.freeze()
    return EFG(
        network=network,
        reduced=reduced,
        node_count=network.node_count(),
        edge_count=network.edge_count(),
    )
