"""Dominator-based global value numbering (Briggs/Simpson style).

A scoped hash table keyed on ``(op, value-number(s))`` is carried down the
dominator tree: any computation whose value number was already defined by
a dominating instruction is replaced with a copy of that instruction's
target.  Commutative operators canonicalise their operand order; copies
alias their source's value number; constants get per-value numbers, so
``x = 3`` and ``y = 3`` share one value.

GVN and PRE overlap but differ (the classic comparison):

* GVN is *value-based* — it sees through copies and commuted operands,
  catching redundancies that lexical PRE misses;
* PRE is *path-sensitive* — it removes partial redundancies by inserting
  on the cheap paths, which GVN (requiring dominance) cannot.

``tests/opt/test_gvn.py`` demonstrates both separations and that running
GVN before PRE is never worse than PRE alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis import dominator_tree_of
from repro.ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.ir.instructions import Assign, BinOp, Load, UnaryOp
from repro.ir.ops import BINARY_OPS
from repro.ir.values import Const, Operand, Var
from repro.ssa.ssa_verifier import is_ssa


@dataclass
class GVNResult:
    replaced: int = 0
    phis_folded: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.replaced or self.phis_folded)


def global_value_numbering(
    func: Function, cache: "AnalysisCache | None" = None
) -> GVNResult:
    """Run dominator-scoped GVN in place on an SSA function."""
    if not is_ssa(func):
        raise ValueError("GVN requires SSA input")
    domtree = dominator_tree_of(func, cache)
    result = GVNResult()

    #: value number of each SSA variable / constant (ints, densely issued)
    value_of: dict[object, int] = {}
    next_number = [0]

    def fresh_number() -> int:
        next_number[0] += 1
        return next_number[0]

    def number_of(operand: Operand) -> int:
        key: object
        if isinstance(operand, Const):
            key = ("const", operand.value)
        else:
            key = operand
        if key not in value_of:
            value_of[key] = fresh_number()
        return value_of[key]

    for param in func.params:
        number_of(param)

    #: scoped expression table: (op, vn...) -> representative Var,
    #: maintained as a stack of dicts along the dominator walk.
    scopes: list[dict[tuple, Var]] = [{}]

    def lookup(key: tuple) -> Var | None:
        for scope in reversed(scopes):
            if key in scope:
                return scope[key]
        return None

    def expression_key(rhs) -> tuple | None:
        if isinstance(rhs, BinOp):
            left, right = number_of(rhs.left), number_of(rhs.right)
            if BINARY_OPS[rhs.op].commutative and right < left:
                left, right = right, left
            return (rhs.op, left, right)
        if isinstance(rhs, UnaryOp):
            return (rhs.op, number_of(rhs.operand))
        return None

    def visit(label: str) -> None:
        block = func.blocks[label]
        for phi in block.phis:
            # A phi whose arguments all share one value number is that
            # value; otherwise it defines a fresh number.  (Arguments from
            # back edges may not be numbered yet — treat those as fresh.)
            numbers = set()
            for arg in phi.args.values():
                if isinstance(arg, Const):
                    numbers.add(number_of(arg))
                elif arg in value_of:
                    numbers.add(value_of[arg])
                else:
                    numbers.add(-id(arg))  # unnumbered: unknown, distinct
            if len(numbers) == 1 and (n := numbers.pop()) > 0:
                value_of[phi.target] = n
                result.phis_folded += 1
            else:
                number_of(phi.target)
        for stmt in block.body:
            if not isinstance(stmt, Assign):
                continue
            rhs = stmt.rhs
            if isinstance(rhs, (Var, Const)):
                value_of[stmt.target] = number_of(rhs)
                continue
            if isinstance(rhs, Load):
                # Memory reads are never value-numbered here: a dominating
                # load is only reusable when no may-aliasing store
                # intervenes, which a scoped hash table cannot see.  PRE
                # (with its store kill sets) owns load redundancy.
                number_of(stmt.target)
                continue
            key = expression_key(rhs)
            assert key is not None
            existing = lookup(key)
            if existing is not None:
                stmt.rhs = existing
                value_of[stmt.target] = number_of(existing)
                result.replaced += 1
            else:
                number_of(stmt.target)
                scopes[-1][key] = stmt.target

    # Dominator-tree walk with scope push/pop.
    assert func.entry is not None
    walk: list[tuple[str, bool]] = [(func.entry, False)]
    while walk:
        label, leaving = walk.pop()
        if leaving:
            scopes.pop()
            continue
        scopes.append({})
        visit(label)
        walk.append((label, True))
        for child in reversed(domtree.children[label]):
            walk.append((child, False))
    if result.changed:
        func.mark_code_mutated()
    return result
