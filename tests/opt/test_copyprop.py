"""Tests for SSA copy propagation."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.ir.values import Const, Var
from repro.opt.copyprop import propagate_copies
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa
from repro.ssa.ssa_verifier import verify_ssa
from tests.conftest import as_ssa


def test_requires_ssa(straightline):
    with pytest.raises(ValueError):
        propagate_copies(straightline)


def test_direct_copy_forwarded():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.copy("x", "a")
    b.assign("y", "add", "x", 1)
    b.ret("y")
    func = b.build()
    construct_ssa(func)
    rewired = propagate_copies(func)
    assert rewired >= 1
    add = func.blocks["entry"].body[-1]
    assert add.rhs.left == Var("a", 1)
    verify_ssa(func)


def test_copy_chain_resolves_to_root():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.copy("x", "a")
    b.copy("y", "x")
    b.copy("z", "y")
    b.assign("w", "add", "z", "z")
    b.ret("w")
    func = b.build()
    construct_ssa(func)
    propagate_copies(func)
    add = func.blocks["entry"].body[-1]
    assert add.rhs.left == Var("a", 1)
    assert add.rhs.right == Var("a", 1)


def test_constant_copies_forwarded():
    b = FunctionBuilder("f")
    b.block("entry")
    b.copy("x", 41)
    b.assign("y", "add", "x", 1)
    b.ret("y")
    func = b.build()
    construct_ssa(func)
    propagate_copies(func)
    add = func.blocks["entry"].body[-1]
    assert add.rhs.left == Const(41)


def test_single_source_phi_folded(diamond):
    """A phi whose args all resolve to the same value is an alias."""
    b = FunctionBuilder("f", params=["a", "c"])
    b.block("entry")
    b.branch("c", "l", "r")
    b.block("l")
    b.copy("x", "a")
    b.jump("j")
    b.block("r")
    b.copy("x", "a")
    b.jump("j")
    b.block("j")
    b.assign("y", "add", "x", 1)
    b.ret("y")
    func = b.build()
    construct_ssa(func)
    propagate_copies(func)
    add = func.blocks["j"].body[-1]
    assert add.rhs.left == Var("a", 1)


def test_real_phi_not_folded(diamond):
    ssa = as_ssa(diamond)
    propagate_copies(ssa)
    verify_ssa(ssa)
    # The diamond's join phi merges genuinely different values (z's
    # operands come straight from params, but x/y phi if present merges
    # distinct defs) — semantics must hold either way.
    for args in ([1, 2, 1], [1, 2, 0]):
        assert run_function(ssa, args).observable() == run_function(
            as_ssa(diamond), args
        ).observable()


def test_pre_output_cleanup(while_loop):
    """After MC-SSAPRE, copy propagation forwards the reload copies."""
    from repro.core.mcssapre.driver import run_mc_ssapre

    ssa = as_ssa(while_loop)
    run0 = run_function(copy.deepcopy(ssa), [2, 3, 10])
    run_mc_ssapre(ssa, run0.profile.nodes_only())
    rewired = propagate_copies(ssa)
    assert rewired > 0
    verify_ssa(ssa)
    assert run_function(ssa, [2, 3, 10]).observable() == run0.observable()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=30_000))
def test_semantics_preserved(seed):
    spec = ProgramSpec(name="cp", seed=seed, max_depth=2)
    prog = generate_program(spec)
    construct_ssa(prog.func)
    args = random_args(spec, 1)
    expected = run_function(copy.deepcopy(prog.func), args).observable()
    propagate_copies(prog.func)
    verify_ssa(prog.func)
    assert run_function(prog.func, args).observable() == expected


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=30_000))
def test_idempotent(seed):
    spec = ProgramSpec(name="cpi", seed=seed, max_depth=2)
    prog = generate_program(spec)
    construct_ssa(prog.func)
    propagate_copies(prog.func)
    assert propagate_copies(prog.func) == 0
