"""Tests for the lazy-code-motion baseline, including the safe-optimality
cross-check against SSAPRE (both claim the LCM optimum)."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lcm import run_lcm
from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.pipeline import prepare, run_experiment
from repro.profiles.counts import normalize_expr_counts
from repro.profiles.interp import run_function
from tests.conftest import build_diamond, build_while_loop

AB = ("add", ("var", "a"), ("var", "b"))


class TestBasics:
    def test_rejects_ssa(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        with pytest.raises(ValueError):
            run_lcm(diamond)

    def test_diamond_partial_redundancy_removed(self):
        func = prepare(build_diamond(), restructure=False)
        result = run_lcm(func, validate=True)
        assert result.total_insert_edges == 1
        taken = run_function(func, [3, 4, 1])
        assert taken.expr_counts[AB] == 1

    def test_do_while_invariant_hoisted(self):
        func = prepare(build_while_loop(), restructure=True)
        run_lcm(func, validate=True)
        run = run_function(func, [2, 3, 25])
        assert run.expr_counts[AB] == 1

    def test_never_speculates_while_loop(self):
        """Unrestructured while loop: hoisting would be unsafe (zero-trip
        executions must not evaluate a+b), so LCM leaves it in the body."""
        func = prepare(build_while_loop(), restructure=False)
        run_lcm(func, validate=True)
        assert run_function(func, [2, 3, 25]).expr_counts[AB] == 25
        assert run_function(func, [2, 3, 0]).expr_counts.get(AB, 0) == 0

    def test_local_cse(self, straightline):
        func = prepare(straightline, restructure=False)
        run_lcm(func)
        run = run_function(func, [2, 3])
        assert run.expr_counts[AB] == 1
        assert run.return_value == 25


class TestSafety:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=40_000),
        st.integers(min_value=0, max_value=3),
    )
    def test_never_slower_on_any_input(self, seed, argseed):
        spec = ProgramSpec(name="lcm", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        work = copy.deepcopy(prepared)
        run_lcm(work, validate=True)
        args = random_args(spec, argseed)
        before = run_function(prepared, args)
        after = run_function(work, args)
        assert after.observable() == before.observable()
        b = normalize_expr_counts(before.expr_counts)
        a = normalize_expr_counts(after.expr_counts)
        for key, count in a.items():
            assert count <= b.get(key, 0), key


class TestAgainstSSAPRE:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=40_000))
    def test_counts_match_safe_ssapre(self, seed):
        """Two independent implementations of the safe optimum — Knoop's
        bit-vector LCM and Kennedy's SSA-based SSAPRE — must agree on the
        dynamic evaluation count of every expression class."""
        spec = ProgramSpec(name="lvs", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        experiment = run_experiment(
            prog.func, args, args, variants=("ssapre", "lcm")
        )
        a = normalize_expr_counts(experiment.measurements["ssapre"].expr_counts)
        b = normalize_expr_counts(experiment.measurements["lcm"].expr_counts)
        for key in set(a) | set(b):
            assert a.get(key, 0) == b.get(key, 0), key

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=40_000))
    def test_mc_ssapre_at_least_as_good(self, seed):
        spec = ProgramSpec(name="lvm", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        experiment = run_experiment(
            prog.func, args, args, variants=("lcm", "mc-ssapre")
        )
        assert experiment.cost("mc-ssapre") <= experiment.cost("lcm")
