"""Tests for Function and BasicBlock."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Assign, Return
from repro.ir.values import Var


class TestBlockManagement:
    def test_first_block_becomes_entry(self):
        f = Function("f")
        f.add_block("start")
        assert f.entry == "start"
        assert f.entry_block.label == "start"

    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(ValueError):
            f.add_block("a")

    def test_cannot_remove_entry(self):
        f = Function("f")
        f.add_block("a")
        f.add_block("b")
        with pytest.raises(ValueError):
            f.remove_block("a")
        f.remove_block("b")
        assert "b" not in f.blocks

    def test_entry_block_raises_when_empty(self):
        with pytest.raises(ValueError):
            Function("f").entry_block


class TestFreshNames:
    def test_fresh_label_avoids_collisions(self):
        f = Function("f")
        f.add_block("B1")
        label = f.fresh_label("B")
        assert label not in ("B1",)
        f.add_block(label)
        assert f.fresh_label("B") != label

    def test_fresh_temp_avoids_existing_names(self):
        f = Function("f", [Var("a")])
        block = f.add_block("entry")
        block.body.append(Assign(Var("%t1"), Var("a")))
        temp = f.fresh_temp()
        assert temp.name != "%t1"
        assert temp.name != "a"


class TestIteration:
    def test_len_and_iter(self, diamond):
        labels = [b.label for b in diamond]
        assert len(diamond) == len(labels) == 4

    def test_statement_count(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.copy("x", 1)
        b.copy("y", 2)
        b.ret("x")
        func = b.build()
        # 2 body statements + 1 terminator
        assert func.statement_count() == 3

    def test_defined_vars_includes_phis_and_assigns(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        join = diamond.blocks["join"]
        defined = list(join.defined_vars())
        assert any(v.name == "z" for v in defined)

    def test_str_contains_all_blocks(self, diamond):
        text = str(diamond)
        for label in diamond.blocks:
            assert f"{label}:" in text


def test_default_terminator_is_return():
    f = Function("f")
    block = f.add_block("entry")
    assert isinstance(block.terminator, Return)


class TestClone:
    def test_clone_is_deep_for_mutable_state(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        clone = diamond.clone()
        assert str(clone) == str(diamond)
        assert clone.blocks is not diamond.blocks
        for label in diamond.blocks:
            orig, copy_ = diamond.blocks[label], clone.blocks[label]
            assert orig is not copy_
            assert orig.body is not copy_.body
            assert all(a is not b for a, b in zip(orig.body, copy_.body))
            assert all(a is not b for a, b in zip(orig.phis, copy_.phis))
            assert orig.terminator is not copy_.terminator

    def test_clone_matches_deepcopy_output(self, while_loop):
        import copy

        assert str(while_loop.clone()) == str(copy.deepcopy(while_loop))

    def test_mutating_clone_leaves_original_untouched(self, while_loop):
        clone = while_loop.clone()
        clone.blocks["body"].body.clear()
        clone.add_block("extra")
        assert while_loop.blocks["body"].body
        assert "extra" not in while_loop.blocks

    def test_clone_rename_and_counters(self, diamond):
        renamed = diamond.clone(name="other")
        assert renamed.name == "other"
        assert renamed.params == diamond.params
        assert renamed.entry == diamond.entry
        # A fresh label on the clone must not collide with existing ones.
        label = renamed.add_block().label
        assert label not in diamond.blocks


class TestGenerations:
    def test_add_and_remove_block_bump_cfg_generation(self, diamond):
        cfg_gen, code_gen = diamond.cfg_generation, diamond.code_generation
        diamond.add_block("g1")
        assert diamond.cfg_generation > cfg_gen
        assert diamond.code_generation > code_gen
        cfg_gen = diamond.cfg_generation
        diamond.remove_block("g1")
        assert diamond.cfg_generation > cfg_gen

    def test_code_generation_never_lags_cfg(self, diamond):
        diamond.mark_code_mutated()
        assert diamond.code_generation > diamond.cfg_generation - 1
        diamond.mark_cfg_mutated()
        assert diamond.code_generation >= diamond.cfg_generation
