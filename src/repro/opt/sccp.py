"""Sparse conditional constant propagation (Wegman & Zadeck).

The classic SSA optimisation: a three-level lattice (⊤ unknown, constant,
⊥ varying) is propagated along SSA def-use edges, while CFG edges are only
considered once proven executable — so code guarded by provably-constant
branches neither executes nor pollutes the phi meets.

After the analysis the transformer:

* replaces every use of a constant-valued variable by the constant,
* rewrites assignments of constant-valued expressions into constant
  copies,
* folds conditional branches whose condition is constant into jumps,
* deletes the blocks that become unreachable.

Running SCCP before PRE shrinks expression classes (constant operands
fold away) and removes never-taken paths, both of which sharpen the
profile-driven placement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ir import ops as op_tables
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, Operand, Var
from repro.ssa.ssa_verifier import is_ssa

_TOP = "top"
_BOTTOM = "bottom"
# lattice value: _TOP | int (constant) | _BOTTOM


@dataclass
class SCCPResult:
    """What the pass did, for reporting and tests."""

    constants_found: int = 0
    uses_replaced: int = 0
    branches_folded: int = 0
    blocks_removed: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.uses_replaced or self.branches_folded)


def sparse_conditional_constant_propagation(
    func: Function, cache: "AnalysisCache | None" = None
) -> SCCPResult:
    """Run SCCP in place on an SSA function."""
    if not is_ssa(func):
        raise ValueError("SCCP requires SSA input")

    value: dict[Var, object] = {}
    for param in func.params:
        value[param] = _BOTTOM  # parameters are runtime inputs

    # def sites and use sites for the sparse SSA worklist.
    defining_stmt: dict[Var, tuple[str, object]] = {}
    uses: dict[Var, list[tuple[str, object]]] = {}
    for label, block in func.blocks.items():
        for phi in block.phis:
            defining_stmt[phi.target] = (label, phi)
            for arg in phi.args.values():
                if isinstance(arg, Var):
                    uses.setdefault(arg, []).append((label, phi))
        for stmt in block.body:
            if isinstance(stmt, Assign):
                defining_stmt[stmt.target] = (label, stmt)
            for operand in stmt.used_operands():
                if isinstance(operand, Var):
                    uses.setdefault(operand, []).append((label, stmt))
        for operand in block.terminator.used_operands():
            if isinstance(operand, Var):
                uses.setdefault(operand, []).append((label, block.terminator))

    def lattice_of(operand: Operand):
        if isinstance(operand, Const):
            return operand.value
        return value.get(operand, _TOP)

    executable_edges: set[tuple[str, str]] = set()
    executable_blocks: set[str] = set()
    flow_worklist: deque[tuple[str | None, str]] = deque()
    ssa_worklist: deque[Var] = deque()

    def meet(a, b):
        if a == _TOP:
            return b
        if b == _TOP:
            return a
        if a == b:
            return a
        return _BOTTOM

    def lower(var: Var, new) -> None:
        old = value.get(var, _TOP)
        merged = meet(old, new)
        if merged != old:
            value[var] = merged
            ssa_worklist.append(var)

    def eval_phi(label: str, phi: Phi) -> None:
        result = _TOP
        for pred, arg in phi.args.items():
            if (pred, label) in executable_edges:
                result = meet(result, lattice_of(arg))
        lower(phi.target, result)

    def eval_assign(stmt: Assign) -> None:
        rhs = stmt.rhs
        if isinstance(rhs, BinOp):
            left, right = lattice_of(rhs.left), lattice_of(rhs.right)
            if left == _BOTTOM or right == _BOTTOM:
                lower(stmt.target, _BOTTOM)
            elif left == _TOP or right == _TOP:
                pass  # stays top until inputs resolve
            else:
                lower(stmt.target, op_tables.BINARY_OPS[rhs.op].func(left, right))
        elif isinstance(rhs, UnaryOp):
            operand = lattice_of(rhs.operand)
            if operand == _BOTTOM:
                lower(stmt.target, _BOTTOM)
            elif operand != _TOP:
                lower(stmt.target, op_tables.UNARY_OPS[rhs.op].func(operand))
        elif isinstance(rhs, Load):
            # Memory contents are not tracked by the lattice (stores may
            # rewrite any may-aliasing cell): loads are runtime inputs.
            lower(stmt.target, _BOTTOM)
        else:
            lower(stmt.target, lattice_of(rhs))

    def eval_terminator(label: str) -> None:
        term = func.blocks[label].terminator
        if isinstance(term, Jump):
            flow_worklist.append((label, term.target))
        elif isinstance(term, CondJump):
            cond = lattice_of(term.cond)
            if cond == _BOTTOM:
                flow_worklist.append((label, term.true_target))
                flow_worklist.append((label, term.false_target))
            elif cond != _TOP:
                taken = term.true_target if cond != 0 else term.false_target
                flow_worklist.append((label, taken))

    def visit_block(label: str) -> None:
        block = func.blocks[label]
        for phi in block.phis:
            eval_phi(label, phi)
        for stmt in block.body:
            if isinstance(stmt, Assign):
                eval_assign(stmt)
        eval_terminator(label)

    assert func.entry is not None
    flow_worklist.append((None, func.entry))
    while flow_worklist or ssa_worklist:
        while flow_worklist:
            pred, label = flow_worklist.popleft()
            edge = (pred, label)
            if pred is not None:
                if edge in executable_edges:
                    # Re-evaluate only the phis (a new incoming edge).
                    continue
                executable_edges.add((pred, label))
                for phi in func.blocks[label].phis:
                    eval_phi(label, phi)
            if label not in executable_blocks:
                executable_blocks.add(label)
                visit_block(label)
        while ssa_worklist:
            var = ssa_worklist.popleft()
            for label, user in uses.get(var, ()):  # sparse propagation
                if label not in executable_blocks:
                    continue
                if isinstance(user, Phi):
                    eval_phi(label, user)
                elif isinstance(user, Assign):
                    eval_assign(user)
                else:  # a terminator: may reveal new executable edges
                    eval_terminator(label)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    result = SCCPResult()
    constants = {
        var: val
        for var, val in value.items()
        if val not in (_TOP, _BOTTOM)
    }
    result.constants_found = len(constants)

    def rewrite(operand: Operand) -> Operand:
        if isinstance(operand, Var) and operand in constants:
            result.uses_replaced += 1
            return Const(constants[operand])  # type: ignore[arg-type]
        return operand

    for label in list(executable_blocks):
        block = func.blocks[label]
        for phi in block.phis:
            phi.args = {
                pred: rewrite(arg)
                for pred, arg in phi.args.items()
            }
        for stmt in block.body:
            if isinstance(stmt, Assign):
                if stmt.target in constants:
                    stmt.rhs = Const(constants[stmt.target])  # type: ignore[arg-type]
                    continue
                rhs = stmt.rhs
                if isinstance(rhs, BinOp):
                    rhs.left = rewrite(rhs.left)
                    rhs.right = rewrite(rhs.right)
                elif isinstance(rhs, UnaryOp):
                    rhs.operand = rewrite(rhs.operand)
                elif isinstance(rhs, Load):
                    rhs.index = rewrite(rhs.index)
                else:
                    stmt.rhs = rewrite(rhs)
            elif isinstance(stmt, Store):
                stmt.index = rewrite(stmt.index)
                stmt.value = rewrite(stmt.value)
            else:
                stmt.value = rewrite(stmt.value)
        term = block.terminator
        if isinstance(term, CondJump):
            cond = lattice_of(term.cond)
            if cond not in (_TOP, _BOTTOM):
                block.terminator = Jump(
                    term.true_target if cond != 0 else term.false_target
                )
                result.branches_folded += 1
            else:
                term.cond = rewrite(term.cond)
        elif isinstance(term, Return) and term.value is not None:
            term.value = rewrite(term.value)

    # Drop blocks no longer reachable after branch folding, fixing phis.
    removed = remove_unreachable_blocks(func)
    result.blocks_removed = len(removed)
    if result.branches_folded:
        func.mark_cfg_mutated()
    elif result.uses_replaced or result.constants_found:
        func.mark_code_mutated()
    return result
