"""Safety of the non-speculative SSAPRE (Kennedy's safety criterion).

Safe PRE must never increase the number of evaluations of any expression
on ANY input — not just the profiled one.  Speculative variants are
allowed to lose on adversarial inputs; a test documents that too.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.pipeline import compile_variant, prepare
from repro.profiles.interp import run_function
from tests.core.test_optimality import normalize_counts


class TestSafePRENeverLoses:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=20_000),
        st.integers(min_value=0, max_value=5),
    )
    def test_total_evaluations_never_increase(self, seed, argseed):
        spec = ProgramSpec(name="safe", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        compiled = compile_variant(prepared, "ssapre")
        args = random_args(spec, argseed)
        before = normalize_counts(run_function(prepared, args).expr_counts)
        after = normalize_counts(run_function(compiled.func, args).expr_counts)
        for key, count in after.items():
            assert count <= before.get(key, 0), (
                f"safe SSAPRE increased evaluations of {key} "
                f"({before.get(key, 0)} -> {count}) on input {args}"
            )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=20_000))
    def test_dynamic_cost_never_increases(self, seed):
        spec = ProgramSpec(name="safec", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        compiled = compile_variant(prepared, "ssapre")
        for argseed in range(3):
            args = random_args(spec, argseed)
            before = run_function(prepared, args).dynamic_cost
            after = run_function(compiled.func, args).dynamic_cost
            assert after <= before


class TestSpeculationCanLose:
    def test_mc_ssapre_loses_on_adversarial_input(self):
        """With a profile that says the computing path is hot, MC-SSAPRE
        speculates; an input that then takes the other path pays for the
        speculated computation.  This is the expected FDO trade-off the
        paper discusses (Section 1), not a bug."""
        b = FunctionBuilder("adv", params=["a", "b", "p"])
        b.block("entry")
        b.branch("p", "compute", "skip")
        b.block("compute")
        b.assign("x", "add", "a", "b")
        b.output("x")
        b.jump("join")
        b.block("skip")
        b.jump("join")
        b.block("join")
        b.branch("p", "use", "done")
        b.block("use")
        b.assign("y", "add", "a", "b")
        b.output("y")
        b.jump("done")
        b.block("done")
        b.ret(0)
        func = b.build()
        prepared = prepare(func, restructure=False)
        # Train with p=1 (hot path computes a+b twice -> speculate).
        train = run_function(prepared, [1, 2, 1])
        compiled = compile_variant(prepared, "mc-ssapre", profile=train.profile)
        ab = ("add", ("var", "a"), ("var", "b"))
        # Matching input: speculation wins (or ties).
        match = normalize_counts(
            run_function(compiled.func, [1, 2, 1]).expr_counts
        )
        assert match.get(ab, 0) <= 2
        # Adversarial input p=0: the original program computes a+b zero
        # times; the speculated insertion may compute it once.
        adversarial = normalize_counts(
            run_function(compiled.func, [1, 2, 0]).expr_counts
        )
        baseline = normalize_counts(
            run_function(prepared, [1, 2, 0]).expr_counts
        )
        assert baseline.get(ab, 0) == 0
        # Document the cost of speculation: at most one extra eval, and
        # the observable behaviour is still identical.
        assert adversarial.get(ab, 0) <= 1
        assert (
            run_function(compiled.func, [1, 2, 0]).observable()
            == run_function(prepared, [1, 2, 0]).observable()
        )
