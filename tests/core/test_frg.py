"""Tests for FRG construction (SSAPRE steps 1-2 + MC rename extensions)."""

from repro.core.ssapre.frg import (
    ExprClass,
    build_frg,
    build_frgs,
    collect_expr_classes,
)
from repro.ir.builder import FunctionBuilder
from tests.conftest import as_ssa


AB = ExprClass(("add", ("var", "a"), ("var", "b")))


class TestCollectClasses:
    def test_first_occurrence_order(self, straightline):
        classes = collect_expr_classes(straightline)
        assert [str(c) for c in classes] == ["add(a, b)", "mul(x, y)"]

    def test_versions_collapse(self, diamond):
        ssa = as_ssa(diamond)
        classes = collect_expr_classes(ssa)
        assert sum(1 for c in classes if c.key == AB.key) == 1

    def test_trapping_flag(self):
        assert ExprClass(("div", ("var", "a"), ("var", "b"))).trapping
        assert not AB.trapping


class TestDiamondFRG:
    def test_phi_at_join(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        assert len(frg.phis) == 1
        assert frg.phis[0].label == "join"

    def test_operands(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        phi = frg.phis[0]
        by_pred = {op.pred: op for op in phi.operands}
        assert not by_pred["left"].is_bottom
        assert by_pred["left"].has_real_use
        assert by_pred["right"].is_bottom

    def test_join_occurrence_uses_phi(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        join_occ = [o for o in frg.real_occs if o.label == "join"][0]
        assert join_occ.def_node is frg.phis[0]
        assert not join_occ.rg_excluded

    def test_branch_occurrence_defines(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        left_occ = [o for o in frg.real_occs if o.label == "left"][0]
        assert left_occ.def_node is None


class TestRgExcluded:
    def test_straightline_second_occurrence_excluded(self, straightline):
        frg = build_frg(as_ssa(straightline), AB)
        occs = sorted(frg.real_occs, key=lambda o: o.stmt_index)
        assert not occs[0].rg_excluded
        assert occs[1].rg_excluded
        assert occs[1].crossing_real is occs[0]
        assert occs[1].version == occs[0].version

    def test_dominating_block_excludes_dominated(self):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("y", "add", "a", "b")  # dominated by entry's occurrence
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.ret("x")
        frg = build_frg(as_ssa(b.build()), AB)
        excluded = [o for o in frg.real_occs if o.rg_excluded]
        assert [o.label for o in excluded] == ["l"]

    def test_use_of_phi_version_not_excluded_first_time(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        assert all(
            not o.rg_excluded for o in frg.real_occs
        ), "first crossings are not excluded"


class TestVersioning:
    def test_kill_creates_new_version(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.assign("a", "add", "a", 1)
        b.assign("y", "add", "a", "b")
        b.ret("y")
        frg = build_frg(as_ssa(b.build()), AB)
        versions = [o.version for o in frg.real_occs if o.stmt.target.name in "xy"]
        assert len(set(versions)) == 2

    def test_phi_inserted_at_operand_variable_phi(self):
        """A variable phi of an operand forces an h-phi at the same block."""
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("a", "add", "a", 1)  # kills a+b on this path
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.assign("y", "add", "a", "b")
        b.ret("y")
        frg = build_frg(as_ssa(b.build()), AB)
        join_phis = [phi for phi in frg.phis if phi.label == "j"]
        assert len(join_phis) == 1
        by_pred = {op.pred: op for op in join_phis[0].operands}
        # Value killed along l: the operand is bottom there.
        assert by_pred["l"].is_bottom
        assert not by_pred["r"].is_bottom

    def test_loop_phi_operand_links(self, while_loop):
        frg = build_frg(as_ssa(while_loop), AB)
        # a+b is invariant: its operands have no phis, and the only real
        # occurrence (in body) defines a new version; no h-phi is needed
        # for redundancy but IDF of body includes head.
        head_phi = frg.phi_at("head")
        assert head_phi is not None
        by_pred = {op.pred: op for op in head_phi.operands}
        assert by_pred["entry"].is_bottom
        back = by_pred["body"]
        assert not back.is_bottom
        assert back.has_real_use  # the body occurrence crossed


class TestBuildAll:
    def test_build_frgs_covers_all_classes(self, straightline):
        ssa = as_ssa(straightline)
        frgs = build_frgs(ssa)
        assert set(frgs) == {c.key for c in collect_expr_classes(ssa)}

    def test_single_class_matches_batch(self, diamond):
        ssa = as_ssa(diamond)
        single = build_frg(ssa, AB)
        batch = build_frgs(ssa)[AB.key]
        assert len(single.phis) == len(batch.phis)
        assert len(single.real_occs) == len(batch.real_occs)
        assert [o.version for o in single.real_occs] == [
            o.version for o in batch.real_occs
        ]

    def test_node_count(self, diamond):
        frg = build_frg(as_ssa(diamond), AB)
        assert frg.node_count() == len(frg.phis) + len(frg.real_occs)

    def test_describe_is_textual(self, diamond):
        text = build_frg(as_ssa(diamond), AB).describe()
        assert "FRG for add(a, b)" in text
