"""End-to-end checks of the curated running example (paper Figures 2-8)."""

import copy

from repro.core.mcssapre.cut import solve_min_cut
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.core.mcssapre.efg import build_efg
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.examples_data.running_example import AB_KEY, CD_KEY, build_running_example
from repro.ir.transforms import split_critical_edges
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa


def in_ssa():
    example = build_running_example()
    func = copy.deepcopy(example.func)
    split_critical_edges(func)
    construct_ssa(func)
    return example, func


class TestStep2RgExcluded:
    def test_dominated_occurrence_marked(self):
        example, func = in_ssa()
        frg = build_frgs(func, [ExprClass(AB_KEY)])[AB_KEY]
        excluded = [o for o in frg.real_occs if o.rg_excluded]
        assert [o.stmt.target.name for o in excluded] == ["x2"]


class TestABExpression:
    """The tie: source cut (insert at B3) vs type-2 cut (compute at B5)."""

    def analyse(self, sink_closest=True):
        example, func = in_ssa()
        frg = build_frgs(func, [ExprClass(AB_KEY)])[AB_KEY]
        solve_step3(frg)
        reduced = build_reduced_graph(frg)
        efg = build_efg(reduced, example.profile)
        decision = solve_min_cut(efg, sink_closest=sink_closest)
        return efg, decision

    def test_efg_is_minimal_four_nodes(self):
        efg, _ = self.analyse()
        assert efg.node_count == 4

    def test_two_tied_cuts_of_value_ten(self):
        _, late = self.analyse(sink_closest=True)
        _, early = self.analyse(sink_closest=False)
        assert late.cut.value == early.cut.value == 10

    def test_reverse_labelling_picks_later_cut(self):
        _, late = self.analyse(sink_closest=True)
        assert late.insert_operands == []
        assert [o.label for o in late.in_place_occs] == ["B5"]

    def test_source_side_picks_early_cut(self):
        _, early = self.analyse(sink_closest=False)
        assert [o.pred for o in early.insert_operands] == ["B3"]
        assert early.in_place_occs == []


class TestCDExpression:
    """Speculative loop hoist: 50 at the preheader beats 400 in the body."""

    def test_insertion_at_preheader(self):
        example, func = in_ssa()
        frg = build_frgs(func, [ExprClass(CD_KEY)])[CD_KEY]
        solve_step3(frg)
        reduced = build_reduced_graph(frg)
        efg = build_efg(reduced, example.profile)
        decision = solve_min_cut(efg)
        assert decision.cut.value == 50
        assert [o.pred for o in decision.insert_operands] == ["B7"]

    def test_safe_pre_does_not_hoist(self):
        from repro.core.ssapre.driver import run_ssapre

        example, func = in_ssa()
        run_ssapre(func)
        # Reference run: c+d still evaluated once per loop iteration.
        run = run_function(func, [1, 2, 1, 5])
        assert run.expr_counts[CD_KEY] == 5

    def test_mc_ssapre_hoists(self):
        example, func = in_ssa()
        run_mc_ssapre(func, example.profile, validate=True)
        run = run_function(func, [1, 2, 1, 5])
        assert run.expr_counts[CD_KEY] == 1


class TestWholeExample:
    def test_semantics_preserved_end_to_end(self):
        example, func = in_ssa()
        inputs = [[1, 2, 1, 5], [1, 2, 0, 5], [3, 4, 1, 0], [3, 4, 0, 0]]
        references = [
            run_function(copy.deepcopy(func), args).observable()
            for args in inputs
        ]
        run_mc_ssapre(func, example.profile, validate=True)
        for args, expected in zip(inputs, references):
            assert run_function(func, args).observable() == expected

    def test_total_dynamic_ab_count_under_profile_model(self):
        """Under the profile, the model predicts: B2 computes in place
        (40), B5 computes in place (10); x2's reload is free."""
        example, func = in_ssa()
        result = run_mc_ssapre(func, example.profile)
        ab_stats = [s for s in result.efg_stats if "add(a, b)" in s.expr]
        assert len(ab_stats) == 1
        assert ab_stats[0].cut_value == 10
