"""E5 — paper Figure 11: the distribution of EFG sizes over the suite.

Paper headline: non-empty EFGs cannot be smaller than 4 nodes; ~50% are
exactly 4; 86.5% are <= 10 nodes; 99.0% <= 50; 99.67% <= 100; counts taper
off fast.  The synthetic suite reproduces the same shape.
"""

import copy

from conftest import SUITE_SUBSET, emit

from repro.bench.figures import EFGSizeDistribution
from repro.bench.workloads import load_workload
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa


def efg_sizes_of(name: str) -> list[int]:
    workload = load_workload(name)
    prepared = prepare(workload.program.func)
    train = run_function(prepared, workload.train_args)
    ssa = copy.deepcopy(prepared)
    construct_ssa(ssa)
    result = run_mc_ssapre(ssa, train.profile.nodes_only())
    return result.efg_sizes()


def test_figure11_distribution(benchmark):
    benchmark.pedantic(
        efg_sizes_of, args=("perlbench",), rounds=1, iterations=1
    )

    dist = EFGSizeDistribution()
    for name in SUITE_SUBSET:
        dist.sizes.extend(efg_sizes_of(name))

    emit("Figure 11 (EFG size distribution)", dist.render())

    assert dist.total > 0
    # Structural floor proved in the paper's Section 5.2.
    assert dist.minimum >= 4
    # The sparse-representation claim: small EFGs dominate.
    assert dist.share_at(4) >= 0.25
    assert dist.cumulative_at_most(10) >= 0.80
    assert dist.cumulative_at_most(50) >= 0.95
