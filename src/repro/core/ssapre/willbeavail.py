"""SSAPRE step 4 — WillBeAvail (the safe, non-speculative version).

Computes, per Kennedy et al. [14]:

* ``can_be_avail(Φ)`` — the expression could be made available at the Φ by
  safe insertions alone: false when a ⊥ operand (or an operand whose value
  would itself require an unsafe insertion) appears at a non-down-safe Φ.
* ``later(Φ)`` — availability at the Φ could be postponed: no path into
  the Φ already computes the expression.  Inserting at "later" Φs would
  lengthen temporary live ranges without reducing computations.
* ``will_be_avail = can_be_avail ∧ ¬later``.

Finally the ``insert`` flag is set on every operand of a will-be-avail Φ
that needs a computation placed at the end of its predecessor block.

MC-SSAPRE replaces this entire step (and DownSafety) with its min-cut
steps 3–8; both paths converge on identical ``will_be_avail``/``insert``
semantics, which is why Finalize and CodeMotion are shared.
"""

from __future__ import annotations

from collections import deque

from repro.core.ssapre.frg import FRG, PhiNode


def compute_will_be_avail(frg: FRG) -> None:
    """Fill can_be_avail / later / will_be_avail / operand insert flags."""
    _compute_can_be_avail(frg)
    _compute_later(frg)
    for phi in frg.phis:
        phi.will_be_avail = phi.can_be_avail and not phi.later
    _mark_inserts(frg)


def _compute_can_be_avail(frg: FRG) -> None:
    for phi in frg.phis:
        phi.can_be_avail = True
    worklist: deque[PhiNode] = deque()
    for phi in frg.phis:
        if not phi.down_safe and any(op.is_bottom for op in phi.operands):
            phi.can_be_avail = False
            worklist.append(phi)
    while worklist:
        failed = worklist.popleft()
        for user in frg.phis:
            if not user.can_be_avail or user.down_safe:
                continue
            for operand in user.operands:
                if (
                    operand.def_node is failed
                    and not operand.has_real_use
                ):
                    user.can_be_avail = False
                    worklist.append(user)
                    break


def _compute_later(frg: FRG) -> None:
    for phi in frg.phis:
        phi.later = phi.can_be_avail
    worklist: deque[PhiNode] = deque()
    for phi in frg.phis:
        if phi.later and any(
            (not op.is_bottom) and op.has_real_use for op in phi.operands
        ):
            phi.later = False
            worklist.append(phi)
    while worklist:
        available = worklist.popleft()
        for user in frg.phis:
            if not user.later:
                continue
            for operand in user.operands:
                if operand.def_node is available and not operand.is_bottom:
                    user.later = False
                    worklist.append(user)
                    break


def _mark_inserts(frg: FRG) -> None:
    for phi in frg.phis:
        for operand in phi.operands:
            operand.insert = False
    for phi in frg.phis:
        if not phi.will_be_avail:
            continue
        for operand in phi.operands:
            if operand.is_bottom:
                operand.insert = True
            elif not operand.has_real_use:
                definer = operand.def_node
                if isinstance(definer, PhiNode) and not definer.will_be_avail:
                    operand.insert = True
