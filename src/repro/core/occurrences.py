"""The shared occurrence index — sparse, rank-annotated, incremental.

Both PRE drivers used to discover work with a one-shot scan
(:func:`repro.core.ssapre.frg.collect_expr_classes`), which makes them
blind to *second-order* redundancy: a composite expression whose operands
are rewritten into PRE temporaries by a lower-rank class's code motion
(``t1 = a+b; u = t1+c``) only becomes lexically redundant *after* that
motion has run.  This module provides the data structure the iterative
worklist engine (:mod:`repro.core.worklist`) is built on:

* one function-wide scan builds an index ``ExprKey → occurrences`` over
  every ``BinOp``/``UnaryOp`` right-hand side (the same population
  ``collect_expr_classes`` sees, so rank-0 behaviour is identical);
* every class carries a **rank** — its operand nesting depth through
  candidate definitions.  ``add(a, b)`` over source variables has rank 0;
  ``add(x, c)`` where some definition of ``x`` is itself a candidate
  occurrence has rank ``1 + rank(add(a, b))``, and so on through chains.
  Cycles (``x = x + 1``) contribute depth 0, so ranks are always finite;
* the index absorbs the statement-level deltas CodeMotion reports
  (insertions, removed statements, the ``x = t.v`` copies left behind by
  saves and reloads) and can rewrite the operands of indexed occurrences
  through those copies — the step that turns second-order redundancy into
  first-order redundancy for the next round, returning exactly the class
  keys that gained a rewritten occurrence (the *dirty* classes).

The index never touches the CFG: all updates are straight-line statement
bookkeeping, which is what lets the worklist engine keep every
CFG-derived analysis alive across rounds (see the ``preserves()``
contract notes in :mod:`repro.core.worklist`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ssapre.frg import ExprClass, ExprKey
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, UnaryOp, is_expr_rhs
from repro.ir.ops import is_trapping
from repro.ir.values import Var


@dataclass(eq=False)
class Occurrence:
    """One candidate statement: an ``Assign`` whose rhs is an operator."""

    label: str
    stmt: Assign
    key: ExprKey

    def __repr__(self) -> str:
        return f"Occurrence({self.stmt} @ {self.label})"


class OccurrenceIndex:
    """All candidate occurrences of one function, keyed and ranked."""

    def __init__(self, func: Function) -> None:
        self.func = func
        #: id(stmt) → Occurrence, for delta application by identity.
        self._occs: dict[int, Occurrence] = {}
        #: key → {id(stmt): Occurrence}, insertion-ordered per key.
        self._by_key: dict[ExprKey, dict[int, Occurrence]] = {}
        #: (base name, SSA version) → ids of occurrences using that value.
        self._uses: dict[tuple[str, int | None], set[int]] = {}
        #: key → position of the key's first occurrence in the build scan
        #: (ties in rank are broken by this, keeping rank-0 programs in
        #: exactly the historical first-occurrence order).
        self._key_order: dict[ExprKey, int] = {}
        self._next_order = 0
        self._ranks: dict[ExprKey, int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, func: Function) -> "OccurrenceIndex":
        """Index every candidate occurrence in one pass over *func*."""
        index = cls(func)
        for block in func:
            for stmt in block.body:
                index.add_statement(block.label, stmt)
        return index

    # ------------------------------------------------------------------
    # Incremental maintenance (the CodeMotion delta protocol)
    # ------------------------------------------------------------------
    def add_statement(self, label: str, stmt) -> None:
        """Index *stmt* if it is a candidate occurrence; else ignore it."""
        if not (isinstance(stmt, Assign) and is_expr_rhs(stmt.rhs)):
            return
        key = stmt.rhs.class_key()
        occ = Occurrence(label=label, stmt=stmt, key=key)
        sid = id(stmt)
        self._occs[sid] = occ
        self._by_key.setdefault(key, {})[sid] = occ
        if key not in self._key_order:
            self._key_order[key] = self._next_order
            self._next_order += 1
        for operand in stmt.rhs.operands:
            if isinstance(operand, Var):
                self._uses.setdefault((operand.name, operand.version), set()).add(sid)
        self._ranks = None

    def remove_statement(self, stmt) -> None:
        """Drop *stmt* from the index (no-op when it was never indexed)."""
        occ = self._occs.pop(id(stmt), None)
        if occ is None:
            return
        sid = id(stmt)
        per_key = self._by_key.get(occ.key)
        if per_key is not None:
            per_key.pop(sid, None)
            if not per_key:
                del self._by_key[occ.key]
        for operand in occ.stmt.rhs.operands:
            if isinstance(operand, Var):
                users = self._uses.get((operand.name, operand.version))
                if users is not None:
                    users.discard(sid)
                    if not users:
                        del self._uses[(operand.name, operand.version)]
        self._ranks = None

    def rewrite_uses(
        self, copies: dict[tuple[str, int | None], Var]
    ) -> set[ExprKey]:
        """Propagate *copies* into the operands of indexed occurrences.

        ``copies`` maps a copy target ``(name, version)`` to its source
        value (the PRE temporary version holding the same value).  Every
        indexed occurrence using a target is rewritten in place — this
        mutates the program, exactly like one step of SSA copy
        propagation restricted to candidate operands — and re-keyed.
        Returns the set of class keys that gained a rewritten occurrence:
        the classes the next round must (re)process.

        Trapping occurrences are never rewritten: re-keying a ``div``/
        ``mod`` would change the program's *lexical* trapping signature,
        which the speculation-safety oracle (and the paper's Section 2
        exclusion) is defined over — and trapping classes are barred
        from speculation regardless, so the iterative win cannot apply
        to them.
        """
        dirty: set[ExprKey] = set()
        for target, source in copies.items():
            user_ids = self._uses.get(target)
            if not user_ids:
                continue
            for sid in list(user_ids):
                occ = self._occs[sid]
                stmt = occ.stmt
                if is_trapping(stmt.rhs.op):
                    continue
                self.remove_statement(stmt)
                rhs = stmt.rhs
                if isinstance(rhs, BinOp):
                    if isinstance(rhs.left, Var) and (rhs.left.name, rhs.left.version) == target:
                        rhs.left = source
                    if isinstance(rhs.right, Var) and (rhs.right.name, rhs.right.version) == target:
                        rhs.right = source
                else:
                    assert isinstance(rhs, UnaryOp)
                    if isinstance(rhs.operand, Var) and (rhs.operand.name, rhs.operand.version) == target:
                        rhs.operand = source
                self.add_statement(occ.label, stmt)
                dirty.add(stmt.rhs.class_key())
        return dirty

    def has_pending_uses(
        self, copies: dict[tuple[str, int | None], Var]
    ) -> bool:
        """Would :meth:`rewrite_uses` rewrite anything?  (Never mutates.)"""
        return any(
            not is_trapping(self._occs[sid].stmt.rhs.op)
            for target in copies
            for sid in self._uses.get(target, ())
        )

    # ------------------------------------------------------------------
    # Ranks and class enumeration
    # ------------------------------------------------------------------
    def keys(self) -> list[ExprKey]:
        """All keys with at least one live occurrence, in first-occurrence
        order."""
        keys = [key for key, occs in self._by_key.items() if occs]
        keys.sort(key=lambda k: self._key_order[k])
        return keys

    def occurrences(self, key: ExprKey) -> list[Occurrence]:
        return list(self._by_key.get(key, {}).values())

    def rank(self, key: ExprKey) -> int:
        """Operand nesting depth of *key* through candidate definitions."""
        if self._ranks is None:
            self._ranks = self._compute_ranks()
        return self._ranks.get(key, 0)

    def _compute_ranks(self) -> dict[ExprKey, int]:
        # Which live keys define each base name (via an occurrence's
        # target) — the "nesting through temp definitions" relation.
        def_keys: dict[str, set[ExprKey]] = {}
        for key, occs in self._by_key.items():
            for occ in occs.values():
                def_keys.setdefault(occ.stmt.target.name, set()).add(key)

        ranks: dict[ExprKey, int] = {}
        GRAY = -1

        def operand_names(key: ExprKey) -> list[str]:
            return [payload for kind, payload in key[1:] if kind == "var"]

        for root in self._by_key:
            if root in ranks:
                continue
            # Explicit-stack DFS; GRAY marks break def cycles at depth 0.
            stack: list[tuple[ExprKey, int]] = [(root, 0)]
            while stack:
                key, state = stack.pop()
                if state == 0:
                    if key in ranks:
                        continue
                    ranks[key] = GRAY
                    stack.append((key, 1))
                    for name in operand_names(key):
                        for dkey in def_keys.get(name, ()):
                            if dkey not in ranks:
                                stack.append((dkey, 0))
                else:
                    best = 0
                    for name in operand_names(key):
                        for dkey in def_keys.get(name, ()):
                            dep = ranks.get(dkey, 0)
                            if dep == GRAY:
                                dep = 0  # cycle: contributes no depth
                            best = max(best, 1 + dep)
                    ranks[key] = best
        return ranks

    def first_seen(self, key: ExprKey) -> int:
        """Build-scan position of *key*'s first occurrence (ties in rank
        sorts are broken by it); unseen keys sort last."""
        return self._key_order.get(key, self._next_order)

    def sort_classes(self, classes: list[ExprClass]) -> list[ExprClass]:
        """Stable rank order: by rank, then the given relative order."""
        return sorted(classes, key=lambda e: self.rank(e.key))

    def classes_by_rank(self) -> list[ExprClass]:
        """Every live class, ordered by (rank, first occurrence).

        On a program with no composite chains every class has rank 0 and
        this is exactly ``collect_expr_classes`` order.
        """
        keys = self.keys()
        keys.sort(key=lambda k: (self.rank(k), self._key_order[k]))
        return [ExprClass(key) for key in keys]
