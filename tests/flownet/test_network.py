"""Tests for the flow-network container."""

import pytest

from repro.flownet.network import INFINITE, FlowNetwork


class TestConstruction:
    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork("s", "s")

    def test_negative_capacity_rejected(self):
        net = FlowNetwork("s", "t")
        with pytest.raises(ValueError):
            net.add_edge("s", "t", -1)

    def test_parallel_edges_are_distinct(self):
        net = FlowNetwork("s", "t")
        e1 = net.add_edge("s", "t", 3, payload="one")
        e2 = net.add_edge("s", "t", 4, payload="two")
        assert e1.index != e2.index
        assert [e.payload for e in net.out_of("s")] == ["one", "two"]

    def test_node_and_edge_counts(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 1)
        net.add_edge("a", "t", 1)
        assert net.node_count() == 3
        assert net.edge_count() == 2

    def test_add_node_isolated(self):
        net = FlowNetwork("s", "t")
        net.add_node("lonely")
        assert "lonely" in net.nodes


class TestInfiniteCapacity:
    def test_freeze_materialises_infinity(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5)
        net.add_edge("a", "b", 7)
        inf_edge = net.add_edge("b", "t", INFINITE)
        net.freeze()
        assert inf_edge.capacity == 5 + 7 + 1
        assert inf_edge.infinite

    def test_freeze_is_idempotent(self):
        net = FlowNetwork("s", "t")
        inf_edge = net.add_edge("s", "t", INFINITE)
        net.freeze()
        first = inf_edge.capacity
        net.freeze()
        assert inf_edge.capacity == first

    def test_frozen_network_rejects_new_edges(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 1)
        net.freeze()
        with pytest.raises(ValueError):
            net.add_edge("s", "t", 1)

    def test_total_finite_capacity_excludes_infinite(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5)
        net.add_edge("a", "t", INFINITE)
        assert net.total_finite_capacity() == 5


def test_into_and_out_of():
    net = FlowNetwork("s", "t")
    net.add_edge("s", "a", 1)
    net.add_edge("b", "a", 2)
    assert sorted(e.src for e in net.into("a")) == ["b", "s"]
    assert [e.dst for e in net.out_of("s")] == ["a"]
