"""Tests for the end-to-end pipeline module."""

import pytest

from repro.pipeline import (
    PAPER_VARIANTS,
    compile_variant,
    prepare,
    run_experiment,
)
from repro.profiles.interp import run_function


class TestPrepare:
    def test_prepare_does_not_mutate_source(self, while_loop):
        snapshot = str(while_loop)
        prepare(while_loop)
        assert str(while_loop) == snapshot

    def test_prepare_restructures_and_splits(self, while_loop):
        prepared = prepare(while_loop)
        assert any(l.startswith("head_test") for l in prepared.blocks)
        from repro.ir.verifier import has_critical_edges

        assert not has_critical_edges(prepared)

    def test_restructure_can_be_disabled(self, while_loop):
        prepared = prepare(while_loop, restructure=False)
        assert not any(l.startswith("head_test") for l in prepared.blocks)


class TestCompileVariant:
    def test_unknown_variant_rejected(self, while_loop):
        prepared = prepare(while_loop)
        with pytest.raises(ValueError):
            compile_variant(prepared, "magic")

    def test_profile_required_for_profiled_variants(self, while_loop):
        prepared = prepare(while_loop)
        for variant in ("mc-ssapre", "mc-pre", "ispre"):
            with pytest.raises(ValueError):
                compile_variant(prepared, variant)

    def test_none_variant_is_identity_semantics(self, while_loop):
        prepared = prepare(while_loop)
        compiled = compile_variant(prepared, "none")
        for n in (0, 3):
            assert (
                run_function(compiled.func, [1, 2, n]).observable()
                == run_function(prepared, [1, 2, n]).observable()
            )

    def test_ssa_variants_produce_non_ssa_output(self, while_loop):
        from repro.ssa.ssa_verifier import is_ssa

        prepared = prepare(while_loop)
        train = run_function(prepared, [1, 2, 5])
        for variant in ("ssapre", "ssapre-sp", "mc-ssapre"):
            compiled = compile_variant(prepared, variant, profile=train.profile)
            assert not is_ssa(compiled.func)

    def test_input_not_mutated_by_compilation(self, while_loop):
        prepared = prepare(while_loop)
        train = run_function(prepared, [1, 2, 5])
        snapshot = str(prepared)
        compile_variant(prepared, "mc-ssapre", profile=train.profile)
        assert str(prepared) == snapshot


class TestRunExperiment:
    def test_measurements_complete(self, while_loop):
        experiment = run_experiment(
            while_loop, [1, 2, 10], [1, 2, 12], variants=PAPER_VARIANTS
        )
        for variant in PAPER_VARIANTS + ("none",):
            assert variant in experiment.measurements

    def test_speedup_formula(self, while_loop):
        experiment = run_experiment(while_loop, [1, 2, 10], [1, 2, 12])
        a = experiment.cost("ssapre")
        c = experiment.cost("mc-ssapre")
        assert experiment.speedup("ssapre", "mc-ssapre") == pytest.approx(
            (a - c) / a
        )

    def test_restructuring_already_helps_safe_pre(self, while_loop):
        """With Figure-1 restructuring, the do-while body dominates the
        loop test, so even safe SSAPRE hoists the invariant — the paper's
        stated reason the compiler always rotates loops."""
        experiment = run_experiment(
            while_loop, [2, 3, 30], [2, 3, 30], variants=("ssapre",)
        )
        ab = ("add", ("var", "a"), ("var", "b"))
        from tests.core.test_optimality import normalize_counts

        counts = normalize_counts(experiment.measurements["ssapre"].expr_counts)
        assert counts[ab] == 1

    def test_variant_order_does_not_matter(self, while_loop):
        one = run_experiment(
            while_loop, [1, 2, 9], [1, 2, 9], variants=("ssapre", "mc-ssapre")
        )
        two = run_experiment(
            while_loop, [1, 2, 9], [1, 2, 9], variants=("mc-ssapre", "ssapre")
        )
        assert one.cost("mc-ssapre") == two.cost("mc-ssapre")
        assert one.cost("ssapre") == two.cost("ssapre")


class TestProfilingKnob:
    """``profiling="probes"``: sparse training must change nothing."""

    def test_probes_training_matches_full(self, while_loop):
        full = run_experiment(while_loop, [1, 2, 10], [1, 2, 12])
        probed = run_experiment(
            while_loop, [1, 2, 10], [1, 2, 12], profiling="probes"
        )
        # Reconstruction is exact, so the training profile — and with it
        # every optimisation decision and measurement — is identical.
        assert dict(probed.train_result.profile.node_freq) == dict(
            full.train_result.profile.node_freq
        )
        for variant in full.measurements:
            assert probed.cost(variant) == full.cost(variant)

    def test_unknown_profiling_mode_rejected(self, while_loop):
        with pytest.raises(ValueError, match="profiling"):
            run_experiment(
                while_loop, [1, 2, 5], [1, 2, 6], profiling="sampling"
            )
