"""Deterministic process-parallel map shared by the drivers.

``repro.check``, ``repro.bench`` and ``repro.perf`` all parallelise the
same way: a picklable worker over an explicit work list, fanned out with
``--jobs N``.  :func:`parallel_map` is the one primitive they share — an
order-preserving ``map`` that degrades to a plain loop for ``jobs <= 1``
(keeping single-process runs free of pool overhead and trivially
debuggable) and uses :class:`~concurrent.futures.ProcessPoolExecutor`
otherwise.

Order preservation is what makes the merge deterministic: results come
back in work-list order regardless of which process finished first, so
callers can fold them left-to-right and produce byte-identical summaries
at any job count.

Interruption is a first-class outcome, not a stack trace: Ctrl-C during
a long fuzz run, or a worker process dying outright (OOM kill, segfault,
``os._exit``), terminates the pool promptly and raises
:class:`ParallelMapError` carrying every result that *did* complete, so
drivers can surface partial statistics instead of discarding minutes of
finished work.  Ordinary exceptions raised *by the worker function*
still propagate unchanged (after cancelling the remaining work) — they
are bugs in the caller's worker, not infrastructure failures.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ParallelMapError", "parallel_map"]


class ParallelMapError(RuntimeError):
    """A parallel map was cut short; the completed prefix survives.

    ``partial`` maps *input index* to result for every item that finished
    before the interruption — indices, not a bare list, because
    completion order is arbitrary.  ``total`` is the full work-list
    length and ``cause`` the original :class:`KeyboardInterrupt` or
    :class:`~concurrent.futures.process.BrokenProcessPool`.
    """

    def __init__(
        self,
        partial: dict[int, object],
        total: int,
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"parallel map interrupted by {type(cause).__name__} after "
            f"{len(partial)}/{total} item(s)"
        )
        self.partial = partial
        self.total = total
        self.cause = cause


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Stop a pool *now*: cancel queued work, kill live workers.

    ``shutdown(cancel_futures=True)`` only drains the queue; a worker
    mid-item would otherwise be awaited.  Killing the processes is the
    documented-by-usage escape hatch (``_processes`` has been stable
    since 3.7) and is best-effort: on any surprise we still shut down.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - cleanup must not mask the cause
            pass


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int = 1
) -> list[R]:
    """``[fn(x) for x in items]``, fanned out over ``jobs`` processes.

    Results are returned in input order.  With ``jobs <= 1`` (or fewer
    than two items) the map runs in-process.  ``fn`` and every item must
    be picklable in parallel mode — module-level functions and
    :func:`functools.partial` over them qualify.

    Raises :class:`ParallelMapError` (carrying the completed partial
    results) when the run is interrupted — :class:`KeyboardInterrupt`,
    or the pool breaking because a worker process died.  An ordinary
    exception raised by *fn* cancels the remaining work and propagates
    as itself.
    """
    work: Sequence[T] = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]

    pool = ProcessPoolExecutor(max_workers=min(jobs, len(work)))
    futures: dict = {}

    def completed() -> dict[int, R]:
        return {
            index: future.result()
            for future, index in futures.items()
            if future.done()
            and not future.cancelled()
            and future.exception() is None
        }

    try:
        for index, item in enumerate(work):
            futures[pool.submit(fn, item)] = index
        # FIRST_EXCEPTION returns as soon as anything fails, so a crash
        # near the front does not wait for the whole tail to drain.
        wait(futures, return_when=FIRST_EXCEPTION)
        for future in futures:
            if future.done() and not future.cancelled():
                exception = future.exception()
                if exception is not None:
                    raise exception
        pool.shutdown(wait=True)
        partial = completed()
        return [partial[i] for i in range(len(work))]
    except (KeyboardInterrupt, BrokenProcessPool) as exc:
        _terminate_pool(pool)
        raise ParallelMapError(completed(), len(work), exc) from exc
    except BaseException:
        _terminate_pool(pool)
        raise
