"""Command-line entry: ``python -m repro.serve``.

Two subcommands:

``serve``
    Run a :class:`~repro.serve.server.CompileService` over a JSON-lines
    protocol: one request object per input line, one response object per
    output line (schema in ``docs/SERVING.md``).  By default the
    transport is stdin/stdout (pipe-friendly, trivially scriptable);
    ``--port`` switches to a threaded TCP server speaking the same
    line protocol, one connection per client.

``load``
    Build the deterministic load-generator workload
    (:mod:`repro.serve.loadgen`), drive it through an in-process service
    with ``--jobs`` client threads, and gate on the results: non-zero
    exit when any answer mismatched the reference interpreter, any
    request errored, or the hit rate fell below ``--min-hit-rate``.
    This is the CI serving smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.serve.loadgen import (
    DEFAULT_VARIANTS,
    WorkloadSpec,
    build_workload,
    run_load,
)
from repro.serve.server import (
    DEFAULT_TIMEOUT_S,
    CompileRequest,
    CompileService,
)
from repro.serve.store import ArtifactStore


def _make_service(args: argparse.Namespace) -> CompileService:
    if args.cache_dir:
        store = ArtifactStore.with_disk(
            args.cache_dir, max_entries=args.max_entries
        )
    else:
        store = ArtifactStore()
        store.memory.max_entries = args.max_entries
    return CompileService(
        store, max_workers=args.workers, timeout_s=args.timeout
    )


def _handle_line(service: CompileService, line: str) -> dict:
    """One protocol exchange: JSON request line in, response dict out."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"status": "error", "error": f"bad JSON: {exc}"}
    if isinstance(data, dict) and data.get("cmd") == "metrics":
        return service.metrics.to_dict()
    try:
        request = CompileRequest.from_dict(data)
    except (TypeError, ValueError) as exc:
        return {"status": "error", "error": str(exc)}
    return service.handle(request).to_dict()


def _serve_stdio(service: CompileService) -> None:
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        print(json.dumps(_handle_line(service, line)), flush=True)


def _serve_tcp(service: CompileService, host: str, port: int) -> None:
    import socketserver

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                payload = json.dumps(_handle_line(service, line)) + "\n"
                self.wfile.write(payload.encode())
                self.wfile.flush()

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as server:
        actual_port = server.server_address[1]
        print(f"serving on {host}:{actual_port}", file=sys.stderr, flush=True)
        server.serve_forever()


def _write_metrics(service: CompileService, path: str | None) -> None:
    if path:
        Path(path).write_text(
            json.dumps(service.metrics.to_dict(), indent=2) + "\n"
        )


def cmd_serve(args: argparse.Namespace) -> int:
    service = _make_service(args)
    try:
        if args.port is not None:
            _serve_tcp(service, args.host, args.port)
        else:
            _serve_stdio(service)
    except KeyboardInterrupt:
        pass
    finally:
        _write_metrics(service, args.metrics_out)
        service.close()
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        requests=args.requests,
        unique=args.unique,
        variants=tuple(args.variants.split(",")),
        seed=args.seed,
        rounds=args.rounds,
    )
    workload = build_workload(spec)
    service = _make_service(args)
    try:
        report, _responses = run_load(service, workload, jobs=args.jobs)
    finally:
        _write_metrics(service, args.metrics_out)
        service.close()

    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"load: {report.requests} request(s), {report.ok} ok, "
            f"{report.errors} error(s), {report.timeouts} timeout(s), "
            f"{report.degraded} degraded"
        )
        print(
            f"load: hit rate {report.hit_rate:.3f} "
            f"(workload admits {report.expected_hit_rate:.3f}), "
            f"{report.rps:.1f} req/s over {report.wall_s:.3f}s"
        )
        served = ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.served_by.items())
        )
        print(f"load: served_by {served}")
        print(f"load: mismatches {report.mismatches}")

    failures = []
    if report.mismatches:
        failures.append(f"{report.mismatches} mismatch(es) vs reference")
    if report.errors:
        failures.append(f"{report.errors} error response(s)")
    if report.hit_rate < args.min_hit_rate:
        failures.append(
            f"hit rate {report.hit_rate:.3f} < required {args.min_hit_rate:.3f}"
        )
    if failures:
        print("LOAD GATE FAILURE: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the on-disk artifact tier rooted at DIR",
    )
    parser.add_argument(
        "--max-entries", type=int, default=256, metavar="N",
        help="in-memory LRU capacity (default 256)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="compile worker threads (default 4)",
    )
    parser.add_argument(
        "--timeout", type=float, default=DEFAULT_TIMEOUT_S, metavar="S",
        help=f"per-request deadline in seconds (default {DEFAULT_TIMEOUT_S:g})",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final metrics snapshot as JSON to PATH",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Content-addressed compile-and-run service over the PRE "
            "pipeline, plus its load-generator driver."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="serve JSON-lines requests from stdin or a TCP port"
    )
    _add_service_args(serve)
    serve.add_argument(
        "--port", type=int, default=None, metavar="P",
        help="listen on TCP port P instead of stdin (0 = ephemeral)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="H",
        help="bind address for --port (default 127.0.0.1)",
    )
    serve.set_defaults(func=cmd_serve)

    load = sub.add_parser(
        "load", help="run the deterministic serving workload and gate on it"
    )
    _add_service_args(load)
    load.add_argument(
        "--requests", type=int, default=100, metavar="N",
        help="total requests to issue (default 100)",
    )
    load.add_argument(
        "--unique", type=int, default=6, metavar="N",
        help="distinct (program, config) pool size (default 6)",
    )
    load.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent client threads (default 1)",
    )
    load.add_argument(
        "--variants", default=",".join(DEFAULT_VARIANTS), metavar="V1,V2",
        help=f"variants to cycle over (default {','.join(DEFAULT_VARIANTS)})",
    )
    load.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base generator seed (default 0)",
    )
    load.add_argument(
        "--rounds", type=int, default=1, metavar="N",
        help="PRE rounds per compile (default 1)",
    )
    load.add_argument(
        "--min-hit-rate", type=float, default=0.0, metavar="X",
        help="fail unless the final hit rate reaches X (default 0.0)",
    )
    load.add_argument(
        "--json", action="store_true",
        help="print the load report as JSON instead of a summary",
    )
    load.set_defaults(func=cmd_load)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
