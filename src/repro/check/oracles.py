"""Executable oracles over compiled PRE variants.

Each oracle turns one of the paper's claims into a mechanically checkable
predicate on a :class:`CheckCase` (one generated program, its training
profile, and every compiled variant):

* **equiv** — *semantic equivalence*: every variant must produce the
  control's observable behaviour (return value + output trace) on every
  shared input.  The precondition of every other claim.
* **optimal** — *computational optimality* (Theorem 7): on the training
  input (where the profile matches the measured run), MC-SSAPRE's dynamic
  per-expression evaluation counts must equal MC-PRE's (two independent
  optimal algorithms), be no worse than every non-optimal variant's
  (SSAPRE, SSAPREsp, ISPRE, LCM), and — where exhaustive enumeration is
  tractable — equal the brute-force optimum over all insertion sets.
* **lifetime** — *lifetime optimality* (Theorem 9): the reverse-labelled
  (sink-side) cut yields temporary live ranges no longer than the
  source-side cut at identical dynamic cost, and never stores to a
  temporary it won't use.
* **safety** — *no unsafe speculation* (Section 2): no variant may
  evaluate a trapping expression (``div``/``mod``/``fdiv``) on an
  execution where the control never evaluates it.
* **cache** — *cache consistency*: an artifact served warm from the
  :mod:`repro.serve` store (memory hit, disk round-trip, or an
  independent recompile under the same content address) must run
  bit-identically to the cold compile — same observables, dynamic cost,
  step count and per-expression counts on every input.  The claim that
  makes content-addressed serving sound.
* **probes** — *reconstruction exactness*: running under minimum
  coverage instrumentation (:mod:`repro.profiles.probes` — count only
  the probe set, solve flow conservation for the rest) must reproduce
  the full-counting node frequencies bit-for-bit on every input, in
  both the reference interpreter and the compiled back end, with the
  probe count inside the spanning-tree bound ``|E| − |V| + 1``.  The
  claim that makes sparse profiling a safe default.

Oracles only *observe*; the fuzz driver (:mod:`repro.check.driver`) builds
the case, and the reducer (:mod:`repro.check.reducer`) shrinks whatever
they reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.analysis.liveness import compute_liveness
from repro.baselines.bruteforce import brute_force_optimum
from repro.bench.generator import ProgramSpec
from repro.ir.function import Function
from repro.ir.instructions import Assign
from repro.ir.memory import key_may_trap
from repro.profiles.counts import normalize_expr_counts
from repro.profiles.interp import RunResult, run_function
from repro.profiles.profile import ExecutionProfile

#: Canonical oracle names, in the order the driver runs them.
ORACLE_NAMES = ("equiv", "optimal", "lifetime", "safety", "cache", "probes")

#: Variable-name prefixes of PRE-introduced temporaries.
TEMP_PREFIXES = ("%pre", "%mcpre", "%t")

#: Default interpreter step budget per run.
DEFAULT_MAX_STEPS = 250_000


@dataclass
class OracleFailure:
    """One rejected claim, with enough context to classify and replay."""

    oracle: str  # which oracle (or "compile" for pre-oracle failures)
    variant: str
    kind: str  # crash | verifier-reject | divergence | suboptimal | lifetime | unsafe
    detail: str

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "variant": self.variant,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class OracleReport:
    """Pass/fail statistics of one oracle over one case."""

    name: str
    checks: int = 0
    failures: list[OracleFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def fail(self, variant: str, kind: str, detail: str) -> None:
        self.failures.append(OracleFailure(self.name, variant, kind, detail))


#: A pluggable compile step: (prepared function, training profile) -> the
#: optimised function.  Used to inject deliberately buggy variants in
#: tests and to check out-of-tree transformations.
VariantFn = Callable[[Function, ExecutionProfile], Function]


@dataclass
class CheckCase:
    """Everything the oracles need about one generated program."""

    seed: int
    shape: str
    spec: ProgramSpec | None
    source: Function
    prepared: Function
    inputs: list[list[int]]  # inputs[0] is the training vector
    profile: ExecutionProfile
    control_runs: list[RunResult]
    compiled: dict[str, Function]
    #: variant -> one RunResult per input (None when that run crashed;
    #: the crash is recorded separately by the driver).
    variant_runs: dict[str, list[RunResult | None]]
    max_steps: int = DEFAULT_MAX_STEPS


# ----------------------------------------------------------------------
# equiv
# ----------------------------------------------------------------------
def equivalence_oracle(case: CheckCase) -> OracleReport:
    """Every variant behaves like the control on every input."""
    report = OracleReport("equiv")
    for variant, runs in case.variant_runs.items():
        for i, run in enumerate(runs):
            if run is None:
                continue  # the crash was already recorded
            report.checks += 1
            expected = case.control_runs[i].observable()
            if run.observable() != expected:
                report.fail(
                    variant,
                    "divergence",
                    f"input #{i} {case.inputs[i]}: observable "
                    f"{run.observable()!r} != control {expected!r}",
                )
    return report


# ----------------------------------------------------------------------
# optimal
# ----------------------------------------------------------------------
#: Variants whose per-expression counts MC-SSAPRE must exactly match:
#: MC-PRE (an independent optimal algorithm over the same profile) and
#: the lospre solver twin (the same placement problem solved by tree
#: decomposition instead of max-flow — the solver exactness contract).
_OPTIMAL_PEERS = ("mc-pre", "mc-ssapre-lospre")
#: Variants MC-SSAPRE must never lose to, per expression and in total.
_DOMINATED = ("ssapre", "ssapre-sp", "ispre", "lcm", "none")


def _train_counts(case: CheckCase, variant: str) -> dict | None:
    runs = case.variant_runs.get(variant)
    if not runs or runs[0] is None:
        return None
    return normalize_expr_counts(runs[0].expr_counts)


def optimality_oracle(
    case: CheckCase,
    *,
    brute_force: bool = True,
    brute_max_edges: int = 7,
    brute_max_keys: int = 2,
    brute_max_blocks: int = 26,
) -> OracleReport:
    """MC-SSAPRE is computationally optimal on the training profile.

    All comparisons run on ``inputs[0]`` — the input that produced the
    profile — because optimality is only promised when the profile
    predicts the run (paper Section 3.4).
    """
    report = OracleReport("optimal")
    mc = _train_counts(case, "mc-ssapre")
    if mc is None:
        return report  # nothing to check; compile/run failure recorded
    mc_run = case.variant_runs["mc-ssapre"][0]

    # 1. Two independent optimal algorithms must agree per expression.
    for peer in _OPTIMAL_PEERS:
        peer_counts = _train_counts(case, peer)
        if peer_counts is None:
            continue
        for key in sorted(set(mc) | set(peer_counts)):
            report.checks += 1
            if mc.get(key, 0) != peer_counts.get(key, 0):
                report.fail(
                    "mc-ssapre",
                    "suboptimal",
                    f"{key}: mc-ssapre={mc.get(key, 0)} != "
                    f"{peer}={peer_counts.get(key, 0)}",
                )

    # 2. Optimal never loses to the non-optimal variants.
    for other in _DOMINATED:
        if other == "none":
            other_counts = normalize_expr_counts(
                case.control_runs[0].expr_counts
            )
            other_cost = case.control_runs[0].dynamic_cost
        else:
            other_counts = _train_counts(case, other)
            runs = case.variant_runs.get(other)
            other_cost = runs[0].dynamic_cost if runs and runs[0] else None
        if other_counts is None:
            continue
        for key in sorted(set(mc) | set(other_counts)):
            report.checks += 1
            if mc.get(key, 0) > other_counts.get(key, 0):
                report.fail(
                    "mc-ssapre",
                    "suboptimal",
                    f"{key}: mc-ssapre={mc.get(key, 0)} > "
                    f"{other}={other_counts.get(key, 0)}",
                )
        if other_cost is not None:
            report.checks += 1
            if mc_run.dynamic_cost > other_cost:
                report.fail(
                    "mc-ssapre",
                    "suboptimal",
                    f"dynamic cost {mc_run.dynamic_cost} > "
                    f"{other} cost {other_cost}",
                )

    # 3. Exhaustive ground truth where the search space is small enough.
    if brute_force and len(case.prepared) <= brute_max_blocks:
        control_counts = normalize_expr_counts(
            case.control_runs[0].expr_counts
        )
        hot_first = sorted(
            (
                k
                for k in control_counts
                if not key_may_trap(k, case.prepared.arrays)
            ),
            key=lambda k: -control_counts[k],
        )
        checked = 0
        for key in hot_first:
            if checked >= brute_max_keys:
                break
            try:
                outcome = brute_force_optimum(
                    case.prepared,
                    key,
                    case.inputs[0],
                    max_edges=brute_max_edges,
                    max_steps=case.max_steps,
                )
            except ValueError:
                continue  # too many candidate edges; not tractable
            checked += 1
            report.checks += 1
            if mc.get(key, 0) != outcome.best_count:
                report.fail(
                    "mc-ssapre",
                    "suboptimal",
                    f"{key}: mc-ssapre={mc.get(key, 0)} != brute-force "
                    f"optimum {outcome.best_count} "
                    f"(no-insertion baseline {outcome.baseline_count})",
                )
    return report


# ----------------------------------------------------------------------
# lifetime
# ----------------------------------------------------------------------
def temp_live_range_size(func: Function) -> int:
    """Total static live range of PRE temporaries: the number of
    (block, temp-version) pairs at which an introduced temp is live-in."""
    liveness = compute_liveness(func, by_version=True)
    total = 0
    for label in func.blocks:
        for name, _version in liveness.live_in[label]:
            if name.startswith(TEMP_PREFIXES):
                total += 1
    return total


def _dead_temp_defs(func: Function) -> list:
    """Definitions of PRE temps that are never used (Theorem 9's second
    half: the optimal placement never stores to ``t`` unnecessarily)."""
    from repro.ir.values import Var

    used: set = set()
    defined: set = set()
    for block in func:
        for phi in block.phis:
            if phi.target.name.startswith(TEMP_PREFIXES):
                defined.add(phi.target)
            for op in phi.args.values():
                if isinstance(op, Var):
                    used.add(op)
        for stmt in block.body:
            if isinstance(stmt, Assign) and stmt.target.name.startswith(
                TEMP_PREFIXES
            ):
                defined.add(stmt.target)
            for op in stmt.used_operands():
                if isinstance(op, Var):
                    used.add(op)
        for op in block.terminator.used_operands():
            if isinstance(op, Var):
                used.add(op)
    return sorted(
        (v for v in defined if v not in used), key=lambda v: str(v)
    )


def lifetime_oracle(case: CheckCase) -> OracleReport:
    """Sink-side cut: same cost, never-longer temp live ranges, no
    useless saves.  Compiles its own two MC-SSAPRE instances (late vs
    early cut) because the comparison is internal to the algorithm."""
    from repro.core.mcssapre.driver import run_mc_ssapre
    from repro.ssa.construct import construct_ssa

    report = OracleReport("lifetime")
    late = case.prepared.clone()
    early = case.prepared.clone()
    try:
        construct_ssa(late)
        run_mc_ssapre(late, case.profile, sink_closest=True)
        construct_ssa(early)
        run_mc_ssapre(early, case.profile, sink_closest=False)
        late_run = run_function(late, case.inputs[0], max_steps=case.max_steps)
        early_run = run_function(early, case.inputs[0], max_steps=case.max_steps)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        report.checks += 1
        report.fail("mc-ssapre", "crash", f"lifetime compile/run: {exc!r}")
        return report

    report.checks += 1
    if late_run.dynamic_cost != early_run.dynamic_cost:
        report.fail(
            "mc-ssapre",
            "lifetime",
            f"sink-side cut cost {late_run.dynamic_cost} != source-side "
            f"cut cost {early_run.dynamic_cost} (both must be min cuts)",
        )
    report.checks += 1
    late_range, early_range = temp_live_range_size(late), temp_live_range_size(early)
    if late_range > early_range:
        report.fail(
            "mc-ssapre",
            "lifetime",
            f"sink-side temp live range {late_range} > source-side "
            f"{early_range}",
        )
    report.checks += 1
    dead = _dead_temp_defs(late)
    if dead:
        report.fail(
            "mc-ssapre",
            "lifetime",
            f"useless saves: temp definitions never used: {dead}",
        )
    return report


# ----------------------------------------------------------------------
# safety
# ----------------------------------------------------------------------
def safety_oracle(case: CheckCase) -> OracleReport:
    """No variant evaluates a trapping expression the control never
    evaluates on the same input — the dynamic face of "never speculate
    a computation that can cause an exception" (paper Section 2).

    Loads count as trapping (out-of-bounds indices genuinely raise), with
    the same refinement the optimizers use: a constant in-bounds load
    cannot fault, so speculating it is not a violation.  Everything else
    flagged trapping in the ops table — and every variable-index load —
    must never be evaluated where the control would not."""
    report = OracleReport("safety")
    arrays = case.prepared.arrays
    control_counts = [
        normalize_expr_counts(run.expr_counts) for run in case.control_runs
    ]
    for variant, runs in case.variant_runs.items():
        for i, run in enumerate(runs):
            if run is None:
                continue
            counts = normalize_expr_counts(run.expr_counts)
            trapping_keys = [k for k in counts if key_may_trap(k, arrays)]
            report.checks += 1
            for key in trapping_keys:
                if counts[key] > 0 and control_counts[i].get(key, 0) == 0:
                    report.fail(
                        variant,
                        "unsafe",
                        f"input #{i} {case.inputs[i]}: trapping {key} "
                        f"evaluated {counts[key]}x but control never "
                        f"evaluates it",
                    )
    return report


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
#: Variant the cache-consistency oracle round-trips (profile-guided, so
#: the intensional train_args keying and the training rerun are on trial).
_CACHE_VARIANT = "mc-ssapre"


def _run_fingerprint(artifact, args: list[int], max_steps: int) -> tuple:
    """Everything one served run observably is, as a comparable value."""
    from repro.profiles.interp import InterpreterError
    from repro.serve.server import execute_artifact

    try:
        run = execute_artifact(artifact, tuple(args), max_steps)
    except InterpreterError as exc:
        return ("error", str(exc))
    return (
        run.observable(),
        run.dynamic_cost,
        run.steps,
        tuple(sorted(normalize_expr_counts(run.expr_counts).items())),
    )


def cache_consistency_oracle(case: CheckCase) -> OracleReport:
    """Warm-cache answers are bit-identical to cold compiles.

    Builds the serving artifact cold, round-trips it through a real
    two-tier :class:`~repro.serve.store.ArtifactStore` (memory hit, then
    a fresh store over the same directory forcing the disk/pickle path),
    rebuilds it cold a second time under the same content address, and
    requires all four to run identically on every case input.
    """
    import shutil
    import tempfile

    # Local import: the serve package layers *on top of* the checker;
    # the core oracles must stay importable without it.
    from repro.pipeline import PipelineConfig
    from repro.serve.keys import artifact_key
    from repro.serve.server import build_artifact
    from repro.serve.store import ArtifactStore

    report = OracleReport("cache")
    config = PipelineConfig(variant=_CACHE_VARIANT)
    train_args = tuple(case.inputs[0])
    key = artifact_key(case.prepared, config, train_args=train_args)
    cold = build_artifact(
        case.prepared, config, key=key, train_args=train_args,
        max_steps=case.max_steps,
    )
    if cold.degraded:
        report.checks += 1
        report.fail(
            _CACHE_VARIANT, "crash",
            f"cold build degraded: {cold.degraded_reason}",
        )
        return report

    tmp = tempfile.mkdtemp(prefix="repro-cache-oracle-")
    try:
        store = ArtifactStore.with_disk(tmp)
        store.put(key, cold)
        warm_memory, tier = store.get(key)
        report.checks += 1
        if tier != "memory":
            report.fail(
                _CACHE_VARIANT, "cache-miss",
                f"just-stored artifact missed the memory tier (tier={tier!r})",
            )
            return report
        # A fresh store over the same directory models a warm *restart*:
        # the artifact must survive pickling and the disk round-trip.
        warm_disk, disk_tier = ArtifactStore.with_disk(tmp).get(key)
        report.checks += 1
        if disk_tier != "disk":
            report.fail(
                _CACHE_VARIANT, "cache-miss",
                f"stored artifact missed the disk tier (tier={disk_tier!r})",
            )
            return report
        recompiled = build_artifact(
            case.prepared, config, key=key, train_args=train_args,
            max_steps=case.max_steps,
        )
        for i, args in enumerate(case.inputs):
            expected = _run_fingerprint(cold, args, case.max_steps)
            for source, artifact in (
                ("memory-hit", warm_memory),
                ("disk-hit", warm_disk),
                ("recompile", recompiled),
            ):
                report.checks += 1
                got = _run_fingerprint(artifact, args, case.max_steps)
                if got != expected:
                    report.fail(
                        _CACHE_VARIANT, "cache-divergence",
                        f"input #{i} {args}: {source} run {got!r} != "
                        f"cold run {expected!r}",
                    )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return report


def probes_oracle(case: CheckCase) -> OracleReport:
    """Sparse profiling reconstructs full counting bit-for-bit.

    Places the minimum coverage probe set on the prepared function
    (weighted by the training profile, as the serving path does), then
    runs every case input through both execution engines in sparse mode
    and requires: node frequencies identical to the full-counting
    control runs as plain dicts; dynamic cost, expression counts, step
    counts and observables identical; edge frequencies identical
    whenever reconstruction determines them; and the probe count inside
    the spanning-tree bound.  A CFG the placement refuses (multi-exit
    etc.) passes vacuously — the fallback *is* full counting — but a
    refusal of a single-exit CFG is a failure: the certified envelope
    must not silently shrink.
    """
    # Local import like the cache oracle: the probes subsystem layers on
    # top of the profiles core the oracles already use.
    from repro.profiles.compiled import compile_function
    from repro.profiles.probes import try_place_probes

    report = OracleReport("probes")
    placement, reason = try_place_probes(case.prepared, profile=case.profile)
    report.checks += 1
    if placement is None:
        from repro.ir.cfg import CFG

        if reason == "multi-exit" and len(CFG(case.prepared).exit_labels()) > 1:
            return report  # certified fallback; nothing to compare
        report.fail(
            "control", "probe-refusal",
            f"placement refused a coverable CFG: {reason}",
        )
        return report
    if len(placement.probes) > placement.bound:
        report.fail(
            "control", "probe-bound",
            f"{len(placement.probes)} probes exceed spanning-tree bound "
            f"{placement.bound} (|E|={placement.n_edges}, "
            f"|V|={len(placement.blocks)})",
        )
        return report

    program = compile_function(case.prepared, probes=placement)
    for i, args in enumerate(case.inputs):
        control = case.control_runs[i]
        for engine, run_sparse in (
            (
                "reference",
                lambda a: run_function(
                    case.prepared, list(a), case.max_steps, probes=placement
                ),
            ),
            ("compiled", lambda a: program.run(list(a), case.max_steps)),
        ):
            report.checks += 1
            try:
                sparse = run_sparse(args)
            except Exception as exc:  # noqa: BLE001 - classified below
                report.fail(
                    engine, "crash",
                    f"input #{i} {args}: sparse run raised "
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            if dict(sparse.profile.node_freq) != dict(control.profile.node_freq):
                report.fail(
                    engine, "reconstruction-divergence",
                    f"input #{i} {args}: reconstructed node_freq "
                    f"{dict(sparse.profile.node_freq)!r} != full counting "
                    f"{dict(control.profile.node_freq)!r}",
                )
                continue
            if sparse.profile.edge_freq and (
                dict(sparse.profile.edge_freq)
                != dict(control.profile.edge_freq)
            ):
                report.fail(
                    engine, "reconstruction-divergence",
                    f"input #{i} {args}: reconstructed edge_freq "
                    f"{dict(sparse.profile.edge_freq)!r} != full counting "
                    f"{dict(control.profile.edge_freq)!r}",
                )
                continue
            if (
                sparse.observable() != control.observable()
                or sparse.dynamic_cost != control.dynamic_cost
                or sparse.steps != control.steps
                or dict(sparse.expr_counts) != dict(control.expr_counts)
            ):
                report.fail(
                    engine, "divergence",
                    f"input #{i} {args}: sparse mode changed measured "
                    f"behaviour (cost {sparse.dynamic_cost} vs "
                    f"{control.dynamic_cost}, steps {sparse.steps} vs "
                    f"{control.steps})",
                )
    return report


#: Oracle registry, in driver execution order.
ORACLES: Mapping[str, Callable[[CheckCase], OracleReport]] = {
    "equiv": equivalence_oracle,
    "optimal": optimality_oracle,
    "lifetime": lifetime_oracle,
    "safety": safety_oracle,
    "cache": cache_consistency_oracle,
    "probes": probes_oracle,
}
