"""Tests for the SPEC-like workload suite."""

import pytest

from repro.bench.workloads import (
    ALL_BENCHMARKS,
    CFP2006,
    CINT2006,
    load_suite,
    load_workload,
    spec_for,
)
from repro.ir.verifier import verify_function
from repro.profiles.interp import run_function


class TestSuiteShape:
    def test_benchmark_counts_match_paper(self):
        assert len(CINT2006) == 12
        assert len(CFP2006) == 17
        assert len(ALL_BENCHMARKS) == 29

    def test_names_match_paper_tables(self):
        assert CINT2006[0] == "perlbench"
        assert CINT2006[-1] == "xalancbmk"
        assert CFP2006[0] == "bwaves"
        assert CFP2006[-1] == "sphinx3"
        assert "cactusADM" in CFP2006
        assert "libquantum" in CINT2006

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            spec_for("quake3")


class TestWorkloads:
    def test_workload_is_deterministic(self):
        one = load_workload("mcf")
        two = load_workload("mcf")
        assert str(one.program.func) == str(two.program.func)
        assert one.train_args == two.train_args
        assert one.ref_args == two.ref_args

    def test_families(self):
        assert load_workload("gcc").family == "CINT"
        assert load_workload("lbm").family == "CFP"

    def test_train_and_ref_differ_but_correlate(self):
        workload = load_workload("bzip2")
        assert workload.train_args != workload.ref_args
        assert all(
            abs(t - r) <= 7 for t, r in zip(workload.train_args, workload.ref_args)
        )

    @pytest.mark.parametrize("name", ["perlbench", "mcf", "milc", "lbm"])
    def test_programs_verify_and_run(self, name):
        workload = load_workload(name)
        verify_function(workload.program.func)
        train = run_function(workload.program.func, workload.train_args)
        ref = run_function(workload.program.func, workload.ref_args)
        assert train.steps > 50, "benchmarks should do real work"
        assert ref.steps > 50

    def test_cfp_programs_are_loopier(self):
        """Structural asymmetry behind Table 1 vs Table 2: CFP programs
        spend a larger share of their execution inside loops."""
        from repro.analysis.dominators import DominatorTree
        from repro.analysis.loops import LoopForest
        from repro.ir.cfg import CFG

        def loop_block_fraction(name):
            func = load_workload(name).program.func
            cfg = CFG(func)
            forest = LoopForest(cfg, DominatorTree(cfg))
            in_loop = set()
            for loop in forest:
                in_loop |= loop.blocks
            return len(in_loop) / len(func.blocks)

        cint_avg = sum(loop_block_fraction(n) for n in CINT2006[:4]) / 4
        cfp_avg = sum(loop_block_fraction(n) for n in CFP2006[:4]) / 4
        assert cfp_avg > cint_avg

    def test_load_suite_subset(self):
        suite = load_suite(("mcf", "lbm"))
        assert [w.name for w in suite] == ["mcf", "lbm"]
