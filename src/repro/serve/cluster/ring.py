"""Consistent-hash ring with virtual nodes.

The front end routes every request to the worker that *owns* its
structural artifact key, so each program's traffic concentrates on one
worker — which is what makes a bounded per-worker plan cache coherent
and the shared disk tier's write pattern mostly contention-free.

Ownership must be stable under membership changes: when a worker
crashes and is replaced, or the pool is resized, only the keys that
actually move owners should go cold.  A consistent-hash ring with
``vnodes`` virtual points per node gives exactly that — adding one
node to an N-node ring remaps ~``1/(N+1)`` of the key space (the
stability property is pinned at ≤ ``1.5/N`` over a 1k-key sample in
``tests/serve/test_ring.py``).

Hashes are sha256 over UTF-8 strings, so routing is deterministic
across processes and machines: the front end and any out-of-process
tooling (or a test subprocess) agree on every key's owner without
coordination.  ``hash()`` is deliberately avoided — it is randomised
per process by PYTHONHASHSEED.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

#: Virtual points per node.  64 keeps the remap bound comfortably under
#: 1.5/N for small clusters while the ring stays tiny (N*64 ints).
DEFAULT_VNODES = 64

__all__ = ["DEFAULT_VNODES", "HashRing", "remap_fraction"]


def _point(label: str) -> int:
    """A stable 64-bit ring position for ``label``."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps keys to node names; membership changes move ~1/N of keys."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []   # sorted ring positions
        self._owners: list[str] = []   # node at each position
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(f"{node}#{i}")
            at = bisect.bisect_left(self._points, point)
            # sha256 collisions between distinct labels are not a
            # practical concern; ties resolve by insertion order.
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def route(self, key: str) -> str:
        """The node owning ``key``: first vnode clockwise from its hash."""
        if not self._points:
            raise LookupError("ring has no nodes")
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):
            at = 0  # wrap past the top of the ring
        return self._owners[at]

    # ------------------------------------------------------------------
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def describe(self) -> dict:
        """Distribution summary (points per node) for metrics/debugging."""
        share: dict[str, int] = {node: 0 for node in sorted(self._nodes)}
        for owner in self._owners:
            share[owner] += 1
        return {
            "nodes": sorted(self._nodes),
            "vnodes": self.vnodes,
            "points": share,
        }


def remap_fraction(
    before: HashRing, after: HashRing, keys: Iterable[str]
) -> Optional[float]:
    """Fraction of ``keys`` whose owner differs between two rings."""
    keys = list(keys)
    if not keys:
        return None
    moved = sum(1 for k in keys if before.route(k) != after.route(k))
    return moved / len(keys)
