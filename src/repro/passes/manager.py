"""The pass manager: scheduling, invalidation, observability.

Running a list of :class:`~repro.passes.base.Pass` objects over a
function produces a :class:`PassReport` with, per pass:

* wall time,
* IR size before/after (blocks and statements),
* analysis-cache hit/miss deltas (how much recomputation the pass
  caused vs reused),
* the pass's own payload (e.g. a ``PREResult``).

After each pass the manager applies the pass's ``preserves()``
declaration: an unpreserved CFG bumps the function's CFG generation
(invalidating dominators/frontiers/loops/liveness in the cache), a
preserved CFG bumps only the code generation (invalidating liveness),
and individually named analyses are re-stamped so they stay warm.

``verify_each=True`` re-verifies IR (and SSA, when the pipeline is in
SSA form) after every pass and names the offending pass on failure —
the debugging mode every production pass manager grows eventually.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.verifier import VerificationError, verify_function
from repro.passes.base import (
    PRESERVE_ALL,
    PRESERVE_CFG,
    Pass,
    PassVerificationError,
)
from repro.passes.cache import AnalysisCache
from repro.profiles.profile import ExecutionProfile


@dataclass
class PassContext:
    """Everything a pass may need besides the function itself."""

    cache: AnalysisCache
    profile: ExecutionProfile | None = None
    #: Run the per-class validators inside the wrapped drivers.
    validate: bool = False
    #: Whether the function is currently in SSA form (maintained by the
    #: SSA construction/destruction passes; drives SSA verification).
    in_ssa: bool = False
    #: Payloads of already-executed passes, keyed by pass name.
    results: dict[str, object] = field(default_factory=dict)


@dataclass
class PassExecution:
    """Observability record of one executed pass."""

    name: str
    wall_time: float
    blocks_before: int
    blocks_after: int
    stmts_before: int
    stmts_after: int
    cache_hits: int
    cache_misses: int
    payload: object | None = None

    def to_dict(self) -> dict:
        return {
            "pass": self.name,
            "wall_ms": round(self.wall_time * 1e3, 3),
            "blocks": [self.blocks_before, self.blocks_after],
            "statements": [self.stmts_before, self.stmts_after],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "payload": _payload_summary(self.payload),
        }


@dataclass
class PassReport:
    """Structured outcome of one pipeline run over one function."""

    function: str
    variant: str | None = None
    executions: list[PassExecution] = field(default_factory=list)
    #: Seconds spent copying the input (Function.clone) before the run.
    clone_time: float = 0.0
    total_time: float = 0.0
    cache_counters: dict[str, tuple[int, int]] = field(default_factory=dict)
    verified: bool = False

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(h for h, _ in self.cache_counters.values())

    @property
    def cache_misses(self) -> int:
        return sum(m for _, m in self.cache_counters.values())

    def execution(self, name: str) -> PassExecution:
        for ex in self.executions:
            if ex.name == name:
                return ex
        raise KeyError(f"no pass named {name!r} in this report")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "variant": self.variant,
            "clone_ms": round(self.clone_time * 1e3, 3),
            "total_ms": round(self.total_time * 1e3, 3),
            "verified_between_passes": self.verified,
            "passes": [ex.to_dict() for ex in self.executions],
            "cache": {
                name: {"hits": h, "misses": m}
                for name, (h, m) in sorted(self.cache_counters.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable fixed-width report."""
        title = f"PassReport: {self.function}"
        if self.variant:
            title += f" [{self.variant}]"
        lines = [title]
        header = (
            f"  {'pass':<18} {'ms':>8} {'blocks':>11} "
            f"{'stmts':>11} {'hit':>4} {'miss':>5}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for ex in self.executions:
            lines.append(
                f"  {ex.name:<18} {ex.wall_time * 1e3:>8.2f} "
                f"{ex.blocks_before:>4}->{ex.blocks_after:<5} "
                f"{ex.stmts_before:>4}->{ex.stmts_after:<5} "
                f"{ex.cache_hits:>4} {ex.cache_misses:>5}"
            )
            solver_used = getattr(ex.payload, "solver_used", None)
            if solver_used is not None:
                requested = getattr(ex.payload, "solver_requested", None)
                note = f"    solver: {solver_used}"
                if requested not in (None, solver_used):
                    note += f" (requested {requested})"
                width = getattr(ex.payload, "shape_width", None)
                if width is not None:
                    note += f", shape width {width}"
                refusals = getattr(ex.payload, "lospre_refusals", 0)
                if refusals:
                    note += f", {refusals} refusal(s)"
                lines.append(note)
            round_stats = getattr(ex.payload, "round_stats", None)
            if round_stats:
                per_round = "; ".join(
                    f"r{s.number}: {s.changed}/{s.classes} classes, "
                    f"{s.insertions} ins, {s.reloads} reloads"
                    for s in round_stats
                )
                fixpoint = getattr(ex.payload, "fixpoint", True)
                lines.append(
                    f"    rounds: {per_round} "
                    f"[{'fixpoint' if fixpoint else 'bound reached'}]"
                )
        lines.append(
            f"  total {self.total_time * 1e3:.2f} ms"
            f" (clone {self.clone_time * 1e3:.2f} ms)"
            f" | cache {self.cache_hits} hits / {self.cache_misses} misses"
        )
        if self.cache_counters:
            per = ", ".join(
                f"{name}: {h}h/{m}m"
                for name, (h, m) in sorted(self.cache_counters.items())
            )
            lines.append(f"  cache by analysis: {per}")
        return "\n".join(lines)


def _payload_summary(payload: object | None) -> object | None:
    """A JSON-safe one-line summary of a pass payload."""
    if payload is None:
        return None
    if isinstance(payload, (int, float, str, bool)):
        return payload
    round_stats = getattr(payload, "round_stats", None)
    if round_stats is not None:
        # A PREResult: surface the per-round worklist observability.
        summary = {
            "type": type(payload).__name__,
            "rounds": [stats.to_dict() for stats in round_stats],
            "fixpoint": payload.fixpoint,
            "insertions": payload.total_insertions,
            "reloads": payload.total_reloads,
        }
        solver_used = getattr(payload, "solver_used", None)
        if solver_used is not None:
            # An MCPREResult: record which speculation solver ran.
            summary["solver"] = solver_used
            summary["solver_requested"] = payload.solver_requested
            if payload.shape_width is not None:
                summary["shape_width"] = payload.shape_width
            if payload.lospre_refusals:
                summary["lospre_refusals"] = payload.lospre_refusals
        return summary
    return type(payload).__name__


class PassManager:
    """Runs passes over one function, maintaining the analysis cache."""

    def __init__(self, verify_each: bool = False) -> None:
        self.verify_each = verify_each

    # ------------------------------------------------------------------
    def run(
        self,
        func: Function,
        passes: list[Pass],
        *,
        profile: ExecutionProfile | None = None,
        validate: bool = False,
        variant: str | None = None,
        cache: AnalysisCache | None = None,
        report: PassReport | None = None,
    ) -> PassReport:
        """Execute *passes* in order over *func*; returns the report.

        An existing *report* may be passed in to append to (used by
        :func:`repro.passes.compiler.compile` to account the clone).
        """
        cache = AnalysisCache.ensure(func, cache)
        ctx = PassContext(cache=cache, profile=profile, validate=validate)
        if report is None:
            report = PassReport(function=func.name, variant=variant)
        report.verified = self.verify_each
        start = time.perf_counter()

        for p in passes:
            blocks_before = len(func)
            stmts_before = func.statement_count()
            hits_before = cache.total_hits()
            misses_before = cache.total_misses()

            t0 = time.perf_counter()
            payload = p.run(func, ctx)
            elapsed = time.perf_counter() - t0

            self._apply_preserves(func, cache, p, payload)
            if self.verify_each:
                self._verify(func, ctx, p)

            ctx.results[p.name] = payload
            report.executions.append(
                PassExecution(
                    name=p.name,
                    wall_time=elapsed,
                    blocks_before=blocks_before,
                    blocks_after=len(func),
                    stmts_before=stmts_before,
                    stmts_after=func.statement_count(),
                    cache_hits=cache.total_hits() - hits_before,
                    cache_misses=cache.total_misses() - misses_before,
                    payload=payload,
                )
            )

        report.total_time += time.perf_counter() - start
        report.cache_counters = cache.counters()
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_preserves(
        func: Function,
        cache: AnalysisCache,
        p: Pass,
        payload: object | None = None,
    ) -> None:
        preserved = p.preserves()
        if preserved == PRESERVE_ALL:
            return
        if not p.mutated(payload):
            # The pass declares (via its payload) that it changed
            # nothing: skip every generation bump so even code-keyed
            # analyses stay warm.
            return
        if PRESERVE_CFG in preserved:
            func.mark_code_mutated()
        else:
            func.mark_cfg_mutated()
        cache.reaffirm(frozenset(preserved) - {PRESERVE_CFG})

    def _verify(self, func: Function, ctx: PassContext, p: Pass) -> None:
        try:
            verify_function(func)
            if ctx.in_ssa:
                from repro.ssa.ssa_verifier import verify_ssa

                verify_ssa(func)
        except VerificationError as exc:
            raise PassVerificationError(
                f"pass {p.name!r} broke an IR invariant: {exc}"
            ) from exc
