"""Command-line entry: ``python -m repro.bench <artifact>``.

Artifacts:

* ``table1``  — paper Table 1 (CINT2006, A/B/C costs + speedups)
* ``table2``  — paper Table 2 (CFP2006)
* ``fig9``    — paper Figure 9 (CINT chart, normalised to A)
* ``fig10``   — paper Figure 10 (CFP chart)
* ``fig11``   — paper Figure 11 (EFG size distribution, whole suite)
* ``sec4``    — Section 4 comparison (EFG vs MC-PRE network sizes)
* ``lifetime``— ablation A1: reverse-labeling vs source-side cut
* ``profiles``— ablation A2: node-frequency sufficiency
* ``passes``  — per-pass pipeline report (times, IR sizes, cache hits)
* ``all``     — every paper artifact, in paper order

Use ``--benchmarks name1,name2`` to restrict table/figure runs,
``--validate`` to run the IR/SSA verifiers after every transformation,
``--seed N`` to shift every generator seed (rerunning the suite on fresh
deterministic program instances), ``--jobs N`` to fan benchmark sweeps
over worker processes (identical output, less wall time), ``--json``
for machine-readable output where supported (``passes``), and
``--solver {mincut,lospre,auto}`` to pick the mc-ssapre speculation
back end (``passes``).
"""

from __future__ import annotations

import argparse
import sys
import time
from functools import partial

from repro.bench.ablations import (
    lifetime_ablation,
    profile_ablation,
    render_lifetime,
    render_profiles,
)
from repro.bench.comparison import compare_workload, render_comparison
from repro.bench.figures import figure9, figure10, figure11
from repro.bench.tables import build_table, table1, table2
from repro.bench.workloads import (
    ALL_BENCHMARKS,
    CFP2006,
    CINT2006,
    load_workload,
)
from repro.core.solvers.base import SOLVER_NAMES
from repro.parallel import parallel_map


def _compare_named(name: str, *, seed_offset: int):
    return compare_workload(load_workload(name, seed_offset))


def _lifetime_named(name: str, *, seed_offset: int):
    return lifetime_ablation(load_workload(name, seed_offset))


def _profile_named(name: str, *, seed_offset: int):
    return profile_ablation(load_workload(name, seed_offset))


def _parse_names(arg: str | None, default: tuple[str, ...]) -> tuple[str, ...]:
    if not arg:
        return default
    names = tuple(name.strip() for name in arg.split(",") if name.strip())
    unknown = [n for n in names if n not in ALL_BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}")
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=[
            "table1", "table2", "fig9", "fig10", "fig11", "sec4",
            "lifetime", "profiles", "passes", "all",
        ],
    )
    parser.add_argument("--benchmarks", help="comma-separated subset of names")
    parser.add_argument("--validate", action="store_true")
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="offset added to every program-generator seed (default 0, "
        "the canonical suite)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (passes artifact only)",
    )
    parser.add_argument(
        "--solver",
        choices=SOLVER_NAMES,
        default="mincut",
        help="speculation solver for mc-ssapre compiles (passes artifact "
        "only): the exact min-cut back end, the linear-time lospre DP, "
        "or auto (shape classifier picks per function; default mincut)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for benchmark sweeps; output is identical "
        "to a single-process run (default 1)",
    )
    args = parser.parse_args(argv)
    jobs = max(1, args.jobs)

    start = time.time()
    artifact = args.artifact

    def sweep(worker, names):
        return parallel_map(
            partial(worker, seed_offset=args.seed), names, jobs=jobs
        )

    def cint_table():
        return build_table(
            _parse_names(args.benchmarks, CINT2006),
            "Table 1: CINT2006 dynamic costs and speedup ratios of MC-SSAPRE",
            validate=args.validate,
            seed_offset=args.seed,
            jobs=jobs,
        )

    def cfp_table():
        return build_table(
            _parse_names(args.benchmarks, CFP2006),
            "Table 2: CFP2006 dynamic costs and speedup ratios of MC-SSAPRE",
            validate=args.validate,
            seed_offset=args.seed,
            jobs=jobs,
        )

    if artifact == "table1":
        print(cint_table().render())
    elif artifact == "table2":
        print(cfp_table().render())
    elif artifact == "fig9":
        print(figure9(cint_table()).render())
    elif artifact == "fig10":
        print(figure10(cfp_table()).render())
    elif artifact == "fig11":
        tables = [cint_table(), cfp_table()]
        print(figure11(tables).render())
    elif artifact == "sec4":
        names = _parse_names(args.benchmarks, ALL_BENCHMARKS)
        print(render_comparison(sweep(_compare_named, names)))
    elif artifact == "lifetime":
        names = _parse_names(args.benchmarks, ALL_BENCHMARKS)
        print(render_lifetime(sweep(_lifetime_named, names)))
    elif artifact == "profiles":
        names = _parse_names(args.benchmarks, ALL_BENCHMARKS)
        print(render_profiles(sweep(_profile_named, names)))
    elif artifact == "passes":
        from repro.bench.passes_cmd import DEFAULT_BENCHMARK, passes_artifact

        names = _parse_names(args.benchmarks, (DEFAULT_BENCHMARK,))
        print(
            passes_artifact(
                names,
                seed_offset=args.seed,
                validate=args.validate,
                as_json=args.json,
                solver=args.solver,
            )
        )
    elif artifact == "all":
        t1 = cint_table()
        t2 = cfp_table()
        print(t1.render())
        print()
        print(t2.render())
        print()
        print(figure9(t1).render())
        print(figure10(t2).render())
        print(figure11([t1, t2]).render())
        print()
        names = _parse_names(args.benchmarks, ALL_BENCHMARKS)
        print(render_comparison(sweep(_compare_named, names)))
    print(f"\n[elapsed: {time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
