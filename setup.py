"""Setup shim.

Keeps ``pip install -e .`` working on environments whose pip/setuptools
cannot do PEP 660 editable installs (no ``wheel`` package); all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
