"""Lazy code motion (Knoop, Rüthing & Steffen) — the safe-PRE baseline.

The algorithm SSAPRE was designed to replicate in SSA form [15][16], in
the edge-placement formulation of Drechsler & Stadel (the one production
compilers such as GCC adopted).  Four bit-vector problems per program:

1. availability        (forward,  ∧)
2. anticipability      (backward, ∧)   — the down-safety component
3. *earliest*          (per edge)      — frontier where a computation
                                          first becomes both safe and new
4. *later/later-in*    (forward,  ∧)   — push insertions down as far as
                                          possible (lifetime optimality)

The resulting ``INSERT`` edge set is computationally and lifetime optimal
among **safe** placements; occurrences covered by the insertions become
fully redundant and are rewritten to temporary reads by the shared
availability-driven rewriter.

Role in this repository: an independent implementation of the optimum
safe SSAPRE must reach — their per-expression dynamic counts are asserted
equal in ``tests/baselines/test_lcm.py``, giving the safe side of the
system the same two-algorithm cross-check the speculative side gets from
MC-PRE vs MC-SSAPRE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis import cfg_of
from repro.analysis.dataflow import (
    ExprKey,
    expression_keys,
    solve_pre_dataflow,
)
from repro.baselines.mcpre import apply_insertions_and_rewrite
from repro.ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache


@dataclass
class LCMStats:
    key: ExprKey
    insert_edges: int


@dataclass
class LCMResult:
    stats: list[LCMStats] = field(default_factory=list)
    insertions: int = 0
    reloads: int = 0

    @property
    def total_insert_edges(self) -> int:
        return sum(s.insert_edges for s in self.stats)


def run_lcm(
    func: Function,
    validate: bool = False,
    cache: "AnalysisCache | None" = None,
) -> LCMResult:
    """Run lazy code motion on a non-SSA function, in place.

    Requires critical edges to be split (insertions go to whichever
    endpoint owns the edge alone), like every other pass here.
    """
    from repro.ssa.ssa_verifier import is_ssa

    if is_ssa(func):
        raise ValueError("LCM operates on non-SSA input")
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    result = LCMResult()
    for key in expression_keys(func):
        insert_edges = _solve_expression(func, key, cache)
        result.stats.append(LCMStats(key=key, insert_edges=len(insert_edges)))
        apply_insertions_and_rewrite(func, key, insert_edges, result, cache)
        if validate:
            from repro.ir.verifier import verify_function

            verify_function(func)
    func.mark_code_mutated()
    return result


def _solve_expression(
    func: Function, key: ExprKey, cache: "AnalysisCache | None" = None
) -> list[tuple[str, str]]:
    dataflow = solve_pre_dataflow(func, [key])
    cfg = cfg_of(func, cache)
    rpo = cfg.reverse_postorder()
    reachable = set(rpo)
    entry = func.entry
    assert entry is not None

    antloc = {b for b in reachable if key in dataflow.local[b].antloc}
    transp = {
        b
        for b in reachable
        if key not in dataflow.local[b].body_kill
        and key not in dataflow.local[b].phi_kill
    }
    ant_in = {b for b in reachable if key in dataflow.ant_postphi[b]}
    ant_out = {b for b in reachable if key in dataflow.ant_out[b]}
    avail_out = {b for b in reachable if key in dataflow.avail_out[b]}

    edges = [
        (i, j)
        for i in rpo
        for j in cfg.successors(i)
        if j in reachable
    ]

    # --- earliest: the computation becomes safe-and-new on this edge ----
    def earliest(i: str, j: str) -> bool:
        if j not in ant_in or i in avail_out:
            return False
        if i == entry:
            return True
        return i not in transp or i not in ant_out

    earliest_edges = {(i, j) for i, j in edges if earliest(i, j)}

    # --- later / later-in: sink insertions as far down as possible -----
    # Greatest fixpoint: optimistically everything is "later" except at
    # the entry, then shrink.
    later_in: dict[str, bool] = {b: b != entry for b in reachable}
    later: dict[tuple[str, str], bool] = {e: True for e in edges}
    changed = True
    while changed:
        changed = False
        for e in edges:
            i, j = e
            value = e in earliest_edges or (later_in[i] and i not in antloc)
            if value != later[e]:
                later[e] = value
                changed = True
        for b in reachable:
            if b == entry:
                continue
            preds_edges = [
                (p, b) for p in cfg.predecessors(b) if p in reachable
            ]
            value = all(later[e] for e in preds_edges) if preds_edges else False
            if value != later_in[b]:
                later_in[b] = value
                changed = True

    # --- insert points --------------------------------------------------
    return [e for e in edges if later[e] and not later_in[e[1]]]
