"""Operand values of the three-address IR.

The IR has exactly two kinds of operand: :class:`Const` (an immutable
integer literal) and :class:`Var` (a named variable, optionally carrying an
SSA version).  A variable with ``version is None`` belongs to a non-SSA
program; SSA construction rewrites every ``Var`` to a versioned one.

Both kinds are frozen dataclasses so they can be used as dictionary keys —
the PRE algorithms key many tables on operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Const:
    """An integer literal operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Var:
    """A variable operand.

    ``name`` is the base (source-level) name; ``version`` is the SSA
    version, or ``None`` when the program is not in SSA form.  Two
    expressions are *lexically identified* (paper, footnote 1) when they
    apply the same operator to operands with equal base names — versions are
    deliberately ignored for that purpose.
    """

    name: str
    version: int | None = None

    def with_version(self, version: int) -> "Var":
        """Return this variable carrying the given SSA version."""
        return Var(self.name, version)

    @property
    def base(self) -> "Var":
        """The version-less variable with the same name."""
        return Var(self.name) if self.version is not None else self

    def __str__(self) -> str:
        if self.version is None:
            return self.name
        return f"{self.name}.{self.version}"


#: Anything that may appear as an operand of an instruction.
Operand = Union[Const, Var]


def operand_base_key(operand: Operand) -> object:
    """Key identifying an operand lexically (base name, or constant value).

    Used to build expression-class keys: versions are stripped from
    variables, constants stand for themselves.
    """
    if isinstance(operand, Var):
        return ("var", operand.name)
    return ("const", operand.value)


def is_var(operand: Operand) -> bool:
    """True when *operand* is a variable (of any SSA version)."""
    return isinstance(operand, Var)
