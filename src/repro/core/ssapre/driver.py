"""SSAPRE drivers: safe PRE (compile A) and loop-speculative PRE (B).

`run_ssapre` processes every candidate expression class of a function in
first-occurrence order, rebuilding the FRG for each class on the current
(already partially transformed) function, exactly as a phased compiler
pass would.  Each class goes through:

    Φ-Insertion → Rename → DownSafety [→ loop speculation] →
    WillBeAvail → Finalize → CodeMotion

Returns a report per class so benchmarks can count insertions/reloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis import loop_forest_of
from repro.analysis.dataflow import solve_pre_dataflow
from repro.analysis.loops import LoopForest
from repro.core.ssapre.codemotion import CodeMotionReport, apply_code_motion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.core.ssapre.downsafety import (
    compute_down_safety,
    compute_down_safety_sparse,
)
from repro.core.ssapre.finalize import finalize
from repro.core.ssapre.frg import ExprClass, build_frgs, collect_expr_classes
from repro.core.ssapre.speculation import apply_loop_speculation
from repro.core.ssapre.willbeavail import compute_will_be_avail
from repro.ir.function import Function
from repro.ir.verifier import has_critical_edges
from repro.ssa.ssa_verifier import verify_ssa


@dataclass
class PREResult:
    """Aggregate outcome of a PRE run over a whole function."""

    algorithm: str
    reports: list[CodeMotionReport] = field(default_factory=list)
    speculated_phis: int = 0

    @property
    def total_insertions(self) -> int:
        return sum(r.insertions for r in self.reports)

    @property
    def total_reloads(self) -> int:
        return sum(r.reloads for r in self.reports)

    @property
    def classes_changed(self) -> int:
        return sum(1 for r in self.reports if r.changed)


def run_ssapre(
    func: Function,
    speculate_loops: bool = False,
    validate: bool = False,
    classes: list[ExprClass] | None = None,
    down_safety: str = "oracle",
    cache: "AnalysisCache | None" = None,
) -> PREResult:
    """Run safe SSAPRE (or SSAPREsp when ``speculate_loops``) in place.

    ``down_safety`` selects the DownSafety implementation: ``"oracle"``
    (exact, bit-vector anticipability) or ``"sparse"`` (Kennedy's
    rename-driven propagation; conservative, never unsafe).  CFG-derived
    analyses (dominators, frontiers, loops) come from *cache* when given.
    """
    if down_safety not in ("oracle", "sparse"):
        raise ValueError(f"unknown down_safety mode {down_safety!r}")
    if has_critical_edges(func):
        raise ValueError(
            "SSAPRE requires critical edges to be split first "
            "(use repro.ir.transforms.split_critical_edges)"
        )
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    if classes is None:
        classes = collect_expr_classes(func)
    result = PREResult(algorithm="SSAPREsp" if speculate_loops else "SSAPRE")

    # One shared rename walk and one shared bit-vector solve cover every
    # class: CodeMotion only replaces statements of the class it is
    # processing and introduces fresh temporaries, so neither the other
    # classes' FRGs nor their data-flow facts are invalidated.
    frgs = build_frgs(func, classes, cache=cache)
    dataflow = None
    if down_safety == "oracle":
        dataflow = solve_pre_dataflow(func, [expr.key for expr in classes])
    forest: LoopForest | None = None

    for expr in classes:
        frg = frgs[expr.key]
        if not frg.real_occs:
            continue
        if down_safety == "oracle":
            compute_down_safety(frg, dataflow)
        else:
            compute_down_safety_sparse(frg)
        if speculate_loops:
            if forest is None:
                forest = loop_forest_of(func, cache)
            result.speculated_phis += apply_loop_speculation(frg, forest)
        compute_will_be_avail(frg)
        plan = finalize(frg)
        report = apply_code_motion(func, plan)
        result.reports.append(report)
        if validate and report.changed:
            verify_ssa(func)
    func.mark_code_mutated()
    return result
