"""E7 — Section 3.3: compile-time scaling of MC-SSAPRE.

The paper argues the min-cut step's polynomial complexity is harmless in
practice because EFGs stay tiny; per *expression*, MC-SSAPRE's work is
linear in the FRG, so whole-function compile time scales like
(number of expression classes) x (program size).  This bench compiles
generated programs of increasing size and asserts the cost per
(class x statement) unit stays bounded — i.e. no hidden quadratic in the
per-class work itself — and that the largest EFG's min cut never
dominates.
"""

import copy
import time

from conftest import emit

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa

SIZES = (3, 5, 8, 12)  # region_length knob drives program size


def compile_once(region_length: int, seed: int = 7):
    spec = ProgramSpec(
        name=f"scale{region_length}",
        seed=seed,
        region_length=region_length,
        max_depth=3,
        loop_mask_bits=3,
    )
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    train = run_function(prepared, random_args(spec, 1))
    ssa = copy.deepcopy(prepared)
    construct_ssa(ssa)
    from repro.core.ssapre.frg import collect_expr_classes

    classes = len(collect_expr_classes(ssa))
    started = time.perf_counter()
    result = run_mc_ssapre(ssa, train.profile.nodes_only())
    elapsed = time.perf_counter() - started
    return prepared.statement_count(), classes, elapsed, result


def test_scaling_near_linear(benchmark):
    benchmark.pedantic(
        compile_once, args=(SIZES[1],), rounds=1, iterations=1
    )

    rows = []
    for size in SIZES:
        stmts, classes, elapsed, result = compile_once(size)
        rows.append(
            (size, stmts, classes, elapsed, max(result.efg_sizes(), default=0))
        )

    body = "\n".join(
        f"  region_length={size:<3} statements={stmts:<6} classes={classes:<4} "
        f"compile={elapsed * 1000:8.1f} ms  "
        f"unit={elapsed / (stmts * classes) * 1e9:6.1f} ns/(stmt*class)  "
        f"largest EFG={largest}"
        for size, stmts, classes, elapsed, largest in rows
    )
    emit("Section 3.3 (compile-time scaling)", body)

    small = rows[0]
    large = rows[-1]
    unit_small = small[3] / (small[1] * small[2])
    unit_large = large[3] / (large[1] * large[2])
    # The per-(class x statement) cost must stay bounded while the
    # program grows by two orders of magnitude (generous CI-proof bound).
    assert unit_large < unit_small * 4, (unit_small, unit_large)
