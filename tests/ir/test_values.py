"""Tests for IR operand values."""

import pytest

from repro.ir.values import Const, Var, is_var, operand_base_key


class TestConst:
    def test_str(self):
        assert str(Const(42)) == "42"
        assert str(Const(-3)) == "-3"

    def test_equality_and_hash(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const(2)
        assert hash(Const(1)) == hash(Const(1))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Const(1).value = 2  # type: ignore[misc]


class TestVar:
    def test_unversioned_str(self):
        assert str(Var("a")) == "a"

    def test_versioned_str_uses_dot(self):
        assert str(Var("a", 3)) == "a.3"

    def test_with_version(self):
        assert Var("a").with_version(2) == Var("a", 2)

    def test_base_strips_version(self):
        assert Var("a", 5).base == Var("a")
        assert Var("a").base == Var("a")

    def test_distinct_versions_are_distinct_keys(self):
        table = {Var("a", 1): "x", Var("a", 2): "y"}
        assert table[Var("a", 1)] == "x"
        assert table[Var("a", 2)] == "y"


class TestOperandBaseKey:
    def test_var_key_ignores_version(self):
        assert operand_base_key(Var("a", 1)) == operand_base_key(Var("a", 9))
        assert operand_base_key(Var("a")) == ("var", "a")

    def test_const_key(self):
        assert operand_base_key(Const(7)) == ("const", 7)

    def test_var_and_const_keys_disjoint(self):
        assert operand_base_key(Var("x")) != operand_base_key(Const(0))


def test_is_var():
    assert is_var(Var("a"))
    assert is_var(Var("a", 1))
    assert not is_var(Const(1))
