"""Tests for MC-SSAPRE step 3: sparse availability / anticipability.

The sparse analyses are version-aware; the lexical bit-vector oracle is
one-sided (lexical availability implies sparse availability, sparse
partial anticipability is implied by the lexical one).  Both directions
plus exact renaming cases are covered.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import solve_pre_dataflow
from repro.bench.generator import ProgramSpec, generate_program
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.ir.builder import FunctionBuilder
from repro.ir.transforms import split_critical_edges
from repro.ssa.construct import construct_ssa
from tests.conftest import as_ssa

AB = ExprClass(("add", ("var", "a"), ("var", "b")))


class TestKnownCases:
    def test_diamond_join_not_avail_but_pant(self, diamond):
        ssa = as_ssa(diamond)
        frg = build_frgs(ssa, [AB])[AB.key]
        solve_step3(frg)
        phi = frg.phis[0]
        assert not phi.fully_avail  # right arm does not compute
        assert phi.part_anticipated  # join computes

    def test_both_arms_computing_gives_availability(self):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.assign("y", "add", "a", "b")
        b.jump("j")
        b.block("j")
        b.assign("z", "add", "a", "b")
        b.ret("z")
        frg = build_frgs(as_ssa(b.build()), [AB])[AB.key]
        solve_step3(frg)
        phi = frg.phi_at("j")
        assert phi.fully_avail

    def test_availability_through_operand_renaming(self):
        """The sparse analysis sees a value surviving a variable phi,
        which the lexical oracle cannot (paper's Section 4 point about
        SSAPRE handling redundancy uniformly)."""
        b = FunctionBuilder("f", params=["u", "v", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.copy("a", "u")
        b.copy("b", "v")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.copy("a", "v")
        b.copy("b", "u")
        b.assign("y", "add", "a", "b")
        b.jump("j")
        b.block("j")
        b.assign("z", "add", "a", "b")  # fully redundant through renaming
        b.ret("z")
        ssa = as_ssa(b.build())
        frg = build_frgs(ssa, [AB])[AB.key]
        solve_step3(frg)
        phi = frg.phi_at("j")
        assert phi is not None and phi.fully_avail
        # The lexical oracle is conservative here: the variable phis at j
        # kill the class.
        dataflow = solve_pre_dataflow(ssa, [AB.key])
        assert AB.key not in dataflow.avail_at_postphi("j")

    def test_no_uses_means_not_anticipated(self):
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.output("x")
        b.jump("j")
        b.block("r")
        b.jump("j")
        b.block("j")
        b.ret(0)  # a+b never used after the join
        frg = build_frgs(as_ssa(b.build()), [AB])[AB.key]
        solve_step3(frg)
        phi = frg.phi_at("j")
        # Φ-insertion prunes blocks from which no occurrence is reachable,
        # so the Φ either never exists or is not partially anticipated.
        assert phi is None or not phi.part_anticipated

    def test_loop_invariant_phi_pant_not_avail(self, while_loop):
        frg = build_frgs(as_ssa(while_loop), [AB])[AB.key]
        solve_step3(frg)
        head = frg.phi_at("head")
        assert head.part_anticipated
        assert not head.fully_avail  # bottom on the entry edge

    def test_self_referential_loop_phi_availability(self):
        """A loop phi whose back-edge operand is itself stays available
        when the entry edge carries the value (greatest fixpoint)."""
        b = FunctionBuilder("f", params=["a", "b", "n"])
        b.block("entry")
        b.assign("x", "add", "a", "b")  # computed before the loop
        b.copy("i", 0)
        b.jump("head")
        b.block("head")
        b.assign("c", "lt", "i", "n")
        b.branch("c", "body", "done")
        b.block("body")
        b.assign("y", "add", "a", "b")  # invariant reuse inside
        b.assign("i", "add", "i", "y")
        b.jump("head")
        b.block("done")
        b.ret("x")
        frg = build_frgs(as_ssa(b.build()), [AB])[AB.key]
        solve_step3(frg)
        for phi in frg.phis:
            assert phi.fully_avail, phi


class TestOneSidedOracle:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000))
    def test_lexical_avail_implies_sparse_avail(self, seed):
        spec = ProgramSpec(name="mc", seed=seed, max_depth=2)
        func = generate_program(spec).func
        split_critical_edges(func)
        construct_ssa(func)
        frgs = build_frgs(func)
        dataflow = solve_pre_dataflow(func, list(frgs))
        for key, frg in frgs.items():
            solve_step3(frg)
            for phi in frg.phis:
                if key in dataflow.avail_at_postphi(phi.label):
                    assert phi.fully_avail, (key, phi)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2_000, max_value=4_000))
    def test_sparse_pant_superset_of_lexical(self, seed):
        spec = ProgramSpec(name="mc", seed=seed, max_depth=2)
        func = generate_program(spec).func
        split_critical_edges(func)
        construct_ssa(func)
        frgs = build_frgs(func)
        dataflow = solve_pre_dataflow(func, list(frgs))
        for key, frg in frgs.items():
            solve_step3(frg)
            for phi in frg.phis:
                lexical = key in dataflow.pant_postphi[phi.label]
                if lexical:
                    assert phi.part_anticipated, (key, phi)
