"""Failure corpus: durable, replayable artifacts under ``results/check/``.

Every failing case produces two files named by its identity
``seed<seed>_<shape>_<oracle>_<kind>_<variant>``:

* ``<slug>.json`` — the machine-readable record: the generator seed and
  shape (enough to regenerate the program bit-for-bit), the oracle
  transcript (every failure the case produced), and the reduction audit
  trail;
* ``<slug>.ir``   — the shrunk function in textual IR, parseable by
  :mod:`repro.lang.parser` and guaranteed structurally identical to the
  in-memory function that failed.

A whole run additionally writes ``summary.json`` (schema documented in
``docs/CHECKING.md`` and pinned by ``tests/check/test_cli.py``).

:func:`replay_artifact` closes the loop: given a ``.json`` artifact it
re-runs the stored seed through the driver and reports whether the same
``(oracle, kind, variant)`` failure reappears — the determinism contract
the whole corpus rests on.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.check.driver import CaseResult, run_case
from repro.check.oracles import OracleFailure, VariantFn
from repro.check.reducer import ReductionResult
from repro.ir.printer import format_function

#: Version of the artifact / summary JSON layout.  v2 added the
#: ``engine`` and ``jobs`` fields to the run summary; v3 added
#: ``interrupted`` (partial statistics after Ctrl-C / worker death) and
#: the ``cache`` consistency oracle to the default oracle set; v4 added
#: the ``solver`` field and the always-on ``mc-ssapre-lospre``
#: differential twin (exact-compared by the optimality oracle).  v5
#: added the ``probes`` differential oracle (minimum-coverage profiling
#: reconstruction vs full counting) and the automatic flow-conservation
#: validation of every fuzzed profile ("profile" failure bucket).
SCHEMA_VERSION = 5

#: Default artifact directory, relative to the repository root.
DEFAULT_OUT_DIR = Path("results") / "check"


def _atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* atomically (safe under ``--jobs N``).

    A concurrent writer can never leave a torn file behind: the content
    lands in a same-directory temp file first and is renamed into place
    (``os.replace`` is atomic on POSIX and Windows).
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def failure_slug(result: CaseResult, failure: OracleFailure) -> str:
    """Filesystem-safe identity of one failure."""
    variant = failure.variant.replace("/", "-")
    return (
        f"seed{result.seed}_{result.shape}_{failure.oracle}"
        f"_{failure.kind}_{variant}"
    )


def write_failure_artifact(
    out_dir: Path | str,
    result: CaseResult,
    failure: OracleFailure,
    reduction: ReductionResult | None = None,
) -> Path:
    """Persist one failure (and its reduction, if any); returns the .json."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    slug = failure_slug(result, failure)

    original_ir = (
        format_function(result.case.source) if result.case is not None else None
    )
    record = {
        "schema": SCHEMA_VERSION,
        "seed": result.seed,
        "shape": result.shape,
        "oracle": failure.oracle,
        "variant": failure.variant,
        "kind": failure.kind,
        "detail": failure.detail,
        "transcript": [f.to_dict() for f in result.failures],
        "original_ir": original_ir,
        "reduced_ir": reduction.ir_text if reduction else None,
        "reduction": (
            {
                "blocks": reduction.blocks,
                "statements": reduction.statements,
                "rounds": reduction.rounds,
                "attempts": reduction.attempts,
                "accepted": reduction.accepted,
                "trail": [list(step) for step in reduction.trail],
            }
            if reduction
            else None
        ),
        "replay": (
            f"python -m repro.check --replay {out_dir / (slug + '.json')}"
        ),
    }
    json_path = out_dir / f"{slug}.json"
    _atomic_write_text(json_path, json.dumps(record, indent=2) + "\n")
    ir_text = record["reduced_ir"] or original_ir
    if ir_text is not None:
        _atomic_write_text(out_dir / f"{slug}.ir", ir_text + "\n")
    return json_path


def write_summary(
    out_dir: Path | str, summary: dict
) -> Path:
    """Write the run summary (the same dict ``--json`` prints)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "summary.json"
    _atomic_write_text(path, json.dumps(summary, indent=2) + "\n")
    return path


def replay_artifact(
    path: Path | str,
    *,
    extra_variants: dict[str, VariantFn] | None = None,
) -> tuple[bool, CaseResult]:
    """Re-run a stored failure from its seed; True = it reproduced.

    Failures of injected (out-of-tree) variants need the same
    ``extra_variants`` mapping that produced them — the artifact stores
    the variant *name*, not the code.
    """
    record = json.loads(Path(path).read_text())
    oracle = record["oracle"]
    # Compile failures surface during the build itself, before any oracle.
    oracles = (oracle,) if oracle != "compile" else ()
    result = run_case(
        record["seed"],
        record["shape"],
        oracles=oracles,
        extra_variants=extra_variants,
    )
    reproduced = any(
        f.oracle == oracle
        and f.kind == record["kind"]
        and f.variant == record["variant"]
        for f in result.failures
    )
    return reproduced, result
