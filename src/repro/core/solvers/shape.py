"""CFG shape classification and the ``auto`` solver-selection policy.

The lospre DP is linear only while the elimination width stays bounded,
and whether it will is (essentially) a property of the **control-flow
graph alone**: the DP's variable graph — the included Φs with their
def-use edges — is a *minor* of the CFG (contract each Φ's reaching
region onto its defining node), and treewidth never grows under minors.
A CFG whose underlying undirected graph eliminates within the width
bound therefore makes every per-class reduced graph tractable too; the
bound transfer is exact for treewidth and heuristic for the greedy
widths both layers actually compute, which is why the DP keeps its own
per-class refusal as a safety net.  Classifying the *function* rather
than each reduced graph buys two things:

* the verdict is deterministic from function structure, independent of
  the profile and of which expression classes exist — so the serving
  layer can resolve ``solver="auto"`` to a concrete solver *before*
  hashing a cache key (the key records the solver actually used);
* one classification covers every class and every iterative round,
  because rounds preserve CFG shape (the worklist engine's contract).

The classifier runs the same greedy min-degree elimination the DP uses,
over the undirected CFG, and reports the width it achieved — structured
if/loop nests come out with small constant width (series-parallel-ish
graphs are width ≤ 2), while dense or irreducible flowgraphs blow the
bound and are routed to the min cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.solvers.base import SOLVER_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.function import Function

#: Elimination-width bound for accepting a CFG into the lospre lane.
#: Deliberately at most the DP's own bound
#: (:data:`repro.core.solvers.lospre.DEFAULT_MAX_WIDTH`) so acceptance
#: here implies the DP never refuses mid-compile.
DEFAULT_CFG_WIDTH_BOUND = 8


@dataclass(frozen=True)
class ShapeReport:
    """The classifier's verdict for one function."""

    accepted: bool
    #: Width achieved by the greedy elimination, or the bound+1 witness
    #: scope size minus one at the point the bound was exceeded.
    width: int
    blocks: int
    reason: str

    def solver_name(self) -> str:
        return "lospre" if self.accepted else "mincut"


def cfg_elimination_width(
    adjacency: dict[str, set[str]], bound: int
) -> tuple[bool, int]:
    """Greedy min-degree elimination width of an undirected graph.

    Returns ``(True, width)`` when the graph eliminates within ``bound``,
    else ``(False, width_at_overflow)``.  Deterministic: ties on degree
    break toward the smallest label.
    """
    adj = {node: set(neigh) for node, neigh in adjacency.items()}
    remaining = set(adj)
    width = 0
    while remaining:
        node = min(remaining, key=lambda u: (len(adj[u] & remaining), u))
        neighbors = adj[node] & remaining
        width = max(width, len(neighbors))
        if width > bound:
            return False, width
        remaining.discard(node)
        for a in neighbors:
            adj[a].update(neighbors - {a})
    return True, width


def classify_cfg(
    func: "Function", *, bound: int = DEFAULT_CFG_WIDTH_BOUND
) -> ShapeReport:
    """Classify *func*'s CFG for lospre eligibility."""
    adjacency: dict[str, set[str]] = {label: set() for label in func.blocks}
    for label, block in func.blocks.items():
        for succ in block.successors():
            if succ == label:
                continue  # self-loops never widen an elimination
            adjacency[label].add(succ)
            adjacency.setdefault(succ, set()).add(label)
    accepted, width = cfg_elimination_width(adjacency, bound)
    if accepted:
        reason = f"elimination width {width} <= bound {bound}"
    else:
        reason = f"elimination width exceeded bound {bound}"
    return ShapeReport(
        accepted=accepted,
        width=width,
        blocks=len(func.blocks),
        reason=reason,
    )


def select_solver(
    func: "Function", requested: str
) -> tuple[str, ShapeReport | None]:
    """Resolve a solver *request* against a concrete function.

    ``auto`` classifies the CFG and picks ``lospre`` or ``mincut``;
    forced names pass through unchanged (``lospre`` still classifies, so
    callers get the shape report and the per-class DP keeps its own
    refusal as a safety net).  Returns ``(solver_name, report)`` where
    the report is ``None`` only for a forced ``mincut``.
    """
    if requested not in SOLVER_NAMES:
        raise ValueError(
            f"unknown solver {requested!r}; expected one of {SOLVER_NAMES}"
        )
    if requested == "mincut":
        return "mincut", None
    report = classify_cfg(func)
    if requested == "lospre":
        return "lospre", report
    return report.solver_name(), report
