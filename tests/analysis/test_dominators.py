"""Tests for dominator analysis, cross-checked against the naive solver."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dominators import DominatorTree, dominators_naive
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import CondJump, Jump, Return
from repro.ir.values import Var


def random_cfg(seed: int, n_blocks: int) -> Function:
    """A random (possibly irreducible) CFG for structural analyses.

    Not interpretable — used only for graph algorithms.
    """
    rng = random.Random(seed)
    func = Function("g", [Var("c")])
    labels = [f"n{i}" for i in range(n_blocks)]
    for label in labels:
        func.add_block(label)
    for i, label in enumerate(labels):
        block = func.blocks[label]
        roll = rng.random()
        if roll < 0.2 or i == n_blocks - 1:
            block.terminator = Return()
        elif roll < 0.6:
            block.terminator = Jump(rng.choice(labels))
        else:
            block.terminator = CondJump(
                Var("c"), rng.choice(labels), rng.choice(labels)
            )
    return func


class TestAgainstNaive:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=14),
    )
    def test_idom_matches_naive_dom_sets(self, seed, n):
        func = random_cfg(seed, n)
        cfg = CFG(func)
        tree = DominatorTree(cfg)
        naive = dominators_naive(cfg)
        for label in cfg.reachable():
            doms = {d for d in naive[label] if tree.dominates(d, label)}
            assert doms == naive[label], label
            # idom is the unique closest strict dominator.
            idom = tree.idom[label]
            if idom is None:
                assert label == cfg.entry
            else:
                strict = naive[label] - {label}
                assert idom in strict
                for other in strict:
                    assert other in naive[idom]


class TestKnownShapes:
    def test_diamond(self, diamond):
        tree = DominatorTree(CFG(diamond))
        assert tree.idom["left"] == "entry"
        assert tree.idom["right"] == "entry"
        assert tree.idom["join"] == "entry"
        assert tree.dominates("entry", "join")
        assert not tree.dominates("left", "join")

    def test_loop(self, while_loop):
        tree = DominatorTree(CFG(while_loop))
        assert tree.idom["head"] == "entry"
        assert tree.idom["body"] == "head"
        assert tree.idom["done"] == "head"
        assert tree.dominates("head", "body")

    def test_reflexive(self, diamond):
        tree = DominatorTree(CFG(diamond))
        for label in diamond.blocks:
            assert tree.dominates(label, label)
            assert not tree.strictly_dominates(label, label)

    def test_preorder_parents_first(self, while_loop):
        tree = DominatorTree(CFG(while_loop))
        order = list(tree.preorder())
        assert order[0] == "entry"
        for label in order:
            parent = tree.idom[label]
            if parent is not None:
                assert order.index(parent) < order.index(label)

    def test_depth(self, while_loop):
        tree = DominatorTree(CFG(while_loop))
        assert tree.depth("entry") == 0
        assert tree.depth("head") == 1
        assert tree.depth("body") == 2

    def test_children_sorted_by_rpo(self, diamond):
        tree = DominatorTree(CFG(diamond))
        assert set(tree.children["entry"]) == {"left", "right", "join"}


class TestDominanceTransitivity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_transitive_and_antisymmetric(self, seed):
        func = random_cfg(seed, 10)
        cfg = CFG(func)
        tree = DominatorTree(cfg)
        labels = list(cfg.reachable())
        for a in labels:
            for b in labels:
                if a != b and tree.dominates(a, b) and tree.dominates(b, a):
                    raise AssertionError(f"{a} and {b} dominate each other")
                for c in labels:
                    if tree.dominates(a, b) and tree.dominates(b, c):
                        assert tree.dominates(a, c)
