"""Shared analysis descriptors.

One module-level singleton per analysis; everything downstream (SSA
construction, the PRE drivers, the baselines, the opt passes) requests
results through these descriptors so a whole pipeline shares one
computation of each until invalidation.

``depends`` semantics: the CFG, dominator tree, dominance frontiers and
loop forest are functions of the CFG *shape* only, so instruction-level
rewrites leave them valid; liveness reads instruction operands, so any
code mutation invalidates it.
"""

from __future__ import annotations

from repro.analysis.domfrontier import dominance_frontiers
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.loops import LoopForest
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.passes.base import AnalysisPass
from repro.passes.cache import AnalysisCache, register_analysis


class CFGAnalysis(AnalysisPass):
    name = "cfg"
    depends = "cfg"

    def compute(self, func: Function, cache: AnalysisCache) -> CFG:
        return CFG(func)


class DominatorTreeAnalysis(AnalysisPass):
    name = "domtree"
    depends = "cfg"

    def compute(self, func: Function, cache: AnalysisCache) -> DominatorTree:
        return DominatorTree(cache.get(CFG_ANALYSIS))


class DominanceFrontierAnalysis(AnalysisPass):
    name = "domfrontier"
    depends = "cfg"

    def compute(self, func: Function, cache: AnalysisCache) -> dict[str, set[str]]:
        return dominance_frontiers(
            cache.get(CFG_ANALYSIS), cache.get(DOMTREE_ANALYSIS)
        )


class LoopForestAnalysis(AnalysisPass):
    name = "loops"
    depends = "cfg"

    def compute(self, func: Function, cache: AnalysisCache) -> LoopForest:
        return LoopForest(cache.get(CFG_ANALYSIS), cache.get(DOMTREE_ANALYSIS))


class LivenessAnalysis(AnalysisPass):
    name = "liveness"
    depends = "code"

    def compute(self, func: Function, cache: AnalysisCache) -> Liveness:
        return compute_liveness(func, by_version=False)


class VersionedLivenessAnalysis(AnalysisPass):
    name = "liveness.ssa"
    depends = "code"

    def compute(self, func: Function, cache: AnalysisCache) -> Liveness:
        return compute_liveness(func, by_version=True)


class CompiledProgramAnalysis(AnalysisPass):
    """The function lowered for the compiled execution back end.

    Any instruction rewrite invalidates the lowering, so ``depends`` is
    the code generation: run → mutate → run recompiles, while the
    many-runs-per-compile pattern of the check oracles and the FDO
    protocol compiles exactly once.
    """

    name = "compiled"
    depends = "code"

    def compute(self, func: Function, cache: AnalysisCache) -> object:
        from repro.profiles.compiled import compile_function

        return compile_function(func)


CFG_ANALYSIS = register_analysis(CFGAnalysis())
DOMTREE_ANALYSIS = register_analysis(DominatorTreeAnalysis())
DOMFRONTIER_ANALYSIS = register_analysis(DominanceFrontierAnalysis())
LOOPS_ANALYSIS = register_analysis(LoopForestAnalysis())
LIVENESS_ANALYSIS = register_analysis(LivenessAnalysis())
LIVENESS_SSA_ANALYSIS = register_analysis(VersionedLivenessAnalysis())
COMPILED_ANALYSIS = register_analysis(CompiledProgramAnalysis())

#: The preservation tokens implied by an intact CFG shape.
CFG_FAMILY = frozenset({"cfg"})
