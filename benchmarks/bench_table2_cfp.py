"""E2 — paper Table 2: CFP2006 costs and MC-SSAPRE speedups.

Also checks the paper's family asymmetry: loop-based speculation (B)
recovers a larger share of MC-SSAPRE's win on the loop-dominated CFP
programs than on CINT, so the average (B-C)/B gap is smaller on CFP.
"""

from conftest import emit

from repro.bench.tables import measure_workload
from repro.bench.workloads import load_workload


def test_table2_rows(cfp_table, cint_table, benchmark):
    workload = load_workload("milc")
    benchmark.pedantic(
        measure_workload, args=(workload,), rounds=1, iterations=1
    )

    emit("Table 2 (CFP2006)", cfp_table.render())

    assert cfp_table.average_speedup_a > 0
    assert cfp_table.average_speedup_b >= 0
    for row in cfp_table.rows:
        assert row.c_cost <= row.a_cost * 1.03, row.benchmark

    # The family asymmetry (paper Section 5.1's closing discussion).
    assert cfp_table.average_speedup_b < cint_table.average_speedup_b
