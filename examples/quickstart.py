#!/usr/bin/env python3
"""Quickstart: run MC-SSAPRE on the paper's running example.

Walks the ten steps of the algorithm (paper Figure 4) on the curated
running example, printing the intermediate artifacts the paper's figures
show: the FRG after Rename (Figure 3), the reduced SSA graph / EFG
(Figures 5-6), the chosen minimum cut, and the final optimised program
(Figure 8).

Run:  python examples/quickstart.py
"""

import copy

from repro.core.mcssapre.cut import solve_min_cut
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.core.mcssapre.efg import build_efg
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.examples_data.running_example import AB_KEY, CD_KEY, build_running_example
from repro.ir.printer import format_function
from repro.ir.transforms import split_critical_edges
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    example = build_running_example()

    banner("Input program (non-SSA), with its node-frequency profile")
    print(format_function(example.func))
    print("\nnode frequencies:", example.profile.node_freq)

    func = copy.deepcopy(example.func)
    split_critical_edges(func)
    construct_ssa(func)

    banner("Steps 1-2: the factored redundancy graphs after Rename")
    for key in (AB_KEY, CD_KEY):
        frg = build_frgs(func, [ExprClass(key)])[key]
        print(frg.describe())
        print()

    banner("Steps 3-7: reduction, EFG and minimum cut for each class")
    for key in (AB_KEY, CD_KEY):
        frg = build_frgs(func, [ExprClass(key)])[key]
        solve_step3(frg)
        reduced = build_reduced_graph(frg)
        efg = build_efg(reduced, example.profile)
        if efg is None:
            print(f"{ExprClass(key)}: no strictly partial redundancy")
            continue
        print(efg.describe())
        decision = solve_min_cut(efg)
        print(f"  min-cut value: {decision.cut.value}")
        print(f"  insertions at: {[(o.pred, o.phi.label) for o in decision.insert_operands]}")
        print(f"  compute in place at: {[o.label for o in decision.in_place_occs]}")
        print()

    banner("Steps 8-10: the optimised program")
    optimised = copy.deepcopy(example.func)
    split_critical_edges(optimised)
    construct_ssa(optimised)
    result = run_mc_ssapre(optimised, example.profile, validate=True)
    print(format_function(optimised))

    banner("Dynamic behaviour before vs after (input a=1 b=2 p=1 q=5)")
    args = [1, 2, 1, 5]
    before = run_function(example.func, args)
    after = run_function(optimised, args)
    assert before.observable() == after.observable(), "semantics preserved"
    print(f"  a+b evaluations: {before.expr_counts.get(AB_KEY, 0)} -> "
          f"{after.expr_counts.get(AB_KEY, 0)}")
    print(f"  c+d evaluations: {before.expr_counts.get(CD_KEY, 0)} -> "
          f"{after.expr_counts.get(CD_KEY, 0)}")
    print(f"  weighted dynamic cost: {before.dynamic_cost} -> {after.dynamic_cost}")
    print(f"  EFG sizes formed: {result.efg_sizes()}")
    print("\nObservable behaviour identical; speculation paid off.")


if __name__ == "__main__":
    main()
