"""Cross-process build locks: mutual exclusion, stale breaking,
and the single-flight rehydration protocol they enable."""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.cluster.locks import FileLock, KeyLockManager, LockTimeout
from repro.serve.server import CompileRequest, CompileService
from repro.serve.store import Artifact, ArtifactStore


class TestFileLock:
    def test_mutual_exclusion_across_threads(self, tmp_path):
        path = tmp_path / "a.lock"
        inside = 0
        overlaps = []

        def worker():
            nonlocal inside
            for _ in range(20):
                with FileLock(path):
                    inside += 1
                    if inside > 1:
                        overlaps.append(inside)
                    time.sleep(0.001)
                    inside -= 1

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert overlaps == []
        assert not path.exists()  # released locks unlink their file

    def test_release_removes_lock_file(self, tmp_path):
        lock = FileLock(tmp_path / "b.lock")
        lock.acquire()
        assert lock.locked()
        assert (tmp_path / "b.lock").exists()
        lock.release()
        assert not lock.locked()
        assert not (tmp_path / "b.lock").exists()

    def test_acquire_times_out_while_held(self, tmp_path):
        path = tmp_path / "c.lock"
        holder = FileLock(path)
        holder.acquire()
        try:
            waiter = FileLock(path, poll_s=0.005)
            with pytest.raises(LockTimeout):
                waiter.acquire(timeout=0.1)
        finally:
            holder.release()

    def test_reacquire_while_held_raises(self, tmp_path):
        lock = FileLock(tmp_path / "d.lock")
        with lock:
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_stale_lock_from_hung_process_is_broken(self, tmp_path):
        """A subprocess flocks the path and hangs; once the file's mtime
        ages past ``stale_after`` a waiter breaks it and acquires."""
        path = tmp_path / "stale.lock"
        script = (
            "import fcntl, os, sys, time\n"
            f"fd = os.open({str(path)!r}, os.O_CREAT | os.O_RDWR)\n"
            "fcntl.flock(fd, fcntl.LOCK_EX)\n"
            "print('locked', flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "locked"
            # Age the lock file past the staleness threshold.
            past = time.time() - 3600
            os.utime(path, (past, past))
            broken = []
            waiter = FileLock(
                path, stale_after=0.2, poll_s=0.005,
                on_break=broken.append,
            )
            waiter.acquire(timeout=5.0)
            try:
                assert waiter.locked()
                assert broken == [str(path)]
            finally:
                waiter.release()
        finally:
            proc.kill()
            proc.wait()

    def test_fresh_lock_is_not_broken(self, tmp_path):
        path = tmp_path / "fresh.lock"
        holder = FileLock(path)
        holder.acquire()
        try:
            broken = []
            waiter = FileLock(
                path, stale_after=30.0, poll_s=0.005,
                on_break=broken.append,
            )
            with pytest.raises(LockTimeout):
                waiter.acquire(timeout=0.15)
            assert broken == []
            assert holder.locked()
        finally:
            holder.release()


class TestKeyLockManager:
    def test_lock_paths_shard_like_the_store(self, tmp_path):
        manager = KeyLockManager(tmp_path)
        lock = manager.lock("abcdef0123")
        assert lock.path == str(tmp_path / "ab" / "abcdef0123.lock")

    def test_holding_is_exclusive_per_key(self, tmp_path):
        manager = KeyLockManager(tmp_path, poll_s=0.005)
        with manager.holding("k1"):
            # A different key is independent...
            with manager.holding("k2", timeout=0.5):
                pass
            # ...the same key is not.
            with pytest.raises(LockTimeout):
                with manager.holding("k1", timeout=0.1):
                    pass


class _GatedBuild:
    """An injectable build that blocks until released (and counts calls)."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def __call__(self, prepared, config, *, key, engine="compiled",
                 train_args=None, max_steps=2_000_000):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released build"
        return Artifact(
            key=key, variant=config.variant, engine=engine, func=prepared
        )


class TestCrossProcessSingleFlight:
    def test_race_loser_rehydrates_from_shared_disk(
        self, tmp_path, diamond_source
    ):
        """Two services (model: two worker processes) share one disk
        tier and one lock dir.  Racing one cold key must compile it
        exactly once; the loser serves the winner's artifact."""
        disk = tmp_path / "cache"
        locks = str(tmp_path / "locks")
        build = _GatedBuild()
        winner = CompileService(
            ArtifactStore.with_disk(disk), lock_dir=locks, build=build
        )
        loser = CompileService(
            ArtifactStore.with_disk(disk), lock_dir=locks
        )
        request = CompileRequest(
            source=diamond_source, args=(4, 5, 1), variant="ssapre"
        )
        try:
            results = {}
            tw = threading.Thread(
                target=lambda: results.setdefault("w", winner.handle(request))
            )
            tw.start()
            # The winner is inside its build, holding the key's file
            # lock, before the loser even starts.
            assert build.started.wait(timeout=5.0)
            tl = threading.Thread(
                target=lambda: results.setdefault("l", loser.handle(request))
            )
            tl.start()
            time.sleep(0.1)  # let the loser block on the file lock
            build.release.set()
            tw.join(timeout=10.0)
            tl.join(timeout=10.0)
        finally:
            winner.close()
            loser.close()

        assert results["w"].status == results["l"].status == "ok"
        assert results["w"].served_by == "compile"
        assert results["l"].served_by == "disk"
        assert results["w"].key == results["l"].key
        assert build.calls == 1
        assert winner.metrics.get("compiles") == 1
        assert loser.metrics.get("compiles") == 0
        assert loser.metrics.get("lock_rehydrates") == 1
        # Counter coherence: a rehydrated request still counted a miss.
        assert loser.metrics.get("misses") == (
            loser.metrics.get("compiles")
            + loser.metrics.get("lock_rehydrates")
        )

    def test_lock_break_increments_metric(self, tmp_path, diamond_source):
        """A pre-aged orphan lock file on the request's key is broken on
        the way to compiling, and the break is counted."""
        disk = tmp_path / "cache"
        locks = tmp_path / "locks"
        with CompileService(
            ArtifactStore.with_disk(disk), lock_dir=str(locks)
        ) as service:
            service._locks.stale_after = 0.05
            request = CompileRequest(
                source=diamond_source, args=(1, 2, 3), variant="ssapre"
            )
            # Plant a hung holder: flock held, mtime aged well past the
            # staleness threshold (a live builder refreshes on acquire).
            lock_path = service._locks.lock(
                service._plan(request)[2]
            ).path
            orphan = FileLock(lock_path)
            orphan.acquire()
            past = time.time() - 3600
            os.utime(lock_path, (past, past))
            try:
                response = service.handle(request)
            finally:
                os.close(orphan._fd)
                orphan._fd = None
            assert response.status == "ok"
            assert response.served_by == "compile"
            assert service.metrics.get("lock_breaks") == 1
