"""Textual rendering of IR functions.

The output is valid input for :mod:`repro.lang.parser`, so
``parse(format_function(f))`` round-trips (up to block ordering, which is
preserved).  Example::

    func main(n) {
    entry:
      i = 0
      jump head
    head:
      c = lt i, n
      br c, body, done
    body:
      i = add i, 1
      jump head
    done:
      ret i
    }

``format_function(f, normalize=True)`` additionally renumbers SSA
versions into a canonical dense sequence (per base name, in order of
first textual occurrence), so two structurally identical functions that
differ only in value numbering print to identical bytes.  That is the
determinism guarantee the content-addressed cache keys of
:mod:`repro.serve.keys` are built on: normalized printing is a pure
function of program *structure*, and ``parse(print(f))`` re-prints to
the same bytes (pinned by ``tests/ir/test_printer_normalize.py``).
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Assign, BinOp, Load, Store, UnaryOp
from repro.ir.values import Operand, Var


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    lines = [f"{block.label}:"]
    for phi in block.phis:
        lines.append(f"{indent}{phi}")
    for stmt in block.body:
        lines.append(f"{indent}{stmt}")
    lines.append(f"{indent}{block.terminator}")
    return "\n".join(lines)


def _printed_blocks(func: Function) -> list[BasicBlock]:
    """Blocks in printed order: entry first, then insertion order."""
    ordered = list(func.blocks.values())
    if func.entry is not None:
        entry = func.blocks[func.entry]
        ordered.remove(entry)
        ordered.insert(0, entry)
    return ordered


def format_function(func: Function, *, normalize: bool = False) -> str:
    if normalize:
        func = normalize_versions(func)
    params = ", ".join(str(p) for p in func.params)
    header = f"func {func.name}({params})"
    if func.arrays:
        # Sorted by name so the printed form is canonical regardless of
        # declaration order — the serve cache keys hash these bytes.
        rendered = ", ".join(
            f"{name}: {length}" for name, length in sorted(func.arrays.items())
        )
        header += f" arrays({rendered})"
    lines = [header + " {"]
    for block in _printed_blocks(func):
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SSA-version normalization
# ----------------------------------------------------------------------
def version_renumbering(func: Function) -> dict[Var, Var]:
    """The canonical renumbering map of every *versioned* variable.

    Versions are reassigned densely (1, 2, 3, ...) per base name, in
    order of first occurrence in a scan that follows printed order
    exactly: parameters, then each block (entry first, insertion order)
    — phi targets and their arguments (in the sorted predecessor order
    the printer emits), body statements (target, then operands), and the
    terminator.  The scan is a pure function of program structure, so
    any injective re-versioning of the input yields the same map image.
    Unversioned variables are untouched.
    """
    mapping: dict[Var, Var] = {}
    next_version: dict[str, int] = {}

    def visit(operand: Operand | None) -> None:
        if not isinstance(operand, Var) or operand.version is None:
            return
        if operand in mapping:
            return
        version = next_version.get(operand.name, 0) + 1
        next_version[operand.name] = version
        mapping[operand] = Var(operand.name, version)

    for param in func.params:
        visit(param)
    for block in _printed_blocks(func):
        for phi in block.phis:
            visit(phi.target)
            for _, arg in sorted(phi.args.items()):
                visit(arg)
        for stmt in block.body:
            if isinstance(stmt, Assign):
                visit(stmt.target)
            for operand in stmt.used_operands():
                visit(operand)
        for operand in block.terminator.used_operands():
            visit(operand)
    return mapping


def normalize_versions(func: Function) -> Function:
    """A clone of *func* with SSA versions canonically renumbered.

    The clone is structurally identical to the input up to the (bijective
    per name) version renumbering of :func:`version_renumbering`; a
    function with no versioned variables comes back as a plain clone.
    """
    mapping = version_renumbering(func)
    out = func.clone()
    if not mapping:
        return out

    def subst(operand: Operand) -> Operand:
        return mapping.get(operand, operand) if isinstance(operand, Var) else operand

    out.params = [subst(param) for param in out.params]
    for block in out.blocks.values():
        for phi in block.phis:
            phi.target = subst(phi.target)
            phi.args = {label: subst(arg) for label, arg in phi.args.items()}
        for stmt in block.body:
            if isinstance(stmt, Assign):
                stmt.target = subst(stmt.target)
                rhs = stmt.rhs
                if isinstance(rhs, BinOp):
                    rhs.left = subst(rhs.left)
                    rhs.right = subst(rhs.right)
                elif isinstance(rhs, UnaryOp):
                    rhs.operand = subst(rhs.operand)
                elif isinstance(rhs, Load):
                    rhs.index = subst(rhs.index)
                else:
                    stmt.rhs = subst(rhs)
            elif isinstance(stmt, Store):
                stmt.index = subst(stmt.index)
                stmt.value = subst(stmt.value)
            else:  # Output
                stmt.value = subst(stmt.value)
        term = block.terminator
        for attr in ("cond", "value"):
            if hasattr(term, attr):
                operand = getattr(term, attr)
                if operand is not None:
                    setattr(term, attr, subst(operand))
    return out
