"""SSAPRE step 6 — CodeMotion.

Applies a :class:`~repro.core.ssapre.finalize.FinalizePlan` to the
function, keeping it in valid SSA form:

* every save ``x = a+b`` becomes ``t.v = a+b ; x = t.v``;
* every reload ``x = a+b`` becomes ``x = t.v_def``;
* every insertion appends ``t.v = a+b`` at the end of the predecessor
  block named by the Φ operand, with the operand versions captured there
  during Rename;
* every surviving Φ becomes a real phi of ``t``.

The PRE temporary gets a fresh base name per expression class and one SSA
version per definition, so the output is verifiable SSA and subsequent
classes can be processed on the updated function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ssapre.finalize import FinalizePlan, TDef
from repro.ir.function import Function
from repro.ir.instructions import Assign, Phi
from repro.ir.values import Var


@dataclass
class CodeMotionReport:
    """What CodeMotion did — consumed by benchmarks and tests.

    Beyond the summary counts, the report carries the statement-level
    delta the worklist engine feeds back into the occurrence index:
    ``inserted`` holds every new candidate computation (``(label, stmt)``
    for edge insertions and the compute half of each save), ``removed``
    every original statement that was replaced, and ``copies`` the
    value-equalities the rewrite established (``x = t.v`` pairs from
    saves and reloads) through which higher-rank operands can be
    propagated.
    """

    expr: str
    temp_name: str | None
    saves: int
    reloads: int
    insertions: int
    phis: int
    inserted: list[tuple[str, Assign]] = field(default_factory=list)
    removed: list[Assign] = field(default_factory=list)
    copies: list[tuple[Var, Var]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.reloads or self.insertions)


def apply_code_motion(func: Function, plan: FinalizePlan) -> CodeMotionReport:
    """Rewrite *func* in place according to *plan*."""
    frg = plan.frg
    if not plan.has_effect():
        return CodeMotionReport(
            expr=str(frg.expr),
            temp_name=None,
            saves=0,
            reloads=0,
            insertions=0,
            phis=0,
        )

    temp = func.fresh_temp("%pre")

    # Assign one SSA version of the temporary to every t-definition.
    version_of: dict[int, int] = {}
    next_version = 0

    def define(node: TDef) -> Var:
        nonlocal next_version
        if id(node) not in version_of:
            next_version += 1
            version_of[id(node)] = next_version
        return Var(temp.name, version_of[id(node)])

    # 1. Materialise phis of t (targets defined first so args can refer).
    for phi in plan.t_phis:
        define(phi)
    for occ in plan.saves:
        define(occ)
    for node in plan.insertions.values():
        define(node)

    for phi in plan.t_phis:
        args = {
            pred: define(node) for pred, node in plan.t_phi_args[id(phi)].items()
        }
        func.blocks[phi.label].phis.append(Phi(Var(temp.name, version_of[id(phi)]), args))

    inserted: list[tuple[str, Assign]] = []
    removed: list[Assign] = []
    copies: list[tuple[Var, Var]] = []

    # 2. Insertions at predecessor-block ends.
    for node in plan.insertions.values():
        block = func.blocks[node.pred]
        rhs = frg.expr.make_rhs(tuple(node.operand_values))  # type: ignore[arg-type]
        stmt = Assign(define(node), rhs)
        block.body.append(stmt)
        inserted.append((node.pred, stmt))

    # 3. Rewrite saves and reloads (touching only the affected blocks).
    replacements: dict[int, list[Assign]] = {}
    touched: set[str] = set()
    for occ in plan.saves:
        tvar = define(occ)
        compute = Assign(tvar, occ.stmt.rhs)
        copy = Assign(occ.stmt.target, tvar)
        replacements[id(occ.stmt)] = [compute, copy]
        touched.add(occ.label)
        inserted.append((occ.label, compute))
        removed.append(occ.stmt)
        copies.append((occ.stmt.target, tvar))
    for occ in plan.occ_reload:
        definition = plan.reloads[id(occ)]
        source = define(definition)
        replacements[id(occ.stmt)] = [Assign(occ.stmt.target, source)]
        touched.add(occ.label)
        removed.append(occ.stmt)
        copies.append((occ.stmt.target, source))

    for label in touched:
        block = func.blocks[label]
        new_body = []
        for stmt in block.body:
            new_body.extend(replacements.get(id(stmt), [stmt]))
        block.body = new_body

    return CodeMotionReport(
        expr=str(frg.expr),
        temp_name=temp.name,
        saves=len(plan.saves),
        reloads=len(plan.reloads),
        insertions=len(plan.insertions),
        phis=len(plan.t_phis),
        inserted=inserted,
        removed=removed,
        copies=copies,
    )

