"""Differential parity: compiled back end vs the reference interpreter.

The contract is *bit-identical* :class:`RunResult` data — same return
value, output trace, profile, dynamic cost, per-expression counts and
step count — plus :class:`InterpreterError` parity (same error, same
message, at the same step budget).  The property is checked over a
derandomized seeded generator corpus in both fuzz shapes, with trapping
operators enabled, so this is the tier-1 pin of the differential test
the check driver runs at scale.
"""

import pytest

from repro.bench.generator import generate_program
from repro.check.driver import case_inputs, spec_for_shape
from repro.ir.builder import FunctionBuilder
from repro.passes.cache import AnalysisCache
from repro.passes.compiler import compile as compile_func
from repro.pipeline import prepare
from repro.profiles.compiled import (
    compile_function,
    run_compiled,
)
from repro.profiles.interp import InterpreterError, run_function

MAX_STEPS = 250_000
SEEDS = range(12)
SHAPES = ("cint", "cfp")


def assert_bit_identical(ref, got):
    assert got.return_value == ref.return_value
    assert got.output == ref.output
    assert dict(got.profile.node_freq) == dict(ref.profile.node_freq)
    assert dict(got.profile.edge_freq) == dict(ref.profile.edge_freq)
    assert got.dynamic_cost == ref.dynamic_cost
    assert dict(got.expr_counts) == dict(ref.expr_counts)
    assert got.steps == ref.steps


class TestGeneratorCorpus:
    """Derandomized property over the seeded fuzz corpus (all shapes,
    trapping operators on)."""

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_prepared_parity(self, shape, seed):
        spec = spec_for_shape(shape, seed)
        prepared = prepare(generate_program(spec).func)
        program = compile_function(prepared)
        for args in case_inputs(spec):
            ref = run_function(prepared, args, max_steps=MAX_STEPS)
            got = program.run(args, max_steps=MAX_STEPS)
            assert_bit_identical(ref, got)

    @pytest.mark.parametrize("variant", ["mc-ssapre", "ssapre", "lcm"])
    def test_optimized_variant_parity(self, variant):
        spec = spec_for_shape("cint", 3)
        prepared = prepare(generate_program(spec).func)
        inputs = case_inputs(spec)
        profile = run_function(
            prepared, inputs[0], max_steps=MAX_STEPS
        ).profile
        out = compile_func(prepared, variant, profile, validate=True)
        for args in inputs:
            ref = run_function(out.func, args, max_steps=MAX_STEPS)
            got = run_compiled(
                out.func, args, max_steps=MAX_STEPS, cache=out.cache
            )
            assert_bit_identical(ref, got)


class TestErrorParity:
    def _diamond_with_partial_def(self):
        # "maybe" is assigned on only one arm of the diamond, so reading
        # it afterwards is defined iff the branch went left.
        b = FunctionBuilder("partial", params=["p"])
        b.block("entry")
        b.branch("p", "left", "right")
        b.block("left")
        b.assign("maybe", "add", "p", 1)
        b.jump("join")
        b.block("right")
        b.jump("join")
        b.block("join")
        b.copy("x", "maybe")
        b.ret("x")
        return prepare(b.build(), restructure=False)

    def test_arity_error_matches(self):
        func = self._diamond_with_partial_def()
        with pytest.raises(InterpreterError) as ref_exc:
            run_function(func, [])
        with pytest.raises(InterpreterError) as got_exc:
            run_compiled(func, [])
        assert str(got_exc.value) == str(ref_exc.value)

    def test_undefined_read_matches(self):
        func = self._diamond_with_partial_def()
        # Taken branch: defined on both engines, identical results.
        assert_bit_identical(
            run_function(func, [1]), run_compiled(func, [1])
        )
        # Fallthrough: both engines raise the same message.
        with pytest.raises(InterpreterError) as ref_exc:
            run_function(func, [0])
        with pytest.raises(InterpreterError) as got_exc:
            run_compiled(func, [0])
        assert "read of undefined variable" in str(ref_exc.value)
        assert str(got_exc.value) == str(ref_exc.value)

    @pytest.mark.parametrize("budget", [1, 7, 50, 173, MAX_STEPS])
    def test_step_budget_parity(self, budget):
        spec = spec_for_shape("cfp", 1)
        prepared = prepare(generate_program(spec).func)
        args = case_inputs(spec)[0]
        try:
            ref = run_function(prepared, args, max_steps=budget)
            ref_outcome = ("ok", ref)
        except InterpreterError as exc:
            ref_outcome = ("raise", str(exc))
        try:
            got = run_compiled(prepared, args, max_steps=budget)
            got_outcome = ("ok", got)
        except InterpreterError as exc:
            got_outcome = ("raise", str(exc))
        assert got_outcome[0] == ref_outcome[0]
        if ref_outcome[0] == "raise":
            assert got_outcome[1] == ref_outcome[1]
            assert f"exceeded {budget} interpreted steps" in ref_outcome[1]
        else:
            assert_bit_identical(ref_outcome[1], got_outcome[1])


class TestCaching:
    def test_cache_memoises_lowering(self, straightline):
        cache = AnalysisCache(straightline)
        from repro.passes.analyses import COMPILED_ANALYSIS

        run_compiled(straightline, [2, 3], cache=cache)
        first = cache.peek(COMPILED_ANALYSIS)
        assert first is not None
        run_compiled(straightline, [4, 5], cache=cache)
        assert cache.peek(COMPILED_ANALYSIS) is first

    def test_code_mutation_invalidates(self, straightline):
        cache = AnalysisCache(straightline)
        from repro.passes.analyses import COMPILED_ANALYSIS

        before = run_compiled(straightline, [2, 3], cache=cache)
        first = cache.peek(COMPILED_ANALYSIS)
        straightline.mark_code_mutated()
        after = run_compiled(straightline, [2, 3], cache=cache)
        assert cache.peek(COMPILED_ANALYSIS) is not first
        assert_bit_identical(before, after)
