"""Two-tier artifact cache: in-memory LRU over an optional on-disk store.

The unit of storage is an :class:`Artifact` — everything one compile
produced that later requests can reuse: the optimised function, its
lowered :class:`~repro.profiles.compiled.CompiledProgram` (pickle-stable
since the program regenerates its closures from source on load), and the
artifact-safe :class:`~repro.passes.manager.PassReport` summary.

Tiers:

* :class:`MemoryStore` — a bounded LRU (entry count *and* approximate
  bytes).  Hot keys stay resident; eviction order is pinned by
  ``tests/serve/test_store.py``.
* :class:`DiskStore` — one pickle file per key under a sharded
  directory, written via temp-file + :func:`os.replace` so readers can
  never observe a torn artifact, and read through a corruption-tolerant
  loader: any unreadable file (truncated, garbage, wrong schema) counts
  as a miss, is quarantined out of the way, and the artifact is simply
  recompiled — a cache must never turn a bad disk into a wrong answer.
* :class:`ArtifactStore` — the two-tier facade the server talks to:
  memory first, then disk (promoting hits into memory), writes go to
  both.
"""

from __future__ import annotations

import io
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.ir.function import Function
from repro.profiles.compiled import CompiledProgram

#: Version of the pickled artifact layout.  Bump on any incompatible
#: change to :class:`Artifact`; old files then read as corrupt (a miss)
#: instead of deserialising into a lie.
#: 2: ``train_node_freq`` (the node profile the optimiser trained on,
#:    kept as the drift baseline for the adaptation tier).
#: 3: ``profiling`` (the instrumentation mode the served program was
#:    lowered in: "full" counting or minimum-coverage "probes").
ARTIFACT_SCHEMA = 3

__all__ = [
    "ARTIFACT_SCHEMA",
    "Artifact",
    "MemoryStore",
    "DiskStore",
    "ArtifactStore",
]


@dataclass
class Artifact:
    """One cached compile: optimised function + lowered program + report."""

    key: str
    variant: str
    engine: str
    #: The optimised (non-SSA) function, ready for the reference engine.
    func: Function
    #: The lowered program for the compiled engine; ``None`` when the
    #: artifact is degraded (the compile failed and the service fell back
    #: to the prepared function on the reference interpreter).
    program: CompiledProgram | None = None
    #: Artifact-safe pass report (``PassReport.to_dict()``): plain JSON
    #: data, no live payload objects, so it pickles and serves cheaply.
    report: dict | None = None
    #: True when :attr:`func` is the *prepared* (unoptimised) function
    #: because the requested variant's compile raised.
    degraded: bool = False
    #: Why the artifact is degraded (repr of the compile error).
    degraded_reason: str | None = None
    #: Node frequencies of the profile this artifact was optimised under
    #: (``None`` for profile-free variants).  The adaptation tier scores
    #: live traffic against exactly this baseline to detect drift.
    train_node_freq: dict[str, int] | None = None
    #: Instrumentation mode of the served program: "full" counting, or
    #: minimum-coverage "probes" (sparse counters + flow-conservation
    #: reconstruction; see repro.profiles.probes).  Both modes produce
    #: bit-identical RunResults, so this is provenance, not identity —
    #: it is deliberately absent from the artifact key.
    profiling: str = "full"
    schema: int = ARTIFACT_SCHEMA
    #: Pickled size in bytes; computed on first use (see ``nbytes``).
    _nbytes: int | None = field(default=None, repr=False, compare=False)

    def nbytes(self) -> int:
        """Approximate in-memory footprint: the pickled size.

        Computed once and cached — artifacts are immutable after
        construction.  Pickling is also exactly what the disk tier does,
        so the two tiers account size identically.
        """
        if self._nbytes is None:
            buf = io.BytesIO()
            pickle.dump(self, buf, protocol=pickle.HIGHEST_PROTOCOL)
            self._nbytes = buf.tell()
        return self._nbytes

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_nbytes"] = None  # recomputed lazily on the other side
        return state


class MemoryStore:
    """A thread-safe LRU bounded by entry count and approximate bytes."""

    def __init__(
        self, max_entries: int = 256, max_bytes: int = 256 << 20
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Artifact]" = OrderedDict()
        self._bytes = 0

    def get(self, key: str) -> Artifact | None:
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
            return artifact

    def put(self, key: str, artifact: Artifact) -> list[str]:
        """Insert (or refresh) *key*; returns the keys evicted to fit it.

        An artifact larger than ``max_bytes`` still caches (it just
        evicts everything else): refusing it would turn the hottest
        oversized program into a permanent miss.
        """
        evicted: list[str] = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes()
            self._entries[key] = artifact
            self._bytes += artifact.nbytes()
            while len(self._entries) > self.max_entries or (
                self._bytes > self.max_bytes and len(self._entries) > 1
            ):
                victim_key, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes()
                self.evictions += 1
                evicted.append(victim_key)
        return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Current keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes


class DiskStore:
    """One pickle file per artifact under ``root``, written atomically."""

    SUFFIX = ".artifact.pkl"

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.corrupt = 0

    def path(self, key: str) -> Path:
        # Two-level sharding keeps directories small under heavy traffic.
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def get(self, key: str) -> Artifact | None:
        """Load an artifact, treating *any* failure as a miss.

        A truncated write (power loss mid-``os.replace`` is impossible,
        but a torn copy from elsewhere is not), a pickle from a newer
        schema, or plain garbage: all quarantine the file (best-effort
        rename to ``*.corrupt``) and return ``None`` so the caller
        recompiles.
        """
        path = self.path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            artifact = pickle.loads(blob)
            if not isinstance(artifact, Artifact) or artifact.schema != ARTIFACT_SCHEMA:
                raise ValueError("wrong artifact type or schema")
            if artifact.key != key:
                raise ValueError("artifact key does not match its filename")
        except Exception:  # noqa: BLE001 - corruption is expected, not fatal
            self.corrupt += 1
            try:
                os.replace(path, path.with_suffix(".corrupt"))
            except OSError:
                pass
            return None
        return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self) -> list[str]:
        return sorted(
            p.name[: -len(self.SUFFIX)]
            for p in self.root.glob(f"*/*{self.SUFFIX}")
        )


class ArtifactStore:
    """The two-tier facade: memory LRU in front of an optional disk store."""

    def __init__(
        self,
        memory: MemoryStore | None = None,
        disk: DiskStore | None = None,
    ) -> None:
        self.memory = memory or MemoryStore()
        self.disk = disk

    @classmethod
    def with_disk(
        cls,
        root: Path | str,
        *,
        max_entries: int = 256,
        max_bytes: int = 256 << 20,
    ) -> "ArtifactStore":
        return cls(
            memory=MemoryStore(max_entries=max_entries, max_bytes=max_bytes),
            disk=DiskStore(root),
        )

    def get(self, key: str) -> tuple[Artifact | None, str | None]:
        """``(artifact, tier)``: tier is "memory", "disk" or ``None``.

        Disk hits are promoted into the memory tier so the next lookup
        is cheap.
        """
        artifact = self.memory.get(key)
        if artifact is not None:
            return artifact, "memory"
        if self.disk is not None:
            artifact = self.disk.get(key)
            if artifact is not None:
                self.memory.put(key, artifact)
                return artifact, "disk"
        return None, None

    def put(self, key: str, artifact: Artifact) -> list[str]:
        """Write through both tiers; returns memory-tier evictions."""
        evicted = self.memory.put(key, artifact)
        if self.disk is not None:
            self.disk.put(key, artifact)
        return evicted

    @property
    def evictions(self) -> int:
        return self.memory.evictions

    @property
    def disk_corrupt(self) -> int:
        return self.disk.corrupt if self.disk is not None else 0
