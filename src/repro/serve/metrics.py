"""Serving metrics: counters and latency histograms, exported as JSON.

One :class:`ServeMetrics` instance per service.  Everything is guarded
by one lock (requests touch several counters and a histogram each; a
torn read would make the CI hit-rate gate flaky), and
:meth:`ServeMetrics.to_dict` takes a consistent snapshot under the same
lock.  The schema is pinned by ``tests/serve/test_metrics.py`` and
documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import threading

#: Version of the exported metrics JSON layout.
#: 2: adaptation counters (live profiles, drift, hot swaps, tiering).
METRICS_SCHEMA = 2

#: Histogram bucket upper bounds in seconds (log-spaced, the usual
#: serving-latency decades), plus an implicit +inf bucket.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Counter names, in export order.  Kept in one tuple so the exporter,
#: the reset path and the schema test cannot drift apart.
COUNTERS = (
    "requests",          # every request the service accepted
    "hits_memory",       # artifact served from the in-memory LRU
    "hits_disk",         # artifact served from the on-disk store
    "misses",            # artifact had to be built
    "coalesced",         # request waited on another request's compile
    "compiles",          # artifact builds that ran a real compile
    "compile_failures",  # compiles that raised (artifact degraded)
    "degraded",          # requests served by the reference interpreter
    "timeouts",          # requests that exceeded their deadline
    "errors",            # requests that failed outright (bad input, run error)
    "evictions",         # in-memory LRU evictions
    "disk_corrupt",      # on-disk artifacts dropped as unreadable
    # -- adaptation tier (repro.serve.adapt) ---------------------------
    "live_samples",      # served runs folded into a live profile
    "tier_interp",       # requests served by the tier-0 interpreter
    "drift_events",      # drift-detector firings (live vs compile profile)
    "recompiles",        # background builds the adaptation tier scheduled
    "hot_swaps",         # artifact bindings atomically replaced
    "tier_promotions",   # interpreter -> compiled-artifact promotions
    "tier_demotions",    # compiled-artifact -> interpreter demotions
    "rollbacks",         # hot swaps undone to the previous artifact
)

__all__ = [
    "COUNTERS",
    "LATENCY_BUCKETS",
    "METRICS_SCHEMA",
    "Histogram",
    "ServeMetrics",
]


class Histogram:
    """A fixed-bucket latency histogram (seconds).

    Not thread-safe on its own; :class:`ServeMetrics` serialises access.
    """

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> dict:
        buckets = {f"le_{bound:g}": n for bound, n in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum_s": round(self.total, 6),
            "min_s": round(self.min, 6) if self.count else 0.0,
            "max_s": round(self.max, 6),
            "mean_s": round(self.total / self.count, 6) if self.count else 0.0,
            "buckets": buckets,
        }


class ServeMetrics:
    """Thread-safe counters + histograms for one compile service."""

    #: Histogram names, in export order.
    HISTOGRAMS = ("compile_s", "execute_s", "request_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = dict.fromkeys(COUNTERS, 0)
        self._histograms = {name: Histogram() for name in self.HISTOGRAMS}

    # ------------------------------------------------------------------
    def inc(self, counter: str, amount: int = 1) -> None:
        if counter not in self._counters:
            raise KeyError(f"unknown counter {counter!r}; known: {COUNTERS}")
        with self._lock:
            self._counters[counter] += amount

    def observe(self, histogram: str, seconds: float) -> None:
        hist = self._histograms.get(histogram)
        if hist is None:
            raise KeyError(
                f"unknown histogram {histogram!r}; known: {self.HISTOGRAMS}"
            )
        with self._lock:
            hist.observe(seconds)

    def get(self, counter: str) -> int:
        with self._lock:
            return self._counters[counter]

    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Fraction of requests that never waited on a compile of their own.

        Memory hits, disk hits and coalesced requests all count: none of
        them paid for a compile, which is the cost the cache exists to
        amortise.  0.0 before any request.
        """
        with self._lock:
            hits = (
                self._counters["hits_memory"]
                + self._counters["hits_disk"]
                + self._counters["coalesced"]
            )
            requests = self._counters["requests"]
        return hits / requests if requests else 0.0

    def to_dict(self) -> dict:
        """A consistent JSON-safe snapshot of every counter and histogram."""
        with self._lock:
            counters = dict(self._counters)
            histograms = {
                name: hist.to_dict() for name, hist in self._histograms.items()
            }
        hits = counters["hits_memory"] + counters["hits_disk"] + counters["coalesced"]
        requests = counters["requests"]
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "hit_rate": round(hits / requests, 4) if requests else 0.0,
            "histograms": histograms,
        }
