"""Live execution-profile accumulation for served programs.

Every served run already derives its per-block execution counts — the
reference interpreter counts them directly and the compiled back end
reconstructs them from edge traversals (:mod:`repro.profiles.compiled`)
— so live profiling costs one :meth:`LiveProfile.fold` per request:
a dict update under a lock, no extra instrumentation in the hot loop.

The accumulator is *bounded*: when the total folded block weight passes
``max_weight`` the counts are halved (exponential decay in O(blocks)),
so the profile tracks recent traffic with bounded memory of the past —
a stale distribution cannot pin the detector below threshold forever,
and the integer counts can never overflow into pathological min-cut
capacities when the snapshot is fed back into MC-SSAPRE.

Two views are maintained, because two consumers need different weightings:

* :meth:`LiveProfile.node_freq` — the raw count sum.  This is the true
  expected per-request node frequency (times the sample count), exactly
  the profile a recompile should optimise under.
* :meth:`LiveProfile.mean_freq` — the sum of per-run *normalized*
  distributions, so every request votes with equal weight.  This is the
  drift signal: when a phase shift makes runs much shorter (loops
  collapse), the new runs carry almost no count mass and a count-weighted
  mixture can never register the change, while the per-run mean moves in
  direct proportion to the fraction of requests that shifted.
"""

from __future__ import annotations

import threading
from collections import Counter
from collections.abc import Mapping

from repro.profiles.profile import ExecutionProfile

#: Default total block-count budget before a decay step halves the
#: accumulator.  High enough that single runs never immediately decay,
#: low enough that a phase shift dominates within tens of runs.
DEFAULT_MAX_WEIGHT = 1 << 20

__all__ = ["DEFAULT_MAX_WEIGHT", "LiveProfile", "normalized"]


def normalized(freq: Mapping[str, float]) -> dict[str, float]:
    """*freq* as a probability distribution (empty stays empty)."""
    total = sum(freq.values())
    if total <= 0:
        return {}
    return {label: count / total for label, count in freq.items() if count}


class LiveProfile:
    """Thread-safe node-frequency accumulator with bounded decay."""

    def __init__(self, max_weight: int = DEFAULT_MAX_WEIGHT) -> None:
        if max_weight < 1:
            raise ValueError("max_weight must be >= 1")
        self.max_weight = max_weight
        self._lock = threading.Lock()
        self._node_freq: Counter[str] = Counter()
        self._mean_freq: dict[str, float] = {}
        self._weight = 0
        self._samples = 0
        self._decays = 0

    # ------------------------------------------------------------------
    def fold(self, node_freq: Mapping[str, int]) -> None:
        """Accumulate one run's node counts (one lock, one dict update)."""
        with self._lock:
            total = 0
            for label, count in node_freq.items():
                if count:
                    self._node_freq[label] += count
                    total += count
            if total:
                # Equal-weight vote: this run's *distribution*, so short
                # runs count as much as long ones in the drift signal.
                for label, count in node_freq.items():
                    if count:
                        self._mean_freq[label] = (
                            self._mean_freq.get(label, 0.0) + count / total
                        )
            self._weight += total
            self._samples += 1
            if self._weight > self.max_weight:
                self._decay_locked()

    def _decay_locked(self) -> None:
        """Halve every count; drop the zeros so labels can age out."""
        decayed: Counter[str] = Counter()
        weight = 0
        for label, count in self._node_freq.items():
            half = count >> 1
            if half:
                decayed[label] = half
                weight += half
        self._node_freq = decayed
        self._weight = weight
        self._mean_freq = {
            label: half
            for label, value in self._mean_freq.items()
            if (half := value * 0.5) > 1e-12
        }
        self._decays += 1

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    @property
    def weight(self) -> int:
        with self._lock:
            return self._weight

    @property
    def decays(self) -> int:
        with self._lock:
            return self._decays

    def node_freq(self) -> Counter[str]:
        """A consistent copy of the raw counts."""
        with self._lock:
            return Counter(self._node_freq)

    def mean_freq(self) -> dict[str, float]:
        """The run-weighted frequency sum (each fold contributes its
        normalized distribution) — the drift-detector's input."""
        with self._lock:
            return dict(self._mean_freq)

    def distribution(self) -> dict[str, float]:
        """The live node-frequency *distribution* (sums to 1, or empty)."""
        return normalized(self.node_freq())

    def mean_distribution(self) -> dict[str, float]:
        """The mean per-run node distribution (sums to 1, or empty)."""
        return normalized(self.mean_freq())

    def snapshot(self) -> ExecutionProfile:
        """An :class:`ExecutionProfile` view of the current counts.

        Node frequencies only — exactly the signal MC-SSAPRE consumes
        (the paper's contribution 3 is what makes live re-optimisation
        this cheap: no edge profile is ever needed).
        """
        return ExecutionProfile(node_freq=self.node_freq())
