"""Minimum-coverage profiling: placement, reconstruction, fallbacks.

The subsystem's contract (docs/PROFILING.md): probe placement never
exceeds the spanning-tree bound ``|E| - |V| + 1``, reconstruction via
flow conservation is *bit-identical* to full counting on both engines,
refusals (multi-exit, no-exit, oversized CFGs) are machine-readable and
fall back to full counting, and broken inputs fail loudly instead of
producing a plausible-but-wrong profile.
"""

from __future__ import annotations

import pickle

import pytest

from repro.ir.builder import FunctionBuilder
from repro.pipeline import prepare
from repro.profiles.compiled import compile_function
from repro.profiles.interp import run_function
from repro.profiles.probes import (
    MAX_BLOCKS,
    PlacementError,
    ProbePlacement,
    ReconstructionError,
    cfg_shape,
    place_probes,
    reconstruct_profile,
    run_probed,
    try_place_probes,
)

from tests.conftest import build_diamond, build_straightline, build_while_loop


def build_multi_exit():
    """Two return blocks: outside the certified placement envelope."""
    b = FunctionBuilder("twoexit", params=["c"])
    b.block("entry")
    b.branch("c", "yes", "no")
    b.block("yes")
    b.ret(1)
    b.block("no")
    b.ret(0)
    return b.build()


def build_no_exit():
    """An infinite loop: no return block at all."""
    b = FunctionBuilder("spin", params=["n"])
    b.block("entry")
    b.jump("loop")
    b.block("loop")
    b.jump("loop")
    return b.build()


def build_branchy_loop():
    """A loop with a two-arm branch in its body: ``(n, flag)`` params."""
    b = FunctionBuilder("branchy", params=["n", "flag"])
    b.block("entry")
    b.copy("i", 0)
    b.copy("s", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.branch("flag", "hot", "skip")
    b.block("hot")
    b.assign("s", "add", "s", 2)
    b.jump("latch")
    b.block("skip")
    b.assign("s", "add", "s", 1)
    b.jump("latch")
    b.block("latch")
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("s")
    return b.build()


def build_unreachable():
    """A block no path reaches: placement must ignore it entirely."""
    b = FunctionBuilder("unreach", params=["a"])
    b.block("entry")
    b.assign("x", "add", "a", 1)
    b.jump("exit")
    b.block("island")
    b.assign("y", "add", "a", 2)
    b.jump("exit")
    b.block("exit")
    b.ret("x")
    return b.build()


class TestPlacement:
    def test_diamond_within_bound_and_deterministic(self):
        func = build_diamond()
        placement = place_probes(func)
        assert len(placement.probes) <= placement.bound
        assert placement.bound == placement.n_edges - len(placement.blocks) + 1
        assert placement == place_probes(func)

    def test_single_block_needs_no_probes(self):
        placement = place_probes(build_straightline())
        assert placement.bound == 0
        assert placement.probes == ()

    def test_cheapest_determining_block_wins(self):
        func = build_while_loop()
        profile = run_function(func, [2, 3, 50]).profile
        placement = place_probes(func, profile=profile)
        # entry and done carry no information (every run executes each
        # exactly once, so their counts equal the known run count): the
        # one probe must sit inside the loop, and of the two candidates
        # the greedy picks the cheaper body (50) over the head (51).
        assert placement.probes == ("body",)
        assert profile.node_freq["head"] > profile.node_freq["body"]

    def test_hot_branch_arm_stays_uninstrumented(self):
        func = build_branchy_loop()
        # flag=1: the "hot" arm runs every iteration, "skip" never.
        profile = run_function(func, [40, 1]).profile
        placement = place_probes(func, profile=profile)
        assert len(placement.probes) <= placement.bound
        # The cold arm is in the probe set; the hot arm and the hottest
        # block (the loop head) run uninstrumented.
        assert "skip" in placement.probes
        assert "hot" not in placement.probes
        assert "head" not in placement.probes

    def test_multi_exit_refused(self):
        with pytest.raises(PlacementError) as excinfo:
            place_probes(build_multi_exit())
        assert excinfo.value.reason == "multi-exit"
        placement, reason = try_place_probes(build_multi_exit())
        assert placement is None
        assert reason == "multi-exit"

    def test_no_exit_refused(self):
        with pytest.raises(PlacementError) as excinfo:
            place_probes(build_no_exit())
        assert excinfo.value.reason == "no-exit"

    def test_oversized_cfg_refused(self):
        with pytest.raises(PlacementError) as excinfo:
            place_probes(build_diamond(), max_blocks=2)
        assert excinfo.value.reason == "too-large"
        assert MAX_BLOCKS >= 2

    def test_unreachable_blocks_are_ignored(self):
        func = build_unreachable()
        entry, blocks, edges, exits = cfg_shape(func)
        assert "island" not in blocks
        assert all("island" not in edge for edge in edges)
        placement = place_probes(func)
        assert "island" not in placement.blocks


class TestReconstruction:
    @pytest.mark.parametrize("engine", ["reference", "compiled"])
    @pytest.mark.parametrize("build,args", [
        (build_diamond, [3, 4, 1]),
        (build_diamond, [3, 4, 0]),
        (build_while_loop, [2, 3, 9]),
        (build_straightline, [5, 6]),
        (build_unreachable, [7]),
    ])
    def test_bit_identical_to_full_counting(self, engine, build, args):
        func = build()
        full = run_function(func, list(args))
        probed = run_probed(func, list(args), engine=engine)
        assert probed.placement is not None
        assert probed.fallback_reason is None
        sparse = probed.result
        assert dict(sparse.profile.node_freq) == dict(full.profile.node_freq)
        assert sparse.observable() == full.observable()
        assert sparse.dynamic_cost == full.dynamic_cost
        assert dict(sparse.expr_counts) == dict(full.expr_counts)
        assert sparse.steps == full.steps
        if sparse.profile.edge_freq:
            assert dict(sparse.profile.edge_freq) == dict(
                full.profile.edge_freq
            )

    def test_zero_trip_loop_drops_the_body(self):
        func = build_while_loop()
        full = run_function(func, [1, 2, 0])
        sparse = run_probed(func, [1, 2, 0]).result
        assert "body" not in sparse.profile.node_freq
        assert dict(sparse.profile.node_freq) == dict(full.profile.node_freq)

    def test_reconstructed_edges_satisfy_flow_conservation(self):
        func = build_while_loop()
        probed = run_probed(func, [2, 3, 6])
        profile = probed.result.profile
        if profile.edge_freq:
            assert profile.check_flow_conservation(
                probed.placement.entry
            ) == []

    def test_multiple_runs_aggregate_exactly(self):
        func = build_diamond()
        placement = place_probes(func)
        single = run_probed(func, [3, 4, 1])
        counts = {
            label: 3 * single.result.profile.node_freq[label]
            for label in placement.probes
        }
        profile = reconstruct_profile(placement, counts, runs=3)
        full = run_function(func, [3, 4, 1]).profile
        assert dict(profile.node_freq) == {
            label: 3 * n for label, n in full.node_freq.items()
        }

    def test_merge_round_trip(self):
        func = build_while_loop()
        full_a = run_function(func, [1, 1, 4]).profile
        full_b = run_function(func, [2, 2, 7]).profile
        sparse_a = run_probed(func, [1, 1, 4]).result.profile
        sparse_b = run_probed(func, [2, 2, 7]).result.profile
        full_a.merge(full_b)
        sparse_a.merge(sparse_b)
        assert dict(sparse_a.node_freq) == dict(full_a.node_freq)

    def test_scaled_round_trip(self):
        func = build_while_loop()
        full = run_function(func, [2, 3, 5]).profile.scaled(2.0)
        sparse = run_probed(func, [2, 3, 5]).result.profile.scaled(2.0)
        assert dict(sparse.node_freq) == dict(full.node_freq)


class TestLoudFailures:
    def test_under_determined_system_raises(self):
        # Strip the probe set: the diamond's branch arm split is then
        # unobservable and the solver must refuse, not guess.
        placement = place_probes(build_diamond())
        assert placement.probes  # the diamond genuinely needs a probe
        blind = ProbePlacement(
            entry=placement.entry, blocks=placement.blocks,
            edges=placement.edges, exits=placement.exits, probes=(),
        )
        with pytest.raises(ReconstructionError):
            reconstruct_profile(blind, {}, runs=1)

    def test_inconsistent_counts_raise(self):
        # Redundant probes on both diamond arms: their counts must sum
        # to the run count, so (1, 1) against runs=1 is a contradiction.
        placement = place_probes(build_diamond())
        redundant = ProbePlacement(
            entry=placement.entry, blocks=placement.blocks,
            edges=placement.edges, exits=placement.exits,
            probes=("left", "right"),
        )
        with pytest.raises(ReconstructionError):
            reconstruct_profile(redundant, {"left": 1, "right": 1}, runs=1)

    def test_counts_for_unprobed_blocks_rejected(self):
        placement = place_probes(build_diamond())
        with pytest.raises(ValueError):
            reconstruct_profile(placement, {"not-a-probe": 1}, runs=1)

    def test_negative_runs_rejected(self):
        placement = place_probes(build_diamond())
        with pytest.raises(ValueError):
            reconstruct_profile(placement, {}, runs=-1)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_probed(build_diamond(), [1, 2, 3], engine="jit")


class TestFallback:
    def test_multi_exit_falls_back_to_full_counting(self):
        func = build_multi_exit()
        probed = run_probed(func, [1])
        assert probed.placement is None
        assert probed.fallback_reason == "multi-exit"
        full = run_function(func, [1])
        assert dict(probed.result.profile.node_freq) == dict(
            full.profile.node_freq
        )
        # The fallback *is* full counting, edges included.
        assert dict(probed.result.profile.edge_freq) == dict(
            full.profile.edge_freq
        )


class TestSparseCompiledProgram:
    def test_pickle_round_trip_keeps_probes(self):
        prepared = prepare(build_while_loop())
        placement = place_probes(prepared)
        program = compile_function(prepared, probes=placement)
        clone = pickle.loads(pickle.dumps(program))
        assert clone.probes == placement
        a = program.run([2, 3, 8])
        b = clone.run([2, 3, 8])
        assert dict(a.profile.node_freq) == dict(b.profile.node_freq)
        assert a.observable() == b.observable()

    def test_sparse_program_counts_only_probed_blocks(self):
        prepared = prepare(build_while_loop())
        placement = place_probes(prepared)
        program = compile_function(prepared, probes=placement)
        # The generated source bumps exactly one counter per probe and
        # carries no edge counters at all.
        assert program.source.count("] += 1") == len(placement.probes)
