"""Max-flow tests: known instances, Dinic vs Edmonds-Karp vs networkx."""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet.maxflow import dinic_max_flow, edmonds_karp_max_flow
from repro.flownet.network import INFINITE, FlowNetwork


def random_network(seed: int) -> FlowNetwork:
    rng = random.Random(seed)
    n = rng.randint(0, 10)
    names = ["s", "t"] + [f"n{i}" for i in range(n)]
    net = FlowNetwork("s", "t")
    for _ in range(rng.randint(1, 28)):
        u, v = rng.sample(names, 2)
        net.add_edge(u, v, rng.randint(0, 25))
    return net


def clone(net: FlowNetwork) -> FlowNetwork:
    other = FlowNetwork(net.source, net.sink)
    for e in net.edges:
        other.add_edge(e.src, e.dst, INFINITE if e.infinite else e.capacity)
    return other


def nx_value(net: FlowNetwork) -> int:
    graph = nx.DiGraph()
    graph.add_node("s")
    graph.add_node("t")
    net.freeze()
    for e in net.edges:
        if graph.has_edge(e.src, e.dst):
            graph[e.src][e.dst]["capacity"] += e.capacity
        else:
            graph.add_edge(e.src, e.dst, capacity=e.capacity)
    return nx.maximum_flow_value(graph, "s", "t")


class TestKnownInstances:
    def test_single_edge(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 7)
        assert dinic_max_flow(net)[0] == 7

    def test_series_bottleneck(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 10)
        net.add_edge("a", "t", 3)
        assert dinic_max_flow(net)[0] == 3

    def test_parallel_paths_sum(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 4)
        net.add_edge("a", "t", 4)
        net.add_edge("s", "b", 5)
        net.add_edge("b", "t", 5)
        assert dinic_max_flow(net)[0] == 9

    def test_classic_clrs_example(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "v1", 16)
        net.add_edge("s", "v2", 13)
        net.add_edge("v1", "v3", 12)
        net.add_edge("v2", "v1", 4)
        net.add_edge("v2", "v4", 14)
        net.add_edge("v3", "v2", 9)
        net.add_edge("v3", "t", 20)
        net.add_edge("v4", "v3", 7)
        net.add_edge("v4", "t", 4)
        assert dinic_max_flow(net)[0] == 23

    def test_disconnected_zero_flow(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5)
        assert dinic_max_flow(net)[0] == 0

    def test_infinite_capacity_path(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 9)
        net.add_edge("a", "t", INFINITE)
        assert dinic_max_flow(net)[0] == 9

    def test_zero_capacity_edges(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "t", 0)
        assert dinic_max_flow(net)[0] == 0


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_dinic_equals_edmonds_karp_equals_networkx(self, seed):
        net = random_network(seed)
        value_dinic, _ = dinic_max_flow(clone(net))
        value_ek, _ = edmonds_karp_max_flow(clone(net))
        assert value_dinic == value_ek == nx_value(clone(net))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_flow_bounded_by_cuts(self, seed):
        """Weak duality: flow value <= capacity of the trivial cuts."""
        net = random_network(seed)
        source_cap = sum(e.capacity for e in clone(net).out_of("s"))
        value, _ = dinic_max_flow(net)
        assert value <= source_cap


class TestResidualLabelling:
    def test_source_cannot_reach_sink_after_maxflow(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 2)
        net.add_edge("a", "t", 2)
        _, res = dinic_max_flow(net)
        reach = res.residual_reachable_from_source(res.node_index["s"])
        assert res.node_index["t"] not in reach

    def test_reverse_labelling_excludes_source(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 2)
        net.add_edge("a", "t", 2)
        _, res = dinic_max_flow(net)
        reaching = res.residual_reaching_sink(res.node_index["t"])
        assert res.node_index["s"] not in reaching


class TestSharedAdjacencyIndex:
    def test_built_once_and_reused(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 2)
        net.add_edge("a", "t", 2)
        _, res = dinic_max_flow(net)
        index = res.arcs_out()
        assert res.arcs_out() is index
        res.residual_reachable_from_source(res.node_index["s"])
        res.residual_reaching_sink(res.node_index["t"])
        assert res.arcs_out() is index

    def test_matches_linked_list_order(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 1)
        net.add_edge("s", "b", 1)
        net.add_edge("a", "t", 1)
        net.add_edge("b", "t", 1)
        _, res = dinic_max_flow(net)
        for node, arcs in enumerate(res.arcs_out()):
            walked = []
            arc = res.head[node]
            while arc != -1:
                walked.append(arc)
                arc = res.next_arc[arc]
            assert arcs == walked
