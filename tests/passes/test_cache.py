"""Analysis-cache semantics: hits, invalidation, staleness, warmth."""

import pytest

from repro.ir.instructions import Jump
from repro.passes import (
    CFG_ANALYSIS,
    DOMTREE_ANALYSIS,
    LIVENESS_ANALYSIS,
    LOOPS_ANALYSIS,
    PRESERVE_CFG,
    AnalysisCache,
    Pass,
    PassManager,
    StaleAnalysisError,
)


class _SplitTailPass(Pass):
    """A CFG-mutating pass: diverts the entry through a fresh block."""

    name = "split-tail"

    def run(self, func, ctx):
        entry = func.blocks[func.entry]
        old_target = entry.terminator.target
        fresh = func.add_block()
        fresh.terminator = Jump(old_target)
        entry.terminator = Jump(fresh.label)


class _RenameNothingPass(Pass):
    """A code-level pass that leaves the CFG shape alone."""

    name = "rename-nothing"

    def preserves(self):
        return frozenset({PRESERVE_CFG})

    def run(self, func, ctx):
        pass


def test_hit_and_miss_counters(while_loop):
    cache = AnalysisCache(while_loop)
    first = cache.get(DOMTREE_ANALYSIS)
    second = cache.get(DOMTREE_ANALYSIS)
    assert first is second
    # domtree pulls cfg once; the second get is a pure hit.
    assert cache.counters()["domtree"] == (1, 1)
    assert cache.counters()["cfg"] == (0, 1)
    third = cache.get(CFG_ANALYSIS)
    assert third is cache.get(CFG_ANALYSIS)
    assert cache.counters()["cfg"] == (2, 1)


def test_cfg_mutation_invalidates_dominator_family(while_loop):
    cache = AnalysisCache(while_loop)
    domtree = cache.get(DOMTREE_ANALYSIS)
    loops = cache.get(LOOPS_ANALYSIS)
    liveness = cache.get(LIVENESS_ANALYSIS)

    PassManager().run(while_loop, [_SplitTailPass()], cache=cache)

    assert cache.peek(DOMTREE_ANALYSIS) is None
    assert cache.peek(LOOPS_ANALYSIS) is None
    assert cache.peek(LIVENESS_ANALYSIS) is None
    assert cache.get(DOMTREE_ANALYSIS) is not domtree
    assert cache.get(LOOPS_ANALYSIS) is not loops
    assert cache.get(LIVENESS_ANALYSIS) is not liveness


def test_stale_handle_raises(while_loop):
    cache = AnalysisCache(while_loop)
    handle = cache.handle(DOMTREE_ANALYSIS)
    assert handle.value is cache.get(DOMTREE_ANALYSIS)

    PassManager().run(while_loop, [_SplitTailPass()], cache=cache)

    with pytest.raises(StaleAnalysisError, match="domtree.*stale"):
        handle.value
    assert handle.refresh().value is cache.get(DOMTREE_ANALYSIS)


def test_preserving_pass_keeps_cfg_family_warm(while_loop):
    cache = AnalysisCache(while_loop)
    cache.get(DOMTREE_ANALYSIS)
    cache.get(LOOPS_ANALYSIS)
    hits_before = cache.total_hits()

    PassManager().run(while_loop, [_RenameNothingPass()], cache=cache)

    # CFG-family results survived the code-generation bump: pure hits.
    cache.get(DOMTREE_ANALYSIS)
    cache.get(LOOPS_ANALYSIS)
    assert cache.total_hits() == hits_before + 2
    assert cache.counters()["domtree"][1] == 1  # never recomputed
    # Liveness depends on the code generation, which did move.
    cache.get(LIVENESS_ANALYSIS)
    PassManager().run(while_loop, [_RenameNothingPass()], cache=cache)
    assert cache.peek(LIVENESS_ANALYSIS) is None


def test_direct_mutation_invalidates_without_manager(while_loop):
    """Library transforms self-report: no pass manager involved."""
    cache = AnalysisCache(while_loop)
    cfg = cache.get(CFG_ANALYSIS)
    while_loop.mark_code_mutated()
    assert cache.get(CFG_ANALYSIS) is cfg  # CFG keyed on cfg generation
    while_loop.add_block("orphan")
    assert cache.peek(CFG_ANALYSIS) is None
    while_loop.remove_block("orphan")


def test_ensure_rejects_foreign_cache(while_loop, diamond):
    cache = AnalysisCache(while_loop)
    assert AnalysisCache.ensure(while_loop, cache) is cache
    fresh = AnalysisCache.ensure(diamond, None)
    assert fresh.func is diamond
    with pytest.raises(ValueError, match="bound to function"):
        AnalysisCache.ensure(diamond, cache)


def test_explicit_invalidate(while_loop):
    cache = AnalysisCache(while_loop)
    cache.get(DOMTREE_ANALYSIS)
    cache.get(CFG_ANALYSIS)
    cache.invalidate("domtree")
    assert cache.peek(DOMTREE_ANALYSIS) is None
    assert cache.peek(CFG_ANALYSIS) is not None
    cache.invalidate()
    assert cache.peek(CFG_ANALYSIS) is None
