"""Tokenizer for the textual IR.

Token kinds: ``NAME`` (identifiers, possibly with a ``.N`` SSA-version
suffix handled by the parser), ``INT``, punctuation (``( ) { } , : =``) and
``NEWLINE`` markers are not needed — the grammar is entirely
punctuation-delimited.  ``#`` starts a comment running to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class LexError(Exception):
    """Raised on characters the lexer does not understand."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>[ \t\r\n]+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<INT>-?\d+)
  | (?P<NAME>[%A-Za-z_][%A-Za-z_0-9]*(\.\d+)?)
  | (?P<PUNCT>[(){},:=])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`LexError` on bad input."""
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise LexError(f"unexpected character {source[pos]!r} at {line}:{column}")
        kind = match.lastgroup
        text = match.group()
        assert kind is not None
        if kind in ("WS", "COMMENT"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rindex("\n") + 1
        else:
            column = match.start() - line_start + 1
            yield Token(kind if kind != "PUNCT" else text, text, line, column)
        pos = match.end()
    yield Token("EOF", "", line, pos - line_start + 1)
