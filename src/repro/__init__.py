"""repro — a reproduction of *"An SSA-based Algorithm for Optimal
Speculative Code Motion under an Execution Profile"* (Zhou, Chen & Chow,
PLDI 2011).

The package is a self-contained SSA compiler middle-end for a small
three-address IR, plus the paper's MC-SSAPRE algorithm, the SSAPRE /
SSAPREsp / MC-PRE / ISPRE comparison points, a profiling interpreter, and
a benchmark harness that regenerates every table and figure of the
paper's evaluation.

Quick start::

    from repro import FunctionBuilder, run_experiment

    b = FunctionBuilder("f", params=["a", "b", "n"])
    ...  # build a program (see examples/quickstart.py)
    exp = run_experiment(b.build(), train_args=[1, 2, 10], ref_args=[1, 2, 12])
    print(exp.cost("ssapre"), exp.cost("mc-ssapre"))

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.ir.builder import FunctionBuilder
from repro.ir.function import BasicBlock, Function
from repro.ir.printer import format_function
from repro.ir.values import Const, Var
from repro.jit import AdaptiveCompiler
from repro.lang.parser import parse_function, parse_program
from repro.passes import (
    AnalysisCache,
    PassManager,
    PassReport,
    build_pipeline,
    compile,  # noqa: A004 - the package's compile *is* the entry point
)
from repro.pipeline import (
    PAPER_VARIANTS,
    VARIANTS,
    compile_variant,
    prepare,
    run_experiment,
)
from repro.profiles.interp import run_function
from repro.profiles.profile import ExecutionProfile

__version__ = "1.1.0"

__all__ = [
    "AdaptiveCompiler",
    "AnalysisCache",
    "BasicBlock",
    "Const",
    "ExecutionProfile",
    "Function",
    "FunctionBuilder",
    "PAPER_VARIANTS",
    "PassManager",
    "PassReport",
    "VARIANTS",
    "Var",
    "build_pipeline",
    "compile",
    "compile_variant",
    "format_function",
    "parse_function",
    "parse_program",
    "prepare",
    "run_experiment",
    "run_function",
    "__version__",
]
