"""Minimal (pruned) SSA construction, after Cytron et al. [6].

The input must be a non-SSA function (no phis, no versioned variables).
Phi placement uses iterated dominance frontiers pruned by liveness; the
renaming walk is the classic preorder dominator-tree traversal with one
version stack per base name.  Parameters receive version 1 at entry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis import (
    cfg_of,
    dominance_frontiers_of,
    dominator_tree_of,
    liveness_of,
)
from repro.analysis.domfrontier import iterated_dominance_frontier
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Load, Phi, Store, UnaryOp
from repro.ir.values import Const, Operand, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache


class SSAConstructionError(Exception):
    """Raised on input that is already in SSA form or uses undefined vars."""


def construct_ssa(func: Function, cache: "AnalysisCache | None" = None) -> None:
    """Rewrite *func* into pruned SSA form, in place.

    All required analyses (CFG, dominators, frontiers, liveness) are
    fetched through *cache* when given, so a pipeline that already
    computed them pays nothing here — and since phi insertion and
    renaming leave the CFG shape untouched, the CFG-derived entries
    remain valid for the passes that follow.
    """
    for block in func:
        if block.phis:
            raise SSAConstructionError("input already contains phis")
        for stmt in block.body:
            if isinstance(stmt, Assign) and stmt.target.version is not None:
                raise SSAConstructionError("input already uses SSA versions")

    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    cfg = cfg_of(func, cache)
    domtree = dominator_tree_of(func, cache)
    frontiers = dominance_frontiers_of(func, cache)
    liveness = liveness_of(func, cache=cache)
    reachable = set(domtree.rpo)

    # ------------------------------------------------------------------
    # Phi placement: IDF of each variable's definition blocks, pruned.
    # ------------------------------------------------------------------
    def_blocks: dict[str, set[str]] = {}
    assert func.entry is not None
    for param in func.params:
        def_blocks.setdefault(param.name, set()).add(func.entry)
    for label in reachable:
        for var in func.blocks[label].defined_vars():
            def_blocks.setdefault(var.name, set()).add(label)

    for name, blocks in sorted(def_blocks.items()):
        for label in iterated_dominance_frontier(frontiers, blocks):
            if name in liveness.live_in[label]:
                func.blocks[label].phis.append(Phi(Var(name), {}))

    # ------------------------------------------------------------------
    # Renaming
    # ------------------------------------------------------------------
    stacks: dict[str, list[int]] = {name: [] for name in def_blocks}
    counters: dict[str, int] = {name: 0 for name in def_blocks}

    def new_version(name: str) -> int:
        counters[name] += 1
        stacks[name].append(counters[name])
        return counters[name]

    def current(name: str) -> int:
        stack = stacks.get(name)
        if not stack:
            raise SSAConstructionError(f"use of undefined variable {name!r}")
        return stack[-1]

    def rewrite(operand: Operand) -> Operand:
        if isinstance(operand, Var):
            return operand.with_version(current(operand.name))
        return operand

    # Parameters are defined at function entry.
    entry_pushes = [
        (param.name, new_version(param.name)) for param in func.params
    ]
    func.params = [Var(name, version) for name, version in entry_pushes]

    def process_block(label: str) -> list[str]:
        """Rename one block; returns the names pushed (for later popping)."""
        block = func.blocks[label]
        pushed: list[str] = []
        for phi in block.phis:
            phi.target = phi.target.with_version(new_version(phi.target.name))
            pushed.append(phi.target.name)
        for stmt in block.body:
            if isinstance(stmt, Assign):
                if isinstance(stmt.rhs, BinOp):
                    stmt.rhs.left = rewrite(stmt.rhs.left)
                    stmt.rhs.right = rewrite(stmt.rhs.right)
                elif isinstance(stmt.rhs, UnaryOp):
                    stmt.rhs.operand = rewrite(stmt.rhs.operand)
                elif isinstance(stmt.rhs, Load):
                    # Arrays are not SSA values; only the index is renamed.
                    stmt.rhs.index = rewrite(stmt.rhs.index)
                elif isinstance(stmt.rhs, (Var, Const)):
                    stmt.rhs = rewrite(stmt.rhs)
                stmt.target = stmt.target.with_version(new_version(stmt.target.name))
                pushed.append(stmt.target.name)
            elif isinstance(stmt, Store):
                stmt.index = rewrite(stmt.index)
                stmt.value = rewrite(stmt.value)
            else:  # Output
                stmt.value = rewrite(stmt.value)
        term = block.terminator
        rewritten = [rewrite(op) for op in term.used_operands()]
        if rewritten:
            # Only CondJump and Return carry operands.
            from repro.ir.instructions import CondJump, Return

            if isinstance(term, CondJump):
                term.cond = rewritten[0]
            elif isinstance(term, Return):
                term.value = rewritten[0]
        for succ in cfg.successors(label):
            for phi in func.blocks[succ].phis:
                name = phi.target.name
                stack = stacks.get(name)
                if stack:
                    phi.args[label] = Var(name, stack[-1])
                else:
                    # The variable is dead along this edge in any execution
                    # (pruned liveness says live-in, so this can only happen
                    # for paths on which the source program never defined
                    # it); represent the undefined input as constant 0.
                    phi.args[label] = Const(0)
        return pushed

    # Iterative preorder walk with explicit pop bookkeeping.
    pushed_by_label: dict[str, list[str]] = {}
    walk: list[tuple[str, bool]] = [(func.entry, False)]
    while walk:
        label, leaving = walk.pop()
        if leaving:
            for name in reversed(pushed_by_label[label]):
                stacks[name].pop()
            continue
        pushed_by_label[label] = process_block(label)
        walk.append((label, True))
        for child in reversed(domtree.children[label]):
            walk.append((child, False))

    # Phi insertion and renaming rewrote instructions (not the CFG):
    # liveness-style analyses are now stale, dominators remain valid.
    func.mark_code_mutated()
