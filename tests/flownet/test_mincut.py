"""Min-cut extraction tests: validity, minimality, and side selection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet.maxflow import dinic_max_flow
from repro.flownet.mincut import min_cut
from repro.flownet.network import INFINITE, FlowNetwork
from tests.flownet.test_maxflow import clone, random_network


def is_valid_cut(net: FlowNetwork, cut) -> bool:
    """Removing the cut edges must disconnect s from t."""
    removed = cut.cut_edge_indices()
    seen = {net.source}
    stack = [net.source]
    while stack:
        node = stack.pop()
        for edge in net.out_of(node):
            if edge.index in removed:
                continue
            if edge.dst not in seen:
                seen.add(edge.dst)
                stack.append(edge.dst)
    return net.sink not in seen


class TestValidity:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_cut_separates_and_matches_flow(self, seed):
        net = random_network(seed)
        flow_value, _ = dinic_max_flow(clone(net))
        for side in (True, False):
            target = clone(net)
            cut = min_cut(target, sink_closest=side)
            assert cut.value == flow_value
            assert is_valid_cut(target, cut)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_partition_is_complete(self, seed):
        net = random_network(seed)
        cut = min_cut(net)
        assert net.source in cut.source_side
        assert net.sink in cut.sink_side
        assert not cut.source_side & cut.sink_side
        assert cut.source_side | cut.sink_side >= set(net.nodes)


class TestSideSelection:
    def build_tied(self) -> FlowNetwork:
        """s -5-> a -5-> t : both edges are minimum cuts (tie)."""
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 5, payload="early")
        net.add_edge("a", "t", 5, payload="late")
        return net

    def test_sink_closest_picks_late_edge(self):
        cut = min_cut(self.build_tied(), sink_closest=True)
        assert [e.payload for e in cut.cut_edges] == ["late"]

    def test_source_closest_picks_early_edge(self):
        cut = min_cut(self.build_tied(), sink_closest=False)
        assert [e.payload for e in cut.cut_edges] == ["early"]

    def test_long_tied_chain(self):
        net = FlowNetwork("s", "t")
        labels = ["s", "a", "b", "c", "t"]
        for u, v in zip(labels, labels[1:]):
            net.add_edge(u, v, 3, payload=(u, v))
        late = min_cut(clone_with_payloads(net), sink_closest=True)
        assert [e.payload for e in late.cut_edges] == [("c", "t")]
        early = min_cut(clone_with_payloads(net), sink_closest=False)
        assert [e.payload for e in early.cut_edges] == [("s", "a")]

    def test_unique_min_cut_same_for_both_sides(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 10)
        bottleneck = net.add_edge("a", "b", 2, payload="narrow")
        net.add_edge("b", "t", 10)
        for side in (True, False):
            cut = min_cut(clone_with_payloads(net), sink_closest=side)
            assert [e.payload for e in cut.cut_edges] == ["narrow"]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_sink_side_is_smallest_over_random_nets(self, seed):
        """The reverse-labelled sink side is contained in every other
        min cut's sink side (it is the unique minimal one)."""
        net = random_network(seed)
        late = min_cut(clone(net), sink_closest=True)
        early = min_cut(clone(net), sink_closest=False)
        assert late.sink_side <= early.sink_side


class TestInfiniteEdges:
    def test_infinite_edges_never_cut(self):
        net = FlowNetwork("s", "t")
        net.add_edge("s", "a", 100)
        net.add_edge("a", "t", INFINITE)
        net.add_edge("a", "t", 3)
        cut = min_cut(net)
        assert all(not e.infinite for e in cut.cut_edges)
        assert cut.value == 100


def clone_with_payloads(net: FlowNetwork) -> FlowNetwork:
    other = FlowNetwork(net.source, net.sink)
    for e in net.edges:
        other.add_edge(
            e.src, e.dst, INFINITE if e.infinite else e.capacity, payload=e.payload
        )
    return other
