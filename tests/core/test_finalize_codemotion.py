"""Tests for Finalize plans and CodeMotion rewrites (safe SSAPRE path)."""

import copy

from repro.core.ssapre.codemotion import apply_code_motion
from repro.core.ssapre.downsafety import compute_down_safety
from repro.core.ssapre.finalize import finalize
from repro.core.ssapre.frg import ExprClass, build_frg
from repro.core.ssapre.willbeavail import compute_will_be_avail
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Assign, BinOp
from repro.profiles.interp import run_function
from repro.ssa.ssa_verifier import verify_ssa
from tests.conftest import as_ssa

AB = ExprClass(("add", ("var", "a"), ("var", "b")))


def plan_for(func_ssa, expr=AB):
    frg = build_frg(func_ssa, expr)
    compute_down_safety(frg)
    compute_will_be_avail(frg)
    return finalize(frg)


class TestFinalizePlans:
    def test_diamond_plan(self, diamond):
        ssa = as_ssa(diamond)
        plan = plan_for(ssa)
        assert len(plan.insertions) == 1
        assert len(plan.reloads) == 1
        assert len(plan.t_phis) == 1
        assert len(plan.saves) == 1  # the left-arm occurrence feeds the phi

    def test_straightline_local_cse_plan(self, straightline):
        ssa = as_ssa(straightline)
        plan = plan_for(ssa)
        assert len(plan.insertions) == 0
        assert len(plan.reloads) == 1
        assert len(plan.saves) == 1
        assert plan.t_phis == []

    def test_no_redundancy_no_effect(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.ret("x")
        plan = plan_for(as_ssa(b.build()))
        assert not plan.has_effect()

    def test_extraneous_phi_removed(self):
        """Both arms compute a+b but nobody uses it afterwards: the
        will-be-avail phi at the join must be pruned, with no saves."""
        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.output("x")
        b.jump("j")
        b.block("r")
        b.assign("y", "add", "a", "b")
        b.output("y")
        b.jump("j")
        b.block("j")
        b.ret(0)
        plan = plan_for(as_ssa(b.build()))
        assert plan.t_phis == []
        assert plan.saves == []
        assert plan.insertions == {}

    def test_version_exact_reloads_only(self, while_loop):
        """The loop-condition class must not reload across versions (the
        regression that motivated the def-link Finalize)."""
        ssa = as_ssa(while_loop)
        lt = ExprClass(("lt", ("var", "i"), ("var", "n")))
        plan = plan_for(ssa, lt)
        for occ_id, source in plan.reloads.items():
            occ = next(o for o in plan.frg.real_occs if id(o) == occ_id)
            assert source.version == occ.version or hasattr(source, "operands")


class TestCodeMotion:
    def test_diamond_semantics_and_counts(self, diamond):
        ssa = as_ssa(diamond)
        reference = {
            args: run_function(copy.deepcopy(ssa), list(args)).observable()
            for args in ((1, 2, 1), (1, 2, 0))
        }
        plan = plan_for(ssa)
        report = apply_code_motion(ssa, plan)
        verify_ssa(ssa)
        assert report.changed
        for args, expected in reference.items():
            run = run_function(ssa, list(args))
            assert run.observable() == expected
            assert run.expr_counts[AB.key] == 1  # one eval on either path

    def test_straightline_cse(self, straightline):
        ssa = as_ssa(straightline)
        plan = plan_for(ssa)
        apply_code_motion(ssa, plan)
        verify_ssa(ssa)
        run = run_function(ssa, [2, 3])
        assert run.return_value == 25
        assert run.expr_counts[AB.key] == 1

    def test_temp_names_unique_across_classes(self, straightline):
        ssa = as_ssa(straightline)
        report1 = apply_code_motion(ssa, plan_for(ssa))
        mul = ExprClass(("mul", ("var", "x"), ("var", "y")))
        report2 = apply_code_motion(ssa, plan_for(ssa, mul))
        if report2.temp_name is not None:
            assert report1.temp_name != report2.temp_name

    def test_no_effect_leaves_function_untouched(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")
        b.ret("x")
        ssa = as_ssa(b.build())
        before = str(ssa)
        report = apply_code_motion(ssa, plan_for(ssa))
        assert not report.changed
        assert str(ssa) == before

    def test_insertion_lands_at_pred_end(self, diamond):
        ssa = as_ssa(diamond)
        apply_code_motion(ssa, plan_for(ssa))
        right = ssa.blocks["right"]
        last = right.body[-1]
        assert isinstance(last, Assign)
        assert isinstance(last.rhs, BinOp) and last.rhs.op == "add"
        assert last.target.name.startswith("%pre")

    def test_save_keeps_original_target(self, straightline):
        ssa = as_ssa(straightline)
        apply_code_motion(ssa, plan_for(ssa))
        # x = a+b became t = a+b; x = t
        entry = ssa.blocks["entry"]
        assigns = [s for s in entry.body if isinstance(s, Assign)]
        assert any(
            s.target.name == "x" and s.is_copy for s in assigns
        )
